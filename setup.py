"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
falls back to the legacy ``setup.py develop`` path, which needs this file.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
