"""Tests for tools/calibrate_crossover.py and the env-var dispatch
overrides it targets (``REPRO_FFT_CROSSOVER_TAPS`` /
``REPRO_TILED_MIN_PLANE_BYTES``)."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.tonemap.gaussian import _env_positive_int

TOOL = Path(__file__).resolve().parent.parent / "tools" / "calibrate_crossover.py"

spec = importlib.util.spec_from_file_location("calibrate_crossover", TOOL)
calibrate = importlib.util.module_from_spec(spec)
sys.modules.setdefault("calibrate_crossover", calibrate)
spec.loader.exec_module(calibrate)


class TestStableCrossover:
    def rows(self, *pairs):
        return [
            {"key": i, "incumbent_s": inc, "challenger_s": ch}
            for i, (inc, ch) in enumerate(pairs)
        ]

    def test_first_stable_win_is_picked(self):
        rows = self.rows((1.0, 2.0), (1.0, 0.9), (1.0, 0.5))
        assert calibrate._stable_crossover(rows, "key") == 1

    def test_single_noisy_win_does_not_count(self):
        rows = self.rows((1.0, 0.9), (1.0, 2.0), (1.0, 0.5))
        assert calibrate._stable_crossover(rows, "key") == 2

    def test_never_stabilizes_returns_none(self):
        rows = self.rows((1.0, 2.0), (1.0, 2.0))
        assert calibrate._stable_crossover(rows, "key") is None


class TestSweeps:
    def test_quick_sweep_emits_recommendations(self, capsys):
        assert calibrate.main(["--quick", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "export REPRO_FFT_CROSSOVER_TAPS=" in out
        assert "export REPRO_TILED_MIN_PLANE_BYTES=" in out
        taps = int(
            out.split("REPRO_FFT_CROSSOVER_TAPS=")[1].splitlines()[0]
        )
        plane = int(
            out.split("REPRO_TILED_MIN_PLANE_BYTES=")[1].splitlines()[0]
        )
        assert taps > 0 and plane > 0

    def test_json_output_is_parseable(self, capsys):
        import json

        assert calibrate.main(["--quick", "--rounds", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["fft"]["recommended"] > 0
        assert data["tiled"]["recommended"] > 0
        assert all("taps" in row for row in data["fft"]["rows"])


class TestEnvOverrides:
    def test_env_positive_int_parsing(self, monkeypatch):
        monkeypatch.delenv("X_TEST_CONST", raising=False)
        assert _env_positive_int("X_TEST_CONST", 7) == 7
        monkeypatch.setenv("X_TEST_CONST", "12")
        assert _env_positive_int("X_TEST_CONST", 7) == 12
        for bad in ("0", "-3", "abc", ""):
            monkeypatch.setenv("X_TEST_CONST", bad)
            assert _env_positive_int("X_TEST_CONST", 7) == 7

    @pytest.mark.parametrize(
        "env,taps,nbytes,want",
        [
            ({"REPRO_FFT_CROSSOVER_TAPS": "5"}, 5, 0, "fft"),
            ({"REPRO_TILED_MIN_PLANE_BYTES": "10"}, 5, 10, "tiled"),
        ],
    )
    def test_dispatch_honors_env_at_call_time(
        self, monkeypatch, env, taps, nbytes, want
    ):
        # The thresholds are resolved per call, so setting the env var
        # after import moves the dispatch — no importlib.reload needed.
        from repro.tonemap import gaussian

        assert gaussian._select_method("auto", taps, nbytes) == "folded"
        for name, value in env.items():
            monkeypatch.setenv(name, value)
        assert gaussian._select_method("auto", taps, nbytes) == want
        for name in env:
            monkeypatch.delenv(name)
        assert gaussian._select_method("auto", taps, nbytes) == "folded"

    def test_env_moves_fused_h_method_at_call_time(self, monkeypatch):
        import numpy as np

        from repro.runtime.fused import FusedToneMapPlan
        from repro.tonemap.pipeline import ToneMapParams

        frame = np.random.default_rng(7).random((32, 32))
        plan = FusedToneMapPlan(ToneMapParams(sigma=4.0))
        taps = plan.kernel.coefficients.size
        assert plan.h_method(*frame.shape) == "folded"
        monkeypatch.setenv("REPRO_FUSED_FFT_MIN_TAPS", str(taps))
        assert plan.h_method(*frame.shape) == "fft"

    def test_override_moves_the_auto_dispatch(self):
        # planner.override pins thresholds for the calling context; the
        # dispatch in gaussian reads the active profile per call.
        from repro import planner
        from repro.tonemap import gaussian

        with planner.override(fft_crossover_taps=5):
            assert gaussian._select_method("auto", 5, 0) == "fft"
        with planner.override(fft_crossover_taps=99, tiled_min_plane_bytes=10):
            assert gaussian._select_method("auto", 5, 10) == "tiled"
            assert gaussian._select_method("auto", 5, 9) == "folded"
        assert gaussian._select_method("auto", 5, 10) == "folded"
