"""Tests for repro.power: rails, model, energy decomposition, PMBus."""

import pytest

from repro.errors import PowerError
from repro.power import (
    EnergyReport,
    ExecutionPhase,
    PmBusMonitor,
    PowerModel,
    Rail,
    RailPowers,
    compute_energy,
)


def phases(sw_seconds=2.0, hw_seconds=1.0):
    return [
        ExecutionPhase("pre", 0.5, ps_active=True, pl_active=False),
        ExecutionPhase("blur", hw_seconds, ps_active=False, pl_active=True),
        ExecutionPhase("post", sw_seconds, ps_active=True, pl_active=False),
    ]


class TestRailPowers:
    def test_total(self):
        rp = RailPowers.of(ps=1.0, pl=0.5, ddr=0.25, bram=0.25)
        assert rp.total == 2.0

    def test_missing_rail_rejected(self):
        with pytest.raises(PowerError):
            RailPowers({Rail.PS: 1.0})

    def test_negative_rejected(self):
        with pytest.raises(PowerError):
            RailPowers.of(ps=-1.0)

    def test_plus_and_scaled(self):
        a = RailPowers.of(ps=1.0, pl=1.0, ddr=0.0, bram=0.0)
        b = RailPowers.of(ps=0.5, pl=0.0, ddr=0.5, bram=0.0)
        assert a.plus(b)[Rail.PS] == 1.5
        assert a.scaled(2.0)[Rail.PL] == 2.0

    def test_uniform(self):
        assert RailPowers.uniform(0.1).total == pytest.approx(0.4)


class TestPowerModel:
    def test_pl_idle_grows_with_utilization(self):
        model = PowerModel()
        empty = model.idle_powers(0.0)[Rail.PL]
        half = model.idle_powers(0.5)[Rail.PL]
        full = model.idle_powers(1.0)[Rail.PL]
        assert empty < half < full
        assert empty == pytest.approx(model.pl_base_w)

    def test_ddr_constant_across_activity(self):
        # Paper: DDR/BRAM "does not vary when moving from idle to
        # execution".
        model = PowerModel()
        idle = model.phase_powers(
            ExecutionPhase("idle", 1.0, False, False), 0.5
        )
        busy = model.phase_powers(
            ExecutionPhase("busy", 1.0, True, True), 0.5
        )
        assert idle[Rail.DDR] == busy[Rail.DDR]
        assert idle[Rail.BRAM] == busy[Rail.BRAM]

    def test_ps_overhead_only_when_active(self):
        model = PowerModel()
        off = model.active_overhead(False, False, 0.0)
        on = model.active_overhead(True, False, 0.0)
        assert off[Rail.PS] == 0.0
        assert on[Rail.PS] == model.ps_active_w

    def test_pl_overhead_scales_with_utilization(self):
        model = PowerModel()
        low = model.active_overhead(False, True, 0.1)[Rail.PL]
        high = model.active_overhead(False, True, 0.8)[Rail.PL]
        assert high > low

    def test_utilization_range_checked(self):
        with pytest.raises(PowerError):
            PowerModel().idle_powers(1.5)

    def test_timeline_duration(self):
        model = PowerModel()
        timeline = model.timeline_powers(phases(), 0.2)
        assert timeline.total_duration == pytest.approx(3.5)

    def test_power_at_selects_phase(self):
        model = PowerModel()
        timeline = model.timeline_powers(phases(), 0.2)
        pre = timeline.power_at(0.25)
        blur = timeline.power_at(1.0)
        assert pre[Rail.PS] > blur[Rail.PS]   # PS idle during HW blur
        assert blur[Rail.PL] > pre[Rail.PL]

    def test_energy_exact_integration(self):
        model = PowerModel()
        timeline = model.timeline_powers(phases(), 0.2)
        energy = timeline.energy_joules()
        by_hand = 0.0
        for phase, powers in timeline.segments:
            by_hand += powers.total * phase.duration_s
        assert sum(energy[r] for r in Rail) == pytest.approx(by_hand)

    def test_empty_timeline_rejected(self):
        with pytest.raises(PowerError):
            PowerModel().timeline_powers([], 0.0)


class TestComputeEnergy:
    def test_bottomline_is_idle_times_duration(self):
        model = PowerModel()
        report = compute_energy("x", phases(), 0.3, model)
        idle = model.idle_powers(0.3)
        duration = 3.5
        for rail in Rail:
            assert report.rail(rail).bottomline_j == pytest.approx(
                idle[rail] * duration
            )

    def test_overhead_only_during_activity(self):
        model = PowerModel()
        report = compute_energy("x", phases(hw_seconds=1.0), 0.3, model)
        assert report.rail(Rail.PL).overhead_j == pytest.approx(
            model.pl_util_active_w * 0.3 * 1.0
        )
        # PS active 2.5 s of the 3.5 s run.
        assert report.rail(Rail.PS).overhead_j == pytest.approx(
            model.ps_active_w * 2.5
        )

    def test_ddr_has_no_overhead(self):
        report = compute_energy("x", phases(), 0.3)
        assert report.rail(Rail.DDR).overhead_j == 0.0
        assert report.rail(Rail.BRAM).overhead_j == 0.0

    def test_totals_consistent(self):
        report = compute_energy("x", phases(), 0.3)
        assert report.total_j == pytest.approx(
            report.bottomline_j + report.overhead_j
        )
        assert report.average_power_w == pytest.approx(
            report.total_j / report.duration_s
        )

    def test_matches_timeline_integration(self):
        model = PowerModel()
        report = compute_energy("x", phases(), 0.3, model)
        timeline = model.timeline_powers(phases(), 0.3)
        exact = timeline.energy_joules()
        for rail in Rail:
            assert report.rail(rail).total_j == pytest.approx(exact[rail])

    def test_empty_phases_rejected(self):
        with pytest.raises(PowerError):
            compute_energy("x", [], 0.0)


class TestPmBusMonitor:
    def test_noiseless_measurement_matches_exact_energy(self):
        model = PowerModel()
        timeline = model.timeline_powers(phases(), 0.3)
        monitor = PmBusMonitor(sample_interval_s=1e-3)
        measured = monitor.measure_energy(timeline)
        exact = timeline.energy_joules()
        for rail in Rail:
            assert measured[rail] == pytest.approx(exact[rail], rel=0.02)

    def test_noise_is_reproducible(self):
        model = PowerModel()
        timeline = model.timeline_powers(phases(), 0.3)
        a = PmBusMonitor(noise_rms_w=0.05, seed=7).measured_total_energy(timeline)
        b = PmBusMonitor(noise_rms_w=0.05, seed=7).measured_total_energy(timeline)
        assert a == b

    def test_noise_converges_with_samples(self):
        model = PowerModel()
        timeline = model.timeline_powers(phases(), 0.3)
        exact = sum(timeline.energy_joules()[r] for r in Rail)
        fine = PmBusMonitor(sample_interval_s=2e-4, noise_rms_w=0.05, seed=1)
        assert fine.measured_total_energy(timeline) == pytest.approx(
            exact, rel=0.02
        )

    def test_trace_shape(self):
        model = PowerModel()
        timeline = model.timeline_powers(phases(), 0.3)
        traces = PmBusMonitor(sample_interval_s=0.1).measure(timeline)
        trace = traces[Rail.PS]
        assert trace.times_s.shape == trace.watts.shape
        assert trace.times_s[-1] < timeline.total_duration

    def test_validation(self):
        with pytest.raises(PowerError):
            PmBusMonitor(sample_interval_s=0.0)
        with pytest.raises(PowerError):
            PmBusMonitor(noise_rms_w=-0.1)
