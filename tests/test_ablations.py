"""Tests for repro.experiments.ablations and .extensions."""

import pytest

from repro.accel import BlurGeometry
from repro.experiments.ablations import (
    ablate_axi_latency,
    ablate_device,
    ablate_partition_factor,
    ablate_pl_clock,
    ablate_pragmas,
    ablate_word_packing,
    run_all_ablations,
)
from repro.experiments.calibration import make_paper_flow
from repro.experiments.extensions import (
    overlap_study,
    overlapped_blur_seconds,
    runtime_throughput,
    video_throughput,
)

# Small geometry keeps the sweeps fast; mechanisms are size-independent.
GEOM = BlurGeometry(height=256, width=256, radius=12, sigma=4.0)
FLOW = make_paper_flow()


class TestPragmaAblation:
    SERIES = ablate_pragmas(GEOM)

    def test_pipeline_alone_helps(self):
        base = self.SERIES.point("no pragmas (sequential)").blur_seconds
        piped = self.SERIES.point("PIPELINE only").blur_seconds
        assert piped < base / 5

    def test_partition_alone_useless(self):
        # Without pipelining, extra ports have nothing to feed: the
        # paper's insight that the knobs must compose.
        base = self.SERIES.point("no pragmas (sequential)").blur_seconds
        parted = self.SERIES.point("ARRAY_PARTITION only").blur_seconds
        assert parted == pytest.approx(base, rel=0.01)

    def test_combination_is_best(self):
        times = [p.blur_seconds for p in self.SERIES.points if p.feasible]
        combo = self.SERIES.point("PIPELINE + ARRAY_PARTITION").blur_seconds
        assert combo == min(times)

    def test_render(self):
        text = self.SERIES.render()
        assert "ABLATION" in text and "PIPELINE" in text


class TestWordPackingAblation:
    SERIES = ablate_word_packing(GEOM)

    def test_packing_halves_ii(self):
        packed = self.SERIES.point("fxp, word-packed line buffer")
        unpacked = self.SERIES.point("fxp, unpacked line buffer")
        assert packed.pixels_ii < unpacked.pixels_ii
        assert packed.blur_seconds < unpacked.blur_seconds

    def test_unpacked_fxp_matches_float_ii(self):
        # Without packing, fixed point has the same port bottleneck as
        # float: the memory half of the FxP gain is isolated here.
        unpacked = self.SERIES.point("fxp, unpacked line buffer")
        flt = self.SERIES.point("float baseline")
        assert unpacked.pixels_ii == flt.pixels_ii

    def test_fxp_uses_less_area(self):
        packed = self.SERIES.point("fxp, word-packed line buffer")
        flt = self.SERIES.point("float baseline")
        assert packed.bram18 < flt.bram18
        assert packed.dsp < flt.dsp


class TestLatencyClockDeviceSweeps:
    def test_axi_latency_monotone(self):
        series = ablate_axi_latency(GEOM, latencies=(50, 150, 300))
        times = [p.blur_seconds for p in series.points]
        assert times[0] < times[1] < times[2]

    def test_pl_clock_inverse_scaling(self):
        series = ablate_pl_clock(GEOM, clocks=(100.0, 200.0))
        t100 = series.point("PL @ 100.0 MHz").blur_seconds
        t200 = series.point("PL @ 200.0 MHz").blur_seconds
        assert t100 == pytest.approx(2 * t200, rel=1e-6)

    def test_partition_factor_tradeoff(self):
        series = ablate_partition_factor(GEOM, factors=(1, 4))
        x1 = series.point("linebuf x1")
        x4 = series.point("linebuf x4")
        assert x4.blur_seconds < x1.blur_seconds
        assert x4.dsp > x1.dsp  # lower II needs more operator instances

    def test_over_partitioning_hits_device_limits(self):
        # At the paper geometry, huge banking overflows the Z-7020.
        series = ablate_partition_factor(factors=(1, 32))
        assert not series.point("linebuf x32").feasible
        assert "does not fit" in series.point("linebuf x32").note

    def test_device_sweep_all_devices_evaluated(self):
        series = ablate_device(GEOM)
        assert [p.label for p in series.points] == [
            "XC7Z010", "XC7Z020", "XC7Z045",
        ]
        assert all(p.feasible for p in series.points)

    def test_run_all_ablations(self):
        all_series = run_all_ablations(GEOM)
        assert len(all_series) == 6
        for series in all_series:
            assert series.points, series.name


class TestOverlapExtension:
    STUDY = overlap_study(FLOW)

    def test_overlap_never_slower(self):
        for result in self.STUDY.results:
            assert result.overlapped_s <= result.serialized_s

    def test_saving_fraction_bounded(self):
        for result in self.STUDY.results:
            assert 0.0 <= result.saving_fraction < 1.0

    def test_sw_passthrough(self):
        impl = FLOW.run_variant("sw")
        assert overlapped_blur_seconds(impl) == impl.blur_seconds

    def test_render(self):
        assert "overlap" in self.STUDY.render()


class TestThroughputExtension:
    STUDY = video_throughput(FLOW)

    def test_all_variants_present(self):
        keys = [r.key for r in self.STUDY.results]
        assert keys == list(FLOW.variants)

    def test_pipelining_never_hurts(self):
        for result in self.STUDY.results:
            assert result.fps_pipelined >= result.fps_sequential - 1e-12

    def test_sw_cannot_overlap(self):
        result = self.STUDY.result("sw")
        assert result.fps_pipelined == result.fps_sequential

    def test_accelerated_variants_are_ps_bound(self):
        # Once the blur is fast, the frame rate is set by the PS stages —
        # the Amdahl observation implicit in the paper's totals.
        for key in ("pragmas", "fxp"):
            assert self.STUDY.result(key).bound_by == "ps stages"

    def test_fxp_beats_sw_throughput(self):
        assert (
            self.STUDY.result("fxp").fps_pipelined
            > self.STUDY.result("sw").fps_pipelined
        )

    def test_render(self):
        assert "frames/s" in self.STUDY.render()


@pytest.fixture(scope="module")
def runtime_row():
    # One small live measurement shared by the assertions below (the
    # frame size only scales the rates, not the study's mechanics).
    # A fixture, not a class attribute: it must run lazily at test time,
    # not during collection.
    return runtime_throughput(size=48, frames=3, batch_size=2)


class TestRuntimeThroughputRows:
    def test_measured_rates_are_positive(self, runtime_row):
        assert runtime_row.fps_sequential > 0.0
        assert runtime_row.fps_pipelined > 0.0
        assert "measured" in runtime_row.bound_by

    def test_rows_append_to_video_study(self, runtime_row):
        study = video_throughput(FLOW, runtime=[runtime_row])
        keys = [r.key for r in study.results]
        assert keys[: len(FLOW.variants)] == list(FLOW.variants)
        assert keys[-1] == "sw-batch"
        assert study.result("sw-batch") is runtime_row
        assert "sw-batch" in study.render()

    def test_sharded_key_names_the_shard_count(self):
        row = runtime_throughput(size=32, frames=2, shards=1, batch_size=2)
        assert row.key == "sw-shard1"

    def test_autoscaled_row_without_shards_is_labelled_as_such(self):
        # autoscale implies a (1-worker-floor) shard pool, so the row must
        # not masquerade as the in-process "sw-batch" baseline.
        row = runtime_throughput(
            size=32, frames=2, batch_size=2, autoscale=True
        )
        assert row.key == "sw-autoscale"
        assert row.fps_pipelined > 0.0

    def test_fixed_row_labels_the_blur(self):
        row = runtime_throughput(size=32, frames=2, fixed=True, batch_size=2)
        assert "fxp" in row.bound_by
