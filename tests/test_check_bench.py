"""Tests for tools/check_bench.py: the perf-trajectory gate.

Driven with synthetic pytest-benchmark JSON so the comparison semantics
(bands, directions, strictness, unplugged-gate detection) are pinned
without running a single real benchmark.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_bench.py"

spec = importlib.util.spec_from_file_location("check_bench", TOOL)
check_bench = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_bench", check_bench)
spec.loader.exec_module(check_bench)


def write_fresh(tmp_path, benchmarks):
    path = tmp_path / "fresh.json"
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


def write_baseline(tmp_path, metrics):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"metrics": metrics}))
    return path


def bench(name, **extra):
    return {"name": name, "extra_info": extra}


class TestCheckMetric:
    def test_min_direction_within_band_passes(self):
        failures = check_bench.check_metric(
            "t::pps",
            {"value": 100.0, "tolerance": 0.2, "direction": "min",
             "strict": True},
            [bench("t[case]", pps=85.0)],
            strict_perf=False,
        )
        assert failures == []

    def test_min_direction_below_band_fails(self):
        failures = check_bench.check_metric(
            "t::pps",
            {"value": 100.0, "tolerance": 0.2, "direction": "min",
             "strict": True},
            [bench("t[case]", pps=70.0)],
            strict_perf=False,
        )
        assert len(failures) == 1

    def test_max_direction_zero_counter_exact(self):
        spec = {"value": 0.0, "tolerance": 0.0, "direction": "max",
                "strict": True}
        ok = check_bench.check_metric(
            "t::allocs", spec, [bench("t", allocs=0.0)], strict_perf=False
        )
        bad = check_bench.check_metric(
            "t::allocs", spec, [bench("t", allocs=1.0)], strict_perf=False
        )
        assert ok == [] and len(bad) == 1

    def test_non_strict_violation_warns_without_failing(self):
        spec = {"value": 100.0, "tolerance": 0.0, "direction": "min",
                "strict": False}
        failures = check_bench.check_metric(
            "t::pps", spec, [bench("t", pps=1.0)], strict_perf=False
        )
        assert failures == []

    def test_strict_perf_enforces_non_strict_metrics(self):
        spec = {"value": 100.0, "tolerance": 0.0, "direction": "min",
                "strict": False}
        failures = check_bench.check_metric(
            "t::pps", spec, [bench("t", pps=1.0)], strict_perf=True
        )
        assert len(failures) == 1

    def test_unmatched_metric_is_a_failure(self):
        # A renamed benchmark must not silently unplug the gate.
        failures = check_bench.check_metric(
            "vanished::pps",
            {"value": 1.0, "direction": "min", "strict": False},
            [bench("t", pps=1.0)],
            strict_perf=False,
        )
        assert failures and "no benchmark matched" in failures[0]

    def test_substring_matches_every_parametrization(self):
        spec = {"value": 10.0, "tolerance": 0.0, "direction": "min",
                "strict": True}
        failures = check_bench.check_metric(
            "t::pps", spec,
            [bench("t[a]", pps=20.0), bench("t[b]", pps=5.0)],
            strict_perf=False,
        )
        assert len(failures) == 1  # only t[b] is out of band

    def test_malformed_key_reported(self):
        failures = check_bench.check_metric(
            "no-separator", {"value": 1.0}, [], strict_perf=False
        )
        assert failures and "malformed" in failures[0]

    def test_unknown_direction_reported(self):
        failures = check_bench.check_metric(
            "t::pps", {"value": 1.0, "direction": "sideways"},
            [bench("t", pps=1.0)], strict_perf=False,
        )
        assert failures and "direction" in failures[0]


class TestMain:
    def test_end_to_end_pass_and_fail(self, tmp_path, capsys):
        fresh = write_fresh(
            tmp_path, [bench("t", allocs=0.0), bench("t", pps=50.0)]
        )
        baseline = write_baseline(tmp_path, {
            "t::allocs": {"value": 0.0, "tolerance": 0.0,
                          "direction": "max", "strict": True},
        })
        assert check_bench.main(
            [str(fresh), "--baseline", str(baseline)]
        ) == 0
        baseline = write_baseline(tmp_path, {
            "t::allocs": {"value": 0.0, "tolerance": 0.0,
                          "direction": "max", "strict": True},
            "t::pps": {"value": 100.0, "tolerance": 0.1,
                       "direction": "min", "strict": True},
        })
        assert check_bench.main(
            [str(fresh), "--baseline", str(baseline)]
        ) == 1

    def test_rejects_non_benchmark_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"something": "else"}))
        baseline = write_baseline(tmp_path, {})
        with pytest.raises(SystemExit):
            check_bench.main([str(bad), "--baseline", str(baseline)])


class TestCommittedBaseline:
    def test_committed_baseline_is_well_formed(self):
        baseline = json.loads(
            (TOOL.parent.parent / "benchmarks" / "baseline.json").read_text()
        )
        assert baseline["metrics"], "baseline must track at least one metric"
        for key, spec in baseline["metrics"].items():
            assert "::" in key
            assert spec["direction"] in ("min", "max")
            assert spec["tolerance"] >= 0.0
            assert isinstance(spec["strict"], bool)
        # The zero-copy counters are the PR 3 acceptance bar: they must
        # stay strict (machine-independent) so CI always enforces them.
        strict = {k for k, s in baseline["metrics"].items() if s["strict"]}
        assert (
            "test_shard_zero_copy_data_plane::copies_per_frame" in strict
        )
        assert (
            "test_shard_zero_copy_data_plane::shm_allocs_per_batch" in strict
        )
        # Likewise the PR 5 fused-dataflow acceptance bar: the zero
        # stage-temporaries counter is machine-independent and must
        # stay strict.
        assert "test_fused_vs_staged_1024::intermediate_bytes" in strict
        assert "test_fused_threads_1024::intermediate_bytes" in strict
        # And the PR 7 planner acceptance bar: planned dispatch matching
        # the hand-tuned path is a decision check, not a timing.
        assert (
            "test_planner_dispatch_1024::planner_matches_manual" in strict
        )
        # The PR 8 chaos-recovery acceptance bar: all three counters are
        # machine-independent (a deterministic fault plan always loses
        # zero frames, always kills the hung worker, always browns the
        # killed batch out) and must stay strict.  frames_lost gates as
        # a max (exactly zero); the other two gate as mins so a
        # silently-disabled watchdog or breaker — which would zero the
        # counters while the outputs still pass — fails the build.
        chaos = baseline["metrics"]["test_chaos_recovery_small::frames_lost"]
        assert chaos["direction"] == "max" and chaos["value"] == 0.0
        assert "test_chaos_recovery_small::frames_lost" in strict
        assert "test_chaos_recovery_small::watchdog_kills" in strict
        assert "test_chaos_recovery_small::brownout_batches" in strict
        for key in ("watchdog_kills", "brownout_batches"):
            spec = baseline["metrics"][f"test_chaos_recovery_small::{key}"]
            assert spec["direction"] == "min" and spec["value"] >= 1.0
        # The PR 9 network data-plane acceptance bar, same reasoning one
        # level up: zero staging copies across the wire and zero frames
        # lost under a seeded host kill gate as strict maxes (exactly
        # zero), and host_respawns gates as a strict min so a
        # silently-disabled revival path fails the build.
        for key in ("copies_per_frame", "frames_lost"):
            spec = baseline["metrics"][f"test_network_data_plane_small::{key}"]
            assert f"test_network_data_plane_small::{key}" in strict
            assert spec["direction"] == "max" and spec["value"] == 0.0
        respawns = baseline["metrics"][
            "test_network_data_plane_small::host_respawns"
        ]
        assert "test_network_data_plane_small::host_respawns" in strict
        assert respawns["direction"] == "min" and respawns["value"] >= 1.0
        # The PR 10 overload acceptance bar: a seeded queue-depth storm
        # makes every counter machine-independent.  The protected
        # (interactive) class gates as strict maxes — zero frames lost
        # and p95 at most 1.0x its SLO — while the degradation really
        # firing gates as strict mins (transitions walked, best-effort
        # shed) so a silently-disabled controller fails the build.
        for key in ("interactive_frames_lost",):
            spec = baseline["metrics"][
                f"test_overload_degradation_small::{key}"
            ]
            assert f"test_overload_degradation_small::{key}" in strict
            assert spec["direction"] == "max" and spec["value"] == 0.0
        p95_gate = baseline["metrics"][
            "test_overload_degradation_small::interactive_p95_x_slo"
        ]
        assert (
            "test_overload_degradation_small::interactive_p95_x_slo"
            in strict
        )
        assert p95_gate["direction"] == "max" and p95_gate["value"] == 1.0
        for key in ("ladder_transitions", "best_effort_shed"):
            spec = baseline["metrics"][
                f"test_overload_degradation_small::{key}"
            ]
            assert f"test_overload_degradation_small::{key}" in strict
            assert spec["direction"] == "min" and spec["value"] >= 1.0
        # And the PR 10 drain bar: a rolling restart cycles every host
        # (strict min 2) while losing exactly zero admitted frames.
        restart_lost = baseline["metrics"][
            "test_rolling_restart_small::frames_lost"
        ]
        assert "test_rolling_restart_small::frames_lost" in strict
        assert (
            restart_lost["direction"] == "max"
            and restart_lost["value"] == 0.0
        )
        drained = baseline["metrics"][
            "test_rolling_restart_small::hosts_drained"
        ]
        assert "test_rolling_restart_small::hosts_drained" in strict
        assert drained["direction"] == "min" and drained["value"] >= 2.0

    def test_tracks_the_emitted_data_plane_metrics(self):
        # Guards the gate's wiring from the tier-1 suite (benchmark-side
        # tests only run when a bench job selects them): if a data-plane
        # metric is renamed in benchmarks/bench_*.py without updating
        # baseline.json, check_bench would silently check nothing for it.
        baseline = json.loads(
            (TOOL.parent.parent / "benchmarks" / "baseline.json").read_text()
        )
        emitted = {
            "test_shard_zero_copy_data_plane::copies_per_frame",
            "test_shard_zero_copy_data_plane::shm_allocs_per_batch",
            "test_shard_zero_copy_data_plane::frames_per_sec",
            "test_shard_zero_copy_data_plane::speedup_vs_legacy_cycle",
            "test_shard_legacy_cycle_data_plane::frames_per_sec",
            "test_huge_plane_narrow_kernel[tiled]::pixels_per_sec",
            "test_two_tenant_contention_small::light_p95_x_solo",
            "test_fused_vs_staged_1024::intermediate_bytes",
            "test_fused_vs_staged_1024::speedup_vs_staged",
            "test_fused_vs_staged_1024::pixels_per_sec",
            "test_fused_threads_1024::intermediate_bytes",
            "test_planner_dispatch_1024::planner_matches_manual",
            "test_planner_dispatch_1024::pixels_per_sec",
            "test_planner_dispatch_1024::speedup_vs_manual",
            "test_chaos_recovery_small::frames_lost",
            "test_chaos_recovery_small::watchdog_kills",
            "test_chaos_recovery_small::brownout_batches",
            "test_network_data_plane_small::copies_per_frame",
            "test_network_data_plane_small::frames_lost",
            "test_network_data_plane_small::host_respawns",
            "test_network_data_plane_small::frames_per_sec",
            "test_overload_degradation_small::ladder_transitions",
            "test_overload_degradation_small::best_effort_shed",
            "test_overload_degradation_small::interactive_frames_lost",
            "test_overload_degradation_small::interactive_p95_x_slo",
            "test_rolling_restart_small::frames_lost",
            "test_rolling_restart_small::hosts_drained",
        }
        missing = emitted - set(baseline["metrics"])
        assert not missing, f"baseline.json lost metrics: {sorted(missing)}"
        # And the emitters themselves still exist in the bench sources —
        # a rename there would otherwise dangle the baseline keys.
        bench_dir = TOOL.parent.parent / "benchmarks"
        sources = "".join(
            p.read_text() for p in bench_dir.glob("bench_*.py")
        )
        for key in baseline["metrics"]:
            bench_name = key.partition("::")[0].partition("[")[0]
            assert bench_name in sources, (
                f"baseline metric {key} references a benchmark missing "
                "from benchmarks/bench_*.py"
            )
