"""Wire-protocol framing tests (:mod:`repro.runtime.net`).

The multi-host data plane stands on one claim: a frame round-trips
through ``sendmsg``/``recv_into`` with **zero** userspace staging
copies, whatever the payload geometry and however rudely the transport
fragments it.  The hypothesis property drives random shapes, metadata
and chunk sizes through a deliberately fragmenting in-memory socket
(every ``sendmsg`` accepts only a few bytes, every ``recv_into`` yields
only a few bytes) so the partial-I/O loops are exercised on every
example — plus a real ``socketpair`` pass, and the taxonomy of corrupt
frames a peer can throw at us.
"""

import socket
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WireProtocolError
from repro.runtime.net import (
    MAGIC,
    MSG_ERR,
    MSG_OK,
    MSG_PING,
    MSG_RUN,
    NetCounters,
    NetStats,
    PRELUDE_BYTES,
    VERSION,
    recv_message,
    send_message,
)


class _ChunkySocket:
    """One direction of an in-memory stream with forced fragmentation.

    ``sendmsg`` accepts at most ``chunk`` bytes per call and
    ``recv_into`` returns at most ``chunk`` bytes per call, so the
    framing layer's partial-send and partial-read loops run on every
    frame (a real loopback socket almost never fragments small frames).
    """

    def __init__(self, chunk: int):
        self.chunk = chunk
        self.buffer = bytearray()
        self.peer: "_ChunkySocket" = None  # wired by pair()
        self.closed = False

    @staticmethod
    def pair(chunk: int):
        a, b = _ChunkySocket(chunk), _ChunkySocket(chunk)
        a.peer, b.peer = b, a
        return a, b

    def sendmsg(self, buffers):
        budget = self.chunk
        sent = 0
        for view in buffers:
            take = min(budget - sent, view.nbytes)
            if take <= 0:
                break
            self.peer.buffer.extend(view[:take])
            sent += take
        return sent

    def recv_into(self, view):
        if not self.buffer:
            return 0  # peer "closed": clean EOF
        take = min(self.chunk, len(self.buffer), view.nbytes)
        view[:take] = self.buffer[:take]
        del self.buffer[:take]
        return take


def _roundtrip(msg_type, meta, payload, chunk, sink=None):
    client, server = _ChunkySocket.pair(chunk)
    sent_counters = NetCounters()
    recv_counters = NetCounters()
    send_message(client, msg_type, meta, payload, counters=sent_counters)
    frame = recv_message(server, sink=sink, counters=recv_counters)
    assert frame is not None
    return frame, sent_counters.stats, recv_counters.stats


shapes = st.lists(st.integers(1, 5), min_size=3, max_size=4)
metas = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(-1000, 1000), st.text(max_size=12), st.none()),
    max_size=4,
)


class TestFramingRoundTrip:
    @given(shape=shapes, meta=metas, chunk=st.integers(1, 7), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_any_array_any_meta_any_fragmentation(self, shape, meta, chunk, seed):
        rng = np.random.default_rng(seed)
        payload = rng.random(shape, dtype=np.float32)
        # Exact-size writable sink, as the host pool supplies: the
        # payload must land in it untouched and nothing may be staged.
        sink_buffer = np.empty(shape, dtype=np.float32)

        def sink(msg_type, got_meta):
            assert msg_type == MSG_RUN
            assert got_meta == meta
            return sink_buffer

        (msg_type, got_meta, got_payload), sent, received = _roundtrip(
            MSG_RUN, meta, payload, chunk, sink=sink
        )
        assert msg_type == MSG_RUN
        assert got_meta == meta
        assert got_payload is sink_buffer
        np.testing.assert_array_equal(sink_buffer, payload)
        # Honesty counters: everything sent arrived, nothing staged.
        assert sent.messages_sent == 1 and received.messages_received == 1
        assert sent.payload_bytes_sent == payload.nbytes
        assert received.payload_bytes_received == payload.nbytes
        assert sent.bytes_sent == received.bytes_received
        assert sent.bytes_sent > payload.nbytes  # prelude + metadata
        assert received.bytes_staged == 0

    @given(chunk=st.integers(1, 7))
    @settings(max_examples=10, deadline=None)
    def test_sinkless_receive_is_counted_as_staged(self, chunk):
        payload = np.arange(24, dtype=np.float32)
        (_, _, got), _, received = _roundtrip(MSG_OK, {}, payload, chunk)
        assert bytes(got) == payload.tobytes()
        assert received.bytes_staged == payload.nbytes

    def test_empty_payload_and_meta(self):
        (msg_type, meta, payload), sent, _ = _roundtrip(MSG_PING, {}, None, 7)
        assert msg_type == MSG_PING and meta == {} and payload is None
        assert sent.bytes_sent == PRELUDE_BYTES + len(b"{}")

    def test_back_to_back_frames_on_one_stream(self):
        client, server = _ChunkySocket.pair(5)
        send_message(client, MSG_PING, {"n": 1})
        send_message(client, MSG_OK, {"n": 2}, np.zeros(3, dtype=np.float32))
        first = recv_message(server)
        second = recv_message(server)
        assert first[0] == MSG_PING and first[1] == {"n": 1}
        assert second[0] == MSG_OK and second[1] == {"n": 2}
        # Stream drained: the next read reports a clean close.
        assert recv_message(server) is None

    def test_real_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = np.random.default_rng(3).random((2, 8, 8), dtype=np.float32)
            out = np.empty_like(payload)
            counters = NetCounters()
            send_message(left, MSG_RUN, {"k": "v"}, payload)
            frame = recv_message(
                right, sink=lambda t, m: out, counters=counters
            )
            assert frame[0] == MSG_RUN and frame[1] == {"k": "v"}
            np.testing.assert_array_equal(out, payload)
            assert counters.stats.bytes_staged == 0
        finally:
            left.close()
            right.close()


class TestCorruptFrames:
    def _recv_bytes(self, raw: bytes):
        client, server = _ChunkySocket.pair(1 << 20)
        server.buffer.extend(raw)
        return recv_message(server)

    def test_bad_magic(self):
        raw = struct.pack(">4sBBHIQ", b"HTTP", VERSION, MSG_PING, 0, 0, 0)
        with pytest.raises(WireProtocolError, match="magic"):
            self._recv_bytes(raw)

    def test_version_mismatch(self):
        raw = struct.pack(">4sBBHIQ", MAGIC, VERSION + 1, MSG_PING, 0, 0, 0)
        with pytest.raises(WireProtocolError, match="version"):
            self._recv_bytes(raw)

    def test_unknown_message_type(self):
        raw = struct.pack(">4sBBHIQ", MAGIC, VERSION, 99, 0, 0, 0)
        with pytest.raises(WireProtocolError, match="message type"):
            self._recv_bytes(raw)
        with pytest.raises(WireProtocolError, match="message type"):
            send_message(_ChunkySocket.pair(8)[0], 99, {})

    def test_oversized_meta_and_payload_rejected_before_allocation(self):
        raw = struct.pack(">4sBBHIQ", MAGIC, VERSION, MSG_ERR, 0, 1 << 30, 0)
        with pytest.raises(WireProtocolError, match="metadata too large"):
            self._recv_bytes(raw)
        raw = struct.pack(">4sBBHIQ", MAGIC, VERSION, MSG_OK, 0, 0, 1 << 40)
        with pytest.raises(WireProtocolError, match="payload too large"):
            self._recv_bytes(raw)

    def test_undecodable_and_non_object_meta(self):
        for body in (b"\xff\xfe{", b"[1,2]"):
            raw = struct.pack(
                ">4sBBHIQ", MAGIC, VERSION, MSG_PING, 0, len(body), 0
            ) + body
            with pytest.raises(WireProtocolError, match="metadata"):
                self._recv_bytes(raw)

    def test_truncation_mid_prelude_mid_meta_and_mid_payload(self):
        whole = bytearray()
        sock, server = _ChunkySocket.pair(1 << 20)
        send_message(sock, MSG_OK, {"a": 1}, np.zeros(4, dtype=np.float32))
        whole = bytes(server.buffer)
        # A clean close before any byte is None, not an error ...
        assert self._recv_bytes(b"") is None
        # ... but a close anywhere mid-frame is always truncation.
        for cut in (1, PRELUDE_BYTES - 1, PRELUDE_BYTES + 2, len(whole) - 1):
            with pytest.raises(WireProtocolError, match="mid-frame"):
                self._recv_bytes(whole[:cut])

    def test_mis_sized_and_readonly_sinks_rejected(self):
        payload = np.zeros(8, dtype=np.float32)
        with pytest.raises(WireProtocolError, match="sink supplied"):
            _roundtrip(
                MSG_OK, {}, payload, 1 << 20,
                sink=lambda t, m: bytearray(3),
            )
        with pytest.raises(WireProtocolError, match="read-only"):
            _roundtrip(
                MSG_OK, {}, payload, 1 << 20,
                sink=lambda t, m: bytes(payload.nbytes),
            )

    def test_non_contiguous_payload_refused_on_send(self):
        strided = np.zeros((4, 4), dtype=np.float32)[:, ::2]
        with pytest.raises(WireProtocolError, match="contiguous"):
            send_message(_ChunkySocket.pair(8)[0], MSG_OK, {}, strided)


class TestNetCounters:
    def test_snapshot_is_immutable_and_cumulative(self):
        counters = NetCounters()
        counters.count_sent(100, 80)
        counters.count_received(60, 40)
        counters.count_staged(40)
        stats = counters.stats
        assert stats == NetStats(
            messages_sent=1,
            messages_received=1,
            bytes_sent=100,
            bytes_received=60,
            payload_bytes_sent=80,
            payload_bytes_received=40,
            bytes_staged=40,
        )
        counters.count_sent(1, 1)
        assert stats.messages_sent == 1  # old snapshot unchanged
        with pytest.raises(AttributeError):
            stats.bytes_sent = 0
