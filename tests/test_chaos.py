"""Chaos suite: seeded fault plans against real worker processes.

Where ``test_reliability.py`` unit-tests the mechanisms on a fake
clock, these scenarios inject *real* faults — in-worker SIGKILL, hangs
the watchdog must break, arena exhaustion, slow jitter — through
:class:`repro.runtime.FaultPlan` and assert the end-to-end recovery
contract:

* a hung batch is watchdog-killed and hedge-replayed, bit-identically;
* a *persistently* hung batch surfaces
  :class:`~repro.errors.ShardTimeoutError` with honest attributes;
* arena exhaustion degrades to transient (copy-out) slabs, not failure;
* under an arbitrary seeded fault plan, every submitted frame resolves
  exactly once — a result or a taxonomy error, never a hang, never a
  duplicate (the hypothesis property at the bottom);
* frame deadlines ride into the pool: a hang burns the budget, the
  frame fails loudly instead of waiting out the hang.

Everything here is marked ``fault`` for the per-PR chaos CI job.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ShardCrashError,
    ShardTimeoutError,
)
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    BatchToneMapper,
    BreakerPolicy,
    FaultPlan,
    ShardPool,
    ToneMapIngestor,
    ToneMapService,
)
from repro.tonemap.pipeline import ToneMapParams

pytestmark = pytest.mark.fault

PARAMS = ToneMapParams(sigma=2.0, radius=6)

#: Long enough that only the watchdog can end the hang, short enough not
#: to matter if a test fails and the worker is reaped by pool close.
HANG_MS = 30_000.0
#: Per-attempt budget: generous against CI noise, tiny against HANG_MS.
TIMEOUT_S = 1.0


def _stack(frames=4, size=32, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((frames, size, size), dtype=np.float32)


def _want(stack):
    return BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)


class TestWatchdogAndHedgedReplay:
    def test_hung_batch_is_killed_and_hedge_replayed(self):
        stack = _stack()
        plan = FaultPlan(hang_batches=(0,), hang_ms=HANG_MS)
        with ShardPool(PARAMS, shards=2, faults=plan) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            got = pool.run_leased(lease, timeout=TIMEOUT_S).materialize()
            lease.release()
            np.testing.assert_array_equal(got, _want(stack))
            assert pool.watchdog_kills >= 1
            assert pool.hedged_replays == 1
            assert pool.worker_respawns >= 1
            assert pool.arena.stats.leases_active == 0

    def test_persistent_hang_surfaces_shard_timeout(self):
        stack = _stack(seed=1)
        plan = FaultPlan(hang_batches=(0, 1), hang_ms=HANG_MS)
        with ShardPool(PARAMS, shards=2, faults=plan) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            with pytest.raises(ShardTimeoutError) as excinfo:
                pool.run_leased(lease, timeout=TIMEOUT_S)
            lease.release()
            assert excinfo.value.retries == 1  # the hedge was spent
            assert excinfo.value.elapsed_ms >= 2 * TIMEOUT_S * 1e3
            # Both attempts were ended by the watchdog, not by luck.
            assert pool.watchdog_kills >= 2
            assert pool.arena.stats.leases_active == 0
            # The plan is exhausted: the pool still serves.
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            pool.run_leased(lease, timeout=TIMEOUT_S).release()
            lease.release()

    def test_default_timeout_arms_the_watchdog(self):
        stack = _stack(seed=2)
        plan = FaultPlan(hang_batches=(0,), hang_ms=HANG_MS)
        with ShardPool(
            PARAMS, shards=2, faults=plan,
            default_timeout_ms=TIMEOUT_S * 1e3,
        ) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            got = pool.run_leased(lease).materialize()  # no explicit timeout
            lease.release()
            np.testing.assert_array_equal(got, _want(stack))
            assert pool.watchdog_kills >= 1 and pool.hedged_replays == 1


class TestArenaExhaustion:
    def test_exhaustion_degrades_to_transient_slabs(self):
        stack = _stack(seed=3)
        plan = FaultPlan(exhaust_batches=(0,))
        with ShardPool(PARAMS, shards=2, faults=plan) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            got = pool.run_leased(lease).materialize()
            lease.release()
            np.testing.assert_array_equal(got, _want(stack))
            assert pool.arena.stats.overflow >= 1
            assert pool.arena.stats.leases_active == 0


class TestBreakerBrownoutEndToEnd:
    def test_real_kills_trip_the_breaker_into_brownout(self):
        stack = _stack(seed=4)
        want = _want(stack)
        plan = FaultPlan(kill_probability=1.0)  # every shard attempt dies
        policy = BreakerPolicy(
            failure_threshold=1, window_s=60.0, cooldown_s=600.0,
            probe_batches=1,
        )
        with ToneMapService(
            PARAMS, batch_size=4, shards=2, breaker=policy, faults=plan
        ) as service:
            for round_index in range(2):
                lease = service.lease_input(stack.shape[1:])
                lease.array[: len(stack)] = stack
                outputs = service.submit_stack(
                    lease,
                    len(stack),
                    [f"r{round_index}f{i}" for i in range(len(stack))],
                ).result(timeout=120)
                got = np.stack([o.pixels for o in outputs]).astype(np.float32)
                np.testing.assert_array_equal(got, want)
            reliability = service.stats.reliability
            assert reliability.breaker_state == "open"
            assert reliability.brownout_batches == 2
            assert reliability.breaker_transitions == 1


class TestDeadlinePropagation:
    def test_deadline_budget_rides_into_the_pool(self):
        # Every shard attempt hangs; the frame's own deadline becomes
        # the attempt budget.  The frame must fail loudly (timeout once
        # the hedge budget is spent) — never wait out a 30 s hang.
        images = [
            make_scene(
                "window_interior", SceneParams(height=24, width=24, seed=s)
            )
            for s in range(2)
        ]
        plan = FaultPlan(hang_probability=1.0, hang_ms=HANG_MS)
        with ToneMapService(PARAMS, batch_size=2, shards=1, faults=plan) as service:
            with ToneMapIngestor(
                service, max_delay_ms=5, queue_limit=8
            ) as ingestor:
                futures = [
                    ingestor.submit(img, deadline_ms=1_500.0) for img in images
                ]
                for future in futures:
                    with pytest.raises((ShardTimeoutError, DeadlineExceededError)):
                        future.result(timeout=120)
            assert service.pool.arena.stats.leases_active == 0
            assert service.pool.watchdog_kills >= 1


# -- Exactly-once property ---------------------------------------------------

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    kill_batches=st.lists(
        st.integers(min_value=0, max_value=5), max_size=2, unique=True
    ).map(tuple),
    hang_batches=st.lists(
        st.integers(min_value=0, max_value=5), max_size=1, unique=True
    ).map(tuple),
    exhaust_batches=st.lists(
        st.integers(min_value=0, max_value=5), max_size=2, unique=True
    ).map(tuple),
    kill_probability=st.sampled_from([0.0, 0.3]),
    slow_probability=st.sampled_from([0.0, 0.5]),
    hang_ms=st.just(HANG_MS),
    jitter_ms=st.just(2.0),
)


@given(plan=fault_plans)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_every_frame_resolves_exactly_once_under_any_plan(plan):
    """The exactly-once contract: N frames in, N resolutions out.

    Whatever the plan injects — crashes, hangs, exhaustion, jitter —
    every submitted future resolves exactly once with either a real
    output or a taxonomy error.  No hangs (the ``result`` timeout would
    trip), no lost frames, no duplicates, no leaked leases.
    """
    images = [
        make_scene("window_interior", SceneParams(height=24, width=24, seed=s))
        for s in range(6)
    ]
    policy = BreakerPolicy(
        failure_threshold=2, window_s=60.0, cooldown_s=600.0, probe_batches=1
    )
    results, errors = [], []
    with ToneMapService(
        PARAMS, batch_size=2, shards=1, faults=plan, breaker=policy,
        shard_timeout_ms=TIMEOUT_S * 1e3,
    ) as service:
        with ToneMapIngestor(
            service, max_delay_ms=5, queue_limit=16
        ) as ingestor:
            futures = [ingestor.submit(img) for img in images]
            for future in futures:
                try:
                    results.append(future.result(timeout=120))
                except ReproError as exc:
                    errors.append(exc)
        assert len(results) + len(errors) == len(images)
        assert all(out is not None for out in results)
        # Only taxonomy errors may surface — and with the breaker
        # browning persistent failure out, shard errors need the
        # breaker's threshold not yet met.
        assert all(
            isinstance(e, (ShardCrashError, ShardTimeoutError)) for e in errors
        )
        assert service.pool.arena.stats.leases_active == 0
