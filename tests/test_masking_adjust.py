"""Tests for repro.tonemap.masking and repro.tonemap.adjust."""

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.tonemap import (
    AdjustParams,
    MaskingParams,
    adjust_brightness_contrast,
    auto_contrast,
    masking_exponent,
    nonlinear_masking,
)


class TestMaskingExponent:
    def test_midgray_mask_is_identity(self):
        exp = masking_exponent(np.full((4, 4), 0.5))
        np.testing.assert_allclose(exp, 1.0)

    def test_bright_mask_raises_exponent(self):
        exp = masking_exponent(np.full((2, 2), 1.0))
        np.testing.assert_allclose(exp, 2.0)

    def test_dark_mask_lowers_exponent(self):
        exp = masking_exponent(np.full((2, 2), 0.0))
        np.testing.assert_allclose(exp, 0.5)

    def test_strength_scales_range(self):
        strong = masking_exponent(np.full((1, 1), 1.0), MaskingParams(strength=2.0))
        assert strong[0, 0] == pytest.approx(4.0)

    def test_zero_strength_disables(self):
        exp = masking_exponent(
            np.random.default_rng(0).uniform(0, 1, (4, 4)),
            MaskingParams(strength=0.0),
        )
        np.testing.assert_allclose(exp, 1.0)

    def test_out_of_range_mask_rejected(self):
        with pytest.raises(ToneMapError):
            masking_exponent(np.array([[1.5]]))
        with pytest.raises(ToneMapError):
            masking_exponent(np.array([[-0.2]]))

    def test_negative_strength_rejected(self):
        with pytest.raises(ToneMapError):
            MaskingParams(strength=-1.0)

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ToneMapError):
            MaskingParams(epsilon=0.0)
        with pytest.raises(ToneMapError):
            MaskingParams(epsilon=0.5)


class TestNonlinearMasking:
    def test_dark_pixels_brighten_under_dark_mask(self):
        # Paper: "dark zones will become brighter".
        img = np.full((4, 4), 0.1)
        mask = np.full((4, 4), 0.1)
        out = nonlinear_masking(img, mask)
        assert np.all(out > img)

    def test_bright_pixels_darken_under_bright_mask(self):
        # Paper: "bright zones will become darker".
        img = np.full((4, 4), 0.9)
        mask = np.full((4, 4), 0.9)
        out = nonlinear_masking(img, mask)
        assert np.all(out < img)

    def test_output_unit_range(self):
        rng = np.random.default_rng(1)
        img = rng.uniform(0, 1, (8, 8))
        mask = rng.uniform(0, 1, (8, 8))
        out = nonlinear_masking(img, mask)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_black_stays_black(self):
        img = np.zeros((4, 4))
        mask = np.full((4, 4), 0.2)
        out = nonlinear_masking(img, mask)
        np.testing.assert_array_equal(out, 0.0)

    def test_white_stays_white(self):
        img = np.ones((4, 4))
        mask = np.full((4, 4), 0.7)
        out = nonlinear_masking(img, mask)
        np.testing.assert_allclose(out, 1.0)

    def test_monotone_in_input(self):
        # Order of pixel values is preserved under a shared mask.
        img = np.linspace(0.01, 0.99, 64).reshape(8, 8)
        mask = np.full((8, 8), 0.3)
        out = nonlinear_masking(img, mask)
        assert np.all(np.diff(out.ravel()) > 0)

    def test_rgb_shares_luminance_mask(self):
        img = np.stack([np.full((4, 4), 0.25)] * 3, axis=2)
        mask = np.full((4, 4), 0.25)
        out = nonlinear_masking(img, mask)
        assert out.shape == img.shape
        # All channels get the same exponent.
        np.testing.assert_allclose(out[:, :, 0], out[:, :, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ToneMapError):
            nonlinear_masking(np.ones((4, 4)), np.ones((4, 5)))

    def test_3d_mask_rejected(self):
        with pytest.raises(ToneMapError):
            nonlinear_masking(np.ones((4, 4, 3)), np.ones((4, 4, 3)))

    def test_unnormalized_image_rejected(self):
        with pytest.raises(ToneMapError, match="normalized"):
            nonlinear_masking(np.full((4, 4), 2.0), np.full((4, 4), 0.5))


class TestAdjust:
    def test_identity(self):
        rng = np.random.default_rng(2)
        img = rng.uniform(0, 1, (8, 8))
        out = adjust_brightness_contrast(img, AdjustParams())
        np.testing.assert_allclose(out, img)
        assert AdjustParams().is_identity

    def test_brightness_shift(self):
        out = adjust_brightness_contrast(
            np.full((2, 2), 0.5), AdjustParams(brightness=0.2)
        )
        np.testing.assert_allclose(out, 0.7)

    def test_contrast_expands_around_midgray(self):
        img = np.array([[0.25, 0.75]])
        out = adjust_brightness_contrast(img, AdjustParams(contrast=2.0))
        np.testing.assert_allclose(out, [[0.0, 1.0]])

    def test_contrast_pivot_fixed(self):
        out = adjust_brightness_contrast(
            np.full((2, 2), 0.5), AdjustParams(contrast=3.0)
        )
        np.testing.assert_allclose(out, 0.5)

    def test_clamped_to_unit_range(self):
        img = np.array([[0.0, 1.0]])
        out = adjust_brightness_contrast(img, AdjustParams(brightness=0.5))
        assert out.max() <= 1.0

    def test_invalid_params(self):
        with pytest.raises(ToneMapError):
            AdjustParams(brightness=2.0)
        with pytest.raises(ToneMapError):
            AdjustParams(contrast=0.0)

    def test_auto_contrast_stretches(self):
        img = np.linspace(0.4, 0.6, 100).reshape(10, 10)
        out = auto_contrast(img, 0.0, 100.0)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_auto_contrast_flat_image(self):
        img = np.full((10, 10), 0.5)
        out = auto_contrast(img)
        np.testing.assert_allclose(out, 0.5)

    def test_auto_contrast_bad_percentiles(self):
        with pytest.raises(ToneMapError):
            auto_contrast(np.ones((4, 4)), 90.0, 10.0)
