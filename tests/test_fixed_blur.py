"""Tests for repro.tonemap.fixed_blur (bit-accurate FxP accelerator math)."""

import numpy as np
import pytest

from repro.errors import BusAlignmentError, ToneMapError
from repro.fixedpoint import FixedFormat, Overflow, Quant
from repro.tonemap import FixedBlurConfig, GaussianKernel, fixed_point_blur_plane
from repro.tonemap.fixed_blur import make_fixed_blur_fn
from repro.tonemap.gaussian import separable_blur

KERNEL = GaussianKernel(sigma=2.0, radius=6)


def random_plane(shape=(32, 32), seed=21):
    return np.random.default_rng(seed).uniform(0.0, 1.0, shape)


class TestConfig:
    def test_default_is_16bit(self):
        cfg = FixedBlurConfig()
        assert cfg.data_fmt.word_length == 16
        assert cfg.coeff_fmt.word_length == 16

    def test_bus_alignment_enforced(self):
        with pytest.raises(BusAlignmentError):
            FixedBlurConfig(data_fmt=FixedFormat(12, 2))

    def test_accumulator_width_covers_products_and_guard(self):
        cfg = FixedBlurConfig()
        acc = cfg.accumulator_fmt(taps=13)
        product = cfg.data_fmt.mul_result(cfg.coeff_fmt)
        assert acc.word_length > product.word_length
        assert acc.frac_length == product.frac_length

    def test_renormalized_coefficients_sum_to_unity(self):
        cfg = FixedBlurConfig()
        raws = cfg.quantized_coefficients(KERNEL)
        assert raws.sum() == 1 << cfg.coeff_fmt.frac_length

    def test_unnormalized_coefficients_close_to_unity(self):
        cfg = FixedBlurConfig(renormalize_coefficients=False)
        raws = cfg.quantized_coefficients(KERNEL)
        target = 1 << cfg.coeff_fmt.frac_length
        assert abs(int(raws.sum()) - target) <= KERNEL.taps  # within 1 LSB/tap


class TestFixedBlur:
    def test_close_to_float_reference(self):
        plane = random_plane()
        fixed = fixed_point_blur_plane(plane, KERNEL)
        ref = separable_blur(plane, KERNEL)
        # 14 fraction bits, two passes: error well under 2^-10.
        assert np.max(np.abs(fixed - ref)) < 2.0**-10

    def test_error_shrinks_with_width(self):
        plane = random_plane()
        ref = separable_blur(plane, KERNEL)
        errors = []
        # Coefficients stay 16-bit: a 32x32-bit product would not fit the
        # int64 backing store (and no designer would size a ROM that wide).
        coeff_fmt = FixedFormat(16, 0, signed=False, quant=Quant.RND,
                                overflow=Overflow.SAT)
        for width in (8, 16, 32):
            cfg = FixedBlurConfig(
                data_fmt=FixedFormat(width, 2, quant=Quant.RND,
                                     overflow=Overflow.SAT),
                coeff_fmt=coeff_fmt,
            )
            fixed = fixed_point_blur_plane(plane, KERNEL, cfg)
            errors.append(float(np.max(np.abs(fixed - ref))))
        assert errors[0] > errors[1] > errors[2]

    def test_output_values_are_representable(self):
        cfg = FixedBlurConfig()
        plane = random_plane()
        out = fixed_point_blur_plane(plane, KERNEL, cfg)
        scaled = out * 2.0**cfg.data_fmt.frac_length
        np.testing.assert_allclose(scaled, np.round(scaled), atol=1e-9)

    def test_constant_plane_preserved_exactly(self):
        # Renormalized coefficients give unity DC gain: a representable
        # constant passes through bit-exactly.
        plane = np.full((16, 16), 0.5)
        out = fixed_point_blur_plane(plane, KERNEL)
        np.testing.assert_array_equal(out, 0.5)

    def test_truncation_biases_down(self):
        # TRN quantization (the HLS default) systematically under-estimates,
        # the effect behind the paper's 66 dB (vs. higher with rounding).
        plane = random_plane()
        cfg = FixedBlurConfig(
            data_fmt=FixedFormat(16, 6, quant=Quant.TRN, overflow=Overflow.SAT),
            coeff_fmt=FixedFormat(16, 0, signed=False, quant=Quant.TRN,
                                  overflow=Overflow.SAT),
            renormalize_coefficients=False,
        )
        ref = separable_blur(plane, KERNEL)
        fixed = fixed_point_blur_plane(plane, KERNEL, cfg)
        err = fixed - ref
        assert err.mean() < 0.0

    def test_deterministic(self):
        plane = random_plane()
        a = fixed_point_blur_plane(plane, KERNEL)
        b = fixed_point_blur_plane(plane, KERNEL)
        np.testing.assert_array_equal(a, b)

    def test_requires_2d(self):
        with pytest.raises(ToneMapError):
            fixed_point_blur_plane(np.zeros((4, 4, 3)), KERNEL)

    def test_blur_fn_factory(self):
        fn = make_fixed_blur_fn()
        plane = random_plane()
        np.testing.assert_array_equal(
            fn(plane, KERNEL), fixed_point_blur_plane(plane, KERNEL)
        )

    def test_narrow_coeff_renormalization_guard(self):
        # An 8-bit coefficient format cannot absorb the residue into the
        # centre tap of a very flat kernel without overflow... but for a
        # normal kernel it can; verify no crash and unity sum.
        cfg = FixedBlurConfig(
            data_fmt=FixedFormat(8, 2, quant=Quant.RND, overflow=Overflow.SAT),
            coeff_fmt=FixedFormat(8, 0, signed=False, quant=Quant.RND,
                                  overflow=Overflow.SAT),
        )
        raws = cfg.quantized_coefficients(GaussianKernel(sigma=1.0, radius=2))
        assert raws.sum() == 1 << cfg.coeff_fmt.frac_length
