"""Tests for the repro-experiments CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for cmd in ("table2", "fig6", "fig7", "fig8", "profile", "all"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_fig5_output_dir(self, tmp_path):
        args = build_parser().parse_args(["fig5", "-o", str(tmp_path)])
        assert args.output_dir == tmp_path

    def test_report_requires_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_report_rejects_sw(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "sw"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.command == "batch"
        assert args.count == 8
        assert args.images is None
        assert not args.fixed

    def test_batch_options(self, tmp_path):
        args = build_parser().parse_args(
            ["batch", "--count", "3", "--batch-size", "2", "--fixed",
             "--images", str(tmp_path), "-o", str(tmp_path)]
        )
        assert args.count == 3
        assert args.batch_size == 2
        assert args.fixed
        assert args.images == tmp_path
        assert args.output_dir == tmp_path

    def test_batch_serving_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.shards is None
        assert args.max_delay_ms is None
        assert args.queue_limit is None
        assert args.policy == "block"

    def test_batch_serving_options(self):
        args = build_parser().parse_args(
            ["batch", "--shards", "4", "--max-delay-ms", "2.5",
             "--queue-limit", "32", "--policy", "shed-oldest"]
        )
        assert args.shards == 4
        assert args.max_delay_ms == 2.5
        assert args.queue_limit == 32
        assert args.policy == "shed-oldest"

    def test_batch_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "--policy", "drop-newest"])

    def test_batch_data_plane_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.autoscale is False
        assert args.min_shards is None
        assert args.max_shards is None
        assert args.arena_slots is None

    def test_batch_data_plane_options(self):
        args = build_parser().parse_args(
            ["batch", "--autoscale", "--min-shards", "2",
             "--max-shards", "6", "--arena-slots", "8"]
        )
        assert args.autoscale is True
        assert args.min_shards == 2
        assert args.max_shards == 6
        assert args.arena_slots == 8

    def test_batch_tenant_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.tenant_weights is None
        assert args.per_tenant_queue_limit is None
        assert args.lease_results is False

    def test_batch_tenant_options(self):
        args = build_parser().parse_args(
            ["batch", "--tenant-weights", "heavy=3,light=1",
             "--per-tenant-queue-limit", "8", "--lease-results",
             "--shards", "2"]
        )
        assert args.tenant_weights == "heavy=3,light=1"
        assert args.per_tenant_queue_limit == 8
        assert args.lease_results is True

    def test_batch_fused_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.fused is False
        assert args.threads is None
        assert args.sigma is None

    def test_batch_fused_options(self):
        args = build_parser().parse_args(
            ["batch", "--fused", "--threads", "4", "--sigma", "2.5"]
        )
        assert args.fused is True
        assert args.threads == 4
        assert args.sigma == 2.5

    def test_tenant_weight_spec_parsing(self):
        from repro.cli import _parse_tenant_weights

        assert _parse_tenant_weights("a=2,b=0.5") == {"a": 2.0, "b": 0.5}
        for bad in ("a", "a=", "=2", "a=zero", "a=-1", "a=0"):
            with pytest.raises(SystemExit):
                _parse_tenant_weights(bad)


class TestMain:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "FlP to FxP" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        assert "FIG 6" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "FIG 7" in out and "reduction" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "FIG 8a" in out and "FIG 8b" in out

    def test_fig5_small(self, capsys, tmp_path):
        assert main(["--size", "64", "fig5", "-o", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out
        assert (tmp_path / "fig5c_fixed.ppm").exists()

    def test_profile(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "%time" in out
        assert "gaussian_blur" in out

    def test_report(self, capsys):
        assert main(["report", "fxp"]) == 0
        out = capsys.readouterr().out
        assert "HLS Report" in out
        assert "pixels" in out

    def test_ablations(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "ABLATION" in out
        assert "word packing" in out
        assert "partition factor" in out

    def test_extensions(self, capsys):
        assert main(["extensions"]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out
        assert "frames/s" in out

    def test_robustness(self, capsys):
        assert main(["--size", "64", "robustness"]) == 0
        out = capsys.readouterr().out
        assert "ROBUSTNESS" in out
        assert "starfield" in out

    def test_batch_synthetic(self, capsys, tmp_path):
        assert main(
            ["--size", "32", "batch", "--count", "3", "--batch-size", "2",
             "-o", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "BATCH TONE-MAPPING" in out
        assert "pixels/sec" in out
        assert len(list(tmp_path.glob("*.ppm"))) == 3

    def test_batch_fixed_blur(self, capsys):
        assert main(["--size", "32", "batch", "--count", "2", "--fixed"]) == 0
        out = capsys.readouterr().out
        assert "fixed-point 16-bit" in out

    def test_batch_fused(self, capsys):
        assert main(
            ["--size", "32", "batch", "--count", "3", "--batch-size", "2",
             "--fused", "--threads", "2", "--sigma", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert "fused band dataflow (2 threads)" in captured.out
        # narrow kernel: no wide-kernel regime note
        assert "staged full-plane FFT" not in captured.err

    def test_batch_fused_wide_kernel_notes_regime(self, capsys):
        # Default sigma 16 is the staged FFT's home turf; --fused must
        # say so instead of silently running the slow regime.
        assert main(
            ["--size", "32", "batch", "--count", "2", "--fused"]
        ) == 0
        captured = capsys.readouterr()
        assert "fused band dataflow" in captured.out
        assert "--sigma 2" in captured.err

    def test_batch_sigma_applies_without_fused(self, capsys):
        assert main(
            ["--size", "32", "batch", "--count", "2", "--sigma", "3"]
        ) == 0
        assert "BATCH TONE-MAPPING" in capsys.readouterr().out

    def test_batch_fused_sharded_streaming(self, capsys):
        assert main(
            ["--size", "32", "batch", "--count", "4", "--batch-size", "2",
             "--fused", "--shards", "2", "--max-delay-ms", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "fused band dataflow (auto threads)" in out
        assert "streaming (ingestor)" in out

    def test_batch_fused_rejects_fixed(self):
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--fused", "--fixed"])

    def test_batch_threads_require_fused(self):
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--threads", "2"])

    def test_batch_nonpositive_threads_rejected_cleanly(self):
        # A usage error, not a ToneMapError traceback — and before any
        # image generation.
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--fused", "--threads", "0"])

    def test_batch_multi_tenant_lease_results(self, capsys):
        assert main(
            ["--size", "32", "batch", "--count", "6", "--batch-size", "2",
             "--shards", "2", "--tenant-weights", "heavy=3,light=1",
             "--per-tenant-queue-limit", "8", "--lease-results"]
        ) == 0
        out = capsys.readouterr().out
        assert "streaming (ingestor)" in out
        assert "lease-native" in out
        assert "tenant heavy" in out and "tenant light" in out
        assert "fairness" in out

    def test_batch_lease_results_require_shards(self):
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--lease-results"])

    def test_batch_bad_tenant_weights_rejected(self):
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--tenant-weights", "heavy"])

    def test_batch_tenant_outputs_written(self, capsys, tmp_path):
        # Lease-native results still materialize for file output.
        assert main(
            ["--size", "32", "batch", "--count", "4", "--batch-size", "2",
             "--shards", "1", "--lease-results", "-o", str(tmp_path)]
        ) == 0
        assert len(list(tmp_path.glob("*.ppm"))) == 4

    def test_batch_sharded(self, capsys):
        assert main(
            ["--size", "32", "batch", "--count", "3", "--batch-size", "2",
             "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "shards        : 2 process(es)" in out
        assert "pre-grouped" in out

    def test_batch_autoscaled(self, capsys):
        assert main(
            ["--size", "32", "batch", "--count", "3", "--batch-size", "2",
             "--autoscale", "--max-shards", "2", "--arena-slots", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "autoscale     : active" in out

    def test_batch_contradictory_autoscale_bounds_rejected(self):
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--autoscale", "--shards", "4", "--max-shards", "2"])

    def test_batch_autoscale_knobs_without_autoscale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--min-shards", "2"])
        with pytest.raises(SystemExit):
            main(["--size", "32", "batch", "--count", "2",
                  "--arena-slots", "2"])

    def test_batch_streaming_ingest(self, capsys):
        assert main(
            ["--size", "32", "batch", "--count", "4", "--batch-size", "2",
             "--max-delay-ms", "4", "--queue-limit", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "streaming (ingestor)" in out
        assert "queue peak" in out
        assert "latency p50" in out

    def test_batch_image_directory(self, capsys, tmp_path):
        from repro.image.pfm import write_pfm
        from repro.image.synthetic import SceneParams, make_scene

        for i in range(2):
            image = make_scene(
                "gradient", SceneParams(height=32, width=32, seed=i)
            )
            write_pfm(image, tmp_path / f"scene{i}.pfm")
        assert main(["batch", "--images", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "images        : 2" in out

    def test_batch_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["batch", "--images", str(tmp_path)])

    def test_batch_missing_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["batch", "--images", str(tmp_path / "no_such_dir")])

    def test_all_small(self, capsys):
        assert main(["--size", "64", "all"]) == 0
        out = capsys.readouterr().out
        for marker in ("TABLE II", "FIG 5", "FIG 6", "FIG 7", "FIG 8a"):
            assert marker in out
