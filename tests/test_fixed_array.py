"""Tests for repro.fixedpoint.array (vectorized fixed point)."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import (
    ApFixed,
    FixedArray,
    FixedFormat,
    Overflow,
    Quant,
    quantize_array,
    raw_to_float,
)

FMT = FixedFormat(16, 2, quant=Quant.RND, overflow=Overflow.SAT)
COEFF = FixedFormat(16, 0, signed=False, quant=Quant.RND, overflow=Overflow.SAT)


class TestQuantizeArray:
    def test_exact_values(self):
        vals = np.array([0.0, 0.5, -0.25, 1.0])
        raw = quantize_array(vals, FMT)
        np.testing.assert_array_equal(raw_to_float(raw, FMT), vals)

    def test_rounding(self):
        fmt = FixedFormat(8, 8, quant=Quant.RND, overflow=Overflow.SAT)
        raw = quantize_array(np.array([1.5, -1.5, 1.4]), fmt)
        np.testing.assert_array_equal(raw, [2, -1, 1])

    def test_saturation(self):
        raw = quantize_array(np.array([100.0, -100.0]), FMT)
        assert raw[0] == FMT.raw_max
        assert raw[1] == FMT.raw_min

    def test_wrap(self):
        fmt = FixedFormat(8, 8, overflow=Overflow.WRAP)
        raw = quantize_array(np.array([128.0, 256.0, -129.0]), fmt)
        np.testing.assert_array_equal(raw, [-128, 0, 127])

    def test_sat_zero(self):
        fmt = FixedFormat(8, 8, overflow=Overflow.SAT_ZERO)
        raw = quantize_array(np.array([200.0, 5.0]), fmt)
        np.testing.assert_array_equal(raw, [0, 5])

    def test_non_finite_rejected(self):
        with pytest.raises(FixedPointError):
            quantize_array(np.array([1.0, np.nan]), FMT)
        with pytest.raises(FixedPointError):
            quantize_array(np.array([np.inf]), FMT)

    @pytest.mark.parametrize("quant", list(Quant))
    def test_matches_scalar_for_all_modes(self, quant):
        fmt = FixedFormat(10, 3, quant=quant, overflow=Overflow.SAT)
        values = np.linspace(-4.3, 4.3, 97)
        raw = quantize_array(values, fmt)
        for v, r in zip(values, raw):
            assert int(r) == ApFixed.from_float(float(v), fmt).raw, (quant, v)


class TestFixedArrayBasics:
    def test_from_float_roundtrip(self):
        vals = np.array([[0.5, -0.25], [1.0, 0.0]])
        arr = FixedArray.from_float(vals, FMT)
        np.testing.assert_array_equal(arr.to_float(), vals)
        assert arr.shape == (2, 2)
        assert arr.size == 4

    def test_zeros(self):
        arr = FixedArray.zeros((3, 4), FMT)
        assert arr.shape == (3, 4)
        assert np.all(arr.raw == 0)

    def test_full(self):
        scalar = ApFixed.from_float(0.75, FMT)
        arr = FixedArray.full((2, 2), scalar)
        np.testing.assert_array_equal(arr.to_float(), 0.75)

    def test_float_raw_rejected(self):
        with pytest.raises(FixedPointError):
            FixedArray(np.array([0.5]), FMT)

    def test_out_of_range_raw_rejected(self):
        with pytest.raises(FixedPointError):
            FixedArray(np.array([2**20]), FMT)

    def test_getitem_returns_fixed_array(self):
        arr = FixedArray.from_float(np.arange(4) / 8.0, FMT)
        sub = arr[1:3]
        assert isinstance(sub, FixedArray)
        np.testing.assert_array_equal(sub.to_float(), [0.125, 0.25])

    def test_element_returns_scalar(self):
        arr = FixedArray.from_float(np.array([0.5, 0.25]), FMT)
        el = arr.element(1)
        assert isinstance(el, ApFixed)
        assert el.to_float() == 0.25

    def test_len_and_repr(self):
        arr = FixedArray.from_float(np.zeros(5), FMT)
        assert len(arr) == 5
        assert "FixedArray" in repr(arr)


class TestFixedArrayArithmetic:
    def test_add_matches_scalar(self):
        a = FixedArray.from_float(np.array([0.5, -0.25]), FMT)
        b = FixedArray.from_float(np.array([0.125, 0.75]), FMT)
        c = a + b
        sa = a.element(0) + b.element(0)
        assert c.element(0) == sa
        assert c.fmt == FMT.add_result(FMT)

    def test_sub(self):
        a = FixedArray.from_float(np.array([0.5]), FMT)
        b = FixedArray.from_float(np.array([0.75]), FMT)
        np.testing.assert_allclose((a - b).to_float(), [-0.25])

    def test_mul_matches_scalar(self):
        a = FixedArray.from_float(np.array([0.5, -0.25]), FMT)
        b = FixedArray.from_float(np.array([0.5, 0.5]), COEFF)
        c = a * b
        np.testing.assert_allclose(c.to_float(), [0.25, -0.125])
        assert c.fmt == FMT.mul_result(COEFF)

    def test_mul_scalar_coefficient(self):
        a = FixedArray.from_float(np.array([0.5, 1.0]), FMT)
        k = ApFixed.from_float(0.25, COEFF)
        np.testing.assert_allclose(a.mul_scalar(k).to_float(), [0.125, 0.25])

    def test_add_with_apfixed_broadcast(self):
        a = FixedArray.from_float(np.array([0.5, 0.25]), FMT)
        k = ApFixed.from_float(0.25, FMT)
        np.testing.assert_allclose((a + k).to_float(), [0.75, 0.5])

    def test_width_overflow_guard(self):
        wide = FixedFormat(40, 8)
        a = FixedArray.from_float(np.array([1.0]), wide)
        with pytest.raises(FixedPointError, match="cast"):
            a * a  # 80-bit product cannot be held exactly

    def test_type_error_on_plain_ndarray(self):
        a = FixedArray.from_float(np.array([0.5]), FMT)
        with pytest.raises(TypeError):
            a + np.array([0.5])


class TestCast:
    def test_cast_narrower_rounds(self):
        wide = FixedFormat(32, 8, quant=Quant.RND, overflow=Overflow.SAT)
        narrow = FixedFormat(8, 8, quant=Quant.RND, overflow=Overflow.SAT)
        arr = FixedArray.from_float(np.array([3.6, -3.6]), wide)
        np.testing.assert_array_equal(arr.cast(narrow).to_float(), [4.0, -4.0])

    def test_cast_wider_lossless(self):
        wide = FixedFormat(32, 8, quant=Quant.RND, overflow=Overflow.SAT)
        arr = FixedArray.from_float(np.array([0.5, -0.125]), FMT)
        np.testing.assert_array_equal(arr.cast(wide).to_float(), arr.to_float())

    def test_cast_matches_scalar_cast(self):
        wide = FixedFormat(30, 10, quant=Quant.TRN, overflow=Overflow.SAT)
        narrow = FixedFormat(12, 4, quant=Quant.TRN, overflow=Overflow.SAT)
        vals = np.linspace(-7.9, 7.9, 41)
        arr = FixedArray.from_float(vals, wide).cast(narrow)
        for i, v in enumerate(vals):
            scalar = ApFixed.from_float(float(v), wide).cast(narrow)
            assert arr.element(i) == scalar

    def test_cast_saturates(self):
        wide = FixedFormat(32, 16, quant=Quant.RND, overflow=Overflow.SAT)
        narrow = FixedFormat(8, 4, quant=Quant.RND, overflow=Overflow.SAT)
        arr = FixedArray.from_float(np.array([1000.0]), wide)
        assert arr.cast(narrow).to_float()[0] == narrow.max_value
