"""Tests for repro.image.metrics (MSE / PSNR / SSIM / dynamic range)."""

import math

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image import (
    HDRImage,
    dynamic_range,
    dynamic_range_stops,
    mse,
    psnr,
    ssim,
)


def noisy_pair(shape=(64, 64), sigma=0.01, seed=5):
    rng = np.random.default_rng(seed)
    ref = rng.uniform(0.2, 0.8, shape)
    noise = rng.normal(0, sigma, shape)
    return ref, np.clip(ref + noise, 0, 1)


class TestMse:
    def test_identical_images(self):
        ref, _ = noisy_pair()
        assert mse(ref, ref) == 0.0

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_symmetry(self):
        a, b = noisy_pair()
        assert mse(a, b) == pytest.approx(mse(b, a))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ImageError):
            mse(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_accepts_hdrimage(self):
        img = HDRImage(np.full((4, 4), 0.5, dtype=np.float32))
        assert mse(img, img) == 0.0


class TestPsnr:
    def test_identical_is_inf(self):
        ref, _ = noisy_pair()
        assert psnr(ref, ref) == math.inf

    def test_known_value(self):
        # MSE = 0.01 with data range 1 -> PSNR = 20 dB.
        a = np.zeros((8, 8))
        b = np.full((8, 8), 0.1)
        assert psnr(a, b, data_range=1.0) == pytest.approx(20.0)

    def test_less_noise_higher_psnr(self):
        ref, noisy_small = noisy_pair(sigma=0.001)
        _, noisy_big = noisy_pair(sigma=0.1)
        assert psnr(ref, noisy_small, 1.0) > psnr(ref, noisy_big, 1.0)

    def test_default_data_range_uses_reference_peak(self):
        a = np.full((4, 4), 2.0)
        b = np.full((4, 4), 1.8)
        explicit = psnr(a, b, data_range=2.0)
        assert psnr(a, b) == pytest.approx(explicit)

    def test_invalid_data_range(self):
        with pytest.raises(ImageError):
            psnr(np.ones((4, 4)), np.ones((4, 4)), data_range=-1.0)

    def test_rgb_supported(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 1, (16, 16, 3))
        b = np.clip(a + rng.normal(0, 0.01, a.shape), 0, 1)
        assert 30 < psnr(a, b, 1.0) < 60


class TestSsim:
    def test_identical_is_one(self):
        ref, _ = noisy_pair(shape=(32, 32))
        result = ssim(ref, ref, data_range=1.0)
        assert float(result) == pytest.approx(1.0)

    def test_bounded_above_by_one(self):
        ref, noisy = noisy_pair(shape=(32, 32), sigma=0.05)
        assert float(ssim(ref, noisy, 1.0)) < 1.0

    def test_symmetry(self):
        ref, noisy = noisy_pair(shape=(32, 32), sigma=0.05)
        assert float(ssim(ref, noisy, 1.0)) == pytest.approx(
            float(ssim(noisy, ref, 1.0)), abs=1e-12
        )

    def test_more_noise_lower_ssim(self):
        ref, small = noisy_pair(shape=(32, 32), sigma=0.01)
        _, big = noisy_pair(shape=(32, 32), sigma=0.2)
        assert float(ssim(ref, small, 1.0)) > float(ssim(ref, big, 1.0))

    def test_constant_shift_penalized_by_luminance_term(self):
        ref = np.full((32, 32), 0.3)
        shifted = np.full((32, 32), 0.6)
        result = ssim(ref, shifted, data_range=1.0)
        assert result.luminance_term < 1.0

    def test_structural_inversion_is_negative(self):
        rng = np.random.default_rng(3)
        ref = rng.uniform(0.0, 1.0, (32, 32))
        inverted = 1.0 - ref
        assert float(ssim(ref, inverted, 1.0)) < 0.0

    def test_map_shape_is_valid_window(self):
        ref, noisy = noisy_pair(shape=(40, 50))
        result = ssim(ref, noisy, 1.0)
        assert result.ssim_map.shape == (40 - 10, 50 - 10)

    def test_rgb_averaged(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, (32, 32, 3))
        result = ssim(a, a, 1.0)
        assert float(result) == pytest.approx(1.0)

    def test_too_small_image_rejected(self):
        with pytest.raises(ImageError, match="window"):
            ssim(np.ones((8, 8)), np.ones((8, 8)))

    def test_bad_window_parameters(self):
        ref, noisy = noisy_pair(shape=(32, 32))
        with pytest.raises(ImageError):
            ssim(ref, noisy, 1.0, window_size=10)  # even
        with pytest.raises(ImageError):
            ssim(ref, noisy, 1.0, sigma=-1.0)

    def test_paper_style_comparison_near_one(self):
        # Quantization-level noise (~2^-12) must give SSIM ~ 1.0 as the
        # paper reports for its FxP-vs-FlP comparison.
        ref, noisy = noisy_pair(shape=(64, 64), sigma=2.0**-12)
        assert float(ssim(ref, noisy, 1.0)) > 0.9999


class TestDynamicRange:
    def test_ratio(self):
        img = np.array([[0.01, 10.0]])
        assert dynamic_range(img) == pytest.approx(1000.0)

    def test_stops(self):
        img = np.array([[1.0, 1024.0]])
        assert dynamic_range_stops(img) == pytest.approx(10.0)

    def test_zero_floor_is_inf(self):
        img = np.array([[0.0, 1.0]])
        assert dynamic_range(img) == math.inf

    def test_black_image(self):
        img = np.zeros((2, 2))
        assert dynamic_range(img) == 1.0

    def test_percentile_floor_robust_to_outliers(self):
        img = np.full((100, 100), 1.0)
        img[0, 0] = 1e-9  # single dead pixel
        robust = dynamic_range(img, percentile_floor=1.0)
        naive = dynamic_range(img)
        assert robust < naive
