"""Plan-equivalence harness: planner-dispatched vs reference staged path.

For hypothesis-generated ``(shape, sigma/radius, batch, threads)``
workloads, the pipeline executed *through an ExecutionPlan*
(``BatchToneMapper(params, plan=...)``) must match the reference staged
stack execution under the fused tolerance contract:

* **bit-identical** wherever the staged blur resolves to the folded or
  tiled row convolution (the plan's engine is fused there, so this is
  the strongest possible check that planning changed *scheduling* and
  not *arithmetic*);
* within the blur module's **1e-9 absolute band** where the staged path
  resolves to the FFT but the plan keeps the fused engine on its folded
  window (taps in ``[fft_crossover_taps, fused_fft_min_taps)``);
* **bit-identical again** from ``fused_fft_min_taps`` upward, where the
  plan hands the workload back to the staged engine — planned and
  reference execution are then the very same code path.

Four regimes x generated cases >= 200 examples total (the ISSUE floor).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import planner
from repro.planner import plan_for
from repro.runtime import BatchToneMapper
from repro.tonemap.pipeline import ToneMapParams

#: Reference-profile crossovers (asserted against the active profile in
#: each test so a drifted default invalidates the regime split loudly).
FFT_CROSSOVER_TAPS = 25
FUSED_FFT_MIN_TAPS = 33

dims = st.integers(min_value=8, max_value=40)
batches = st.integers(min_value=1, max_value=3)
threads_st = st.integers(min_value=1, max_value=3)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _stack(batch, height, width, color, seed):
    shape = (batch, height, width, 3) if color else (batch, height, width)
    rng = np.random.default_rng(seed)
    stack = rng.uniform(0.0, 2.0, shape).astype(np.float32)
    stack.flat[0] = 0.0  # exercise the epsilon floor
    return stack


def _planned_vs_staged(height, width, batch, radius, threads, color, seed):
    """Run one workload both ways; return (planned, reference, plan)."""
    params = ToneMapParams(sigma=max(radius / 3.0, 0.5), radius=radius)
    plan = plan_for(
        height=height,
        width=width,
        batch=batch,
        sigma=params.sigma,
        radius=radius,
        color=color,
        threads=threads,
    )
    stack = _stack(batch, height, width, color, seed)
    reference = BatchToneMapper(params).run_stack(stack)
    mapper = BatchToneMapper(params, plan=plan)
    try:
        planned = mapper.run_stack(stack)
    finally:
        mapper.close()
    return planned, reference, plan


class TestFoldedRegime:
    """taps <= 23: staged blur is folded, plan is fused — bit-identical."""

    @settings(max_examples=120, deadline=None)
    @given(
        height=dims,
        width=dims,
        batch=batches,
        radius=st.integers(min_value=1, max_value=11),
        threads=threads_st,
        color=st.booleans(),
        seed=seeds,
    )
    def test_bit_identical(
        self, height, width, batch, radius, threads, color, seed
    ):
        planned, reference, plan = _planned_vs_staged(
            height, width, batch, radius, threads, color, seed
        )
        assert plan.profile.fft_crossover_taps == FFT_CROSSOVER_TAPS
        assert plan.engine == "fused"
        assert plan.blur_method == "folded"
        assert plan.fused_h_method == "folded"
        np.testing.assert_array_equal(planned, reference)


class TestTiledRegime:
    """Tiled staged blur (forced via a threshold override so small test
    planes take the big-plane path) — still bit-identical."""

    @settings(max_examples=30, deadline=None)
    @given(
        height=dims,
        width=dims,
        batch=batches,
        radius=st.integers(min_value=1, max_value=11),
        threads=threads_st,
        seed=seeds,
    )
    def test_bit_identical(self, height, width, batch, radius, threads, seed):
        # Both the planner and the reference staged dispatch resolve
        # against the same overridden profile — per call, no reload.
        with planner.override(tiled_min_plane_bytes=8 * 8 * 8):
            planned, reference, plan = _planned_vs_staged(
                height, width, batch, radius, threads, False, seed
            )
        assert plan.blur_method == "tiled"
        assert plan.engine == "fused"
        assert plan.fused_h_method == "folded"
        np.testing.assert_array_equal(planned, reference)


class TestFftBandRegime:
    """taps in [25, 31]: staged reference takes the full-plane FFT, the
    plan keeps the fused folded window — 1e-9 absolute band."""

    @settings(max_examples=60, deadline=None)
    @given(
        height=dims,
        width=dims,
        batch=batches,
        radius=st.integers(min_value=12, max_value=15),
        threads=threads_st,
        seed=seeds,
    )
    def test_within_blur_tolerance(
        self, height, width, batch, radius, threads, seed
    ):
        planned, reference, plan = _planned_vs_staged(
            height, width, batch, radius, threads, False, seed
        )
        assert plan.profile.fused_fft_min_taps == FUSED_FFT_MIN_TAPS
        assert plan.engine == "fused"
        assert plan.blur_method == "fft"
        assert plan.fused_h_method == "folded"
        np.testing.assert_allclose(planned, reference, rtol=0.0, atol=1e-9)


class TestStagedRegime:
    """taps >= 33: the plan itself says staged — planned and reference
    execution are the same code path, so equality is exact."""

    @settings(max_examples=30, deadline=None)
    @given(
        height=dims,
        width=dims,
        batch=batches,
        radius=st.integers(min_value=16, max_value=24),
        threads=threads_st,
        seed=seeds,
    )
    def test_bit_identical(self, height, width, batch, radius, threads, seed):
        planned, reference, plan = _planned_vs_staged(
            height, width, batch, radius, threads, False, seed
        )
        assert plan.engine == "staged"
        assert plan.blur_method == "fft"
        np.testing.assert_array_equal(planned, reference)


def test_example_budget_meets_issue_floor():
    """The harness generates >= 200 cases across the regimes."""
    total = 120 + 30 + 60 + 30
    assert total >= 200
