"""Tests for repro.hls.scheduler (the II/latency model)."""

import pytest

from repro.errors import HlsError
from repro.hls import (
    AccessKind,
    AccessPattern,
    ArrayDecl,
    ArrayPartitionPragma,
    CarriedDependence,
    Kernel,
    KernelArg,
    Loop,
    MemAccess,
    OpKind,
    PartitionKind,
    PipelinePragma,
    Statement,
    Storage,
    apply_pragmas,
    schedule_kernel,
)
from repro.hls.scheduler import (
    FUNCTION_OVERHEAD,
    PIPELINE_OVERHEAD,
    ExternalAccessModel,
)


def mac_kernel(trip=100, fixed=False, carried=True, storage=Storage.BRAM,
               pattern=AccessPattern.SEQUENTIAL, reads_per_iter=1):
    """A single-loop MAC kernel parameterized for the tests."""
    add = OpKind.ADD if fixed else OpKind.FADD
    mul = OpKind.MUL if fixed else OpKind.FMUL
    stmt = Statement(
        "mac",
        chain=(OpKind.LOAD, mul, add),
        ops={OpKind.LOAD: reads_per_iter, mul: 1, add: 1},
        accesses=(
            MemAccess("data", AccessKind.READ, pattern, count=reads_per_iter),
        ),
        carried=CarriedDependence(1, (add,)) if carried else None,
    )
    return Kernel(
        name="mac",
        args=[KernelArg("data", AccessKind.READ, trip, 32)],
        arrays=[ArrayDecl("data", max(trip, reads_per_iter), 32, storage)],
        loops=[Loop("loop", trip_count=trip, statements=[stmt])],
    )


class TestPipelinedScheduling:
    def test_float_accumulator_ii_is_fadd_latency(self):
        # The core FxP argument: a float accumulation loop is recurrence-
        # bound at II = fadd latency (4); fixed point reaches II = 1.
        k = apply_pragmas(mac_kernel(fixed=False), [PipelinePragma("loop")])
        sched = schedule_kernel(k)
        assert sched.find("loop").ii == 4
        assert sched.find("loop").ii_breakdown.limited_by == "recurrence"

    def test_fixed_accumulator_reaches_ii_1(self):
        k = apply_pragmas(mac_kernel(fixed=True), [PipelinePragma("loop")])
        assert schedule_kernel(k).find("loop").ii == 1

    def test_port_limited_ii(self):
        k = apply_pragmas(
            mac_kernel(fixed=True, carried=False, reads_per_iter=8),
            [PipelinePragma("loop")],
        )
        sched = schedule_kernel(k).find("loop")
        assert sched.ii == 4  # 8 reads / 2 ports
        assert "data" in sched.ii_breakdown.limited_by

    def test_partitioning_lowers_port_ii(self):
        k = apply_pragmas(
            mac_kernel(fixed=True, carried=False, reads_per_iter=8),
            [
                PipelinePragma("loop"),
                ArrayPartitionPragma("data", PartitionKind.CYCLIC, 4),
            ],
        )
        assert schedule_kernel(k).find("loop").ii == 1

    def test_pipelined_latency_formula(self):
        k = apply_pragmas(mac_kernel(trip=100, fixed=True), [PipelinePragma("loop")])
        sched = schedule_kernel(k).find("loop")
        expected = sched.depth + sched.ii * (100 - 1) + PIPELINE_OVERHEAD
        assert sched.latency_cycles == expected

    def test_register_array_unconstrained(self):
        k = mac_kernel(fixed=True, carried=False, reads_per_iter=64,
                       storage=Storage.REGISTERS)
        k = apply_pragmas(k, [PipelinePragma("loop")])
        assert schedule_kernel(k).find("loop").ii == 1

    def test_random_external_access_blows_up_ii(self):
        k = mac_kernel(carried=False, storage=Storage.EXTERNAL,
                       pattern=AccessPattern.RANDOM)
        k = apply_pragmas(k, [PipelinePragma("loop")])
        ext = ExternalAccessModel(read_latency=150)
        assert schedule_kernel(k, external=ext).find("loop").ii == 150

    def test_sequential_external_bursts(self):
        k = mac_kernel(carried=False, storage=Storage.EXTERNAL,
                       pattern=AccessPattern.SEQUENTIAL)
        k = apply_pragmas(k, [PipelinePragma("loop")])
        assert schedule_kernel(k).find("loop").ii == 1


class TestUnrollingAndNesting:
    def test_unroll_divides_trip(self):
        k = mac_kernel(trip=100, fixed=True, carried=False)
        k.find_loop("loop").unroll_factor = 4
        sched = schedule_kernel(k).find("loop")
        assert sched.trip_count == 25

    def test_pipelining_outer_unrolls_inner(self):
        # Inner 8-iteration loop with 1 read each -> flattened 8 reads
        # against 2 BRAM ports -> II=4 on the outer loop.
        inner_stmt = Statement(
            "body",
            chain=(OpKind.LOAD, OpKind.ADD),
            accesses=(MemAccess("buf", AccessKind.READ),),
        )
        k = Kernel(
            name="nest",
            args=[],
            arrays=[ArrayDecl("buf", 64, 32)],
            loops=[
                Loop(
                    "outer",
                    trip_count=50,
                    subloops=[Loop("inner", 8, statements=[inner_stmt])],
                )
            ],
        )
        k = apply_pragmas(k, [PipelinePragma("outer")])
        assert schedule_kernel(k).find("outer").ii == 4

    def test_inner_recurrence_dropped_when_unrolled(self):
        # A MAC accumulator carried by the inner loop becomes a spatial
        # reduction tree once the pipelined outer loop unrolls it.
        inner_stmt = Statement(
            "mac",
            chain=(OpKind.FADD,),
            carried=CarriedDependence(1, (OpKind.FADD,)),
        )
        k = Kernel(
            name="nest",
            args=[],
            arrays=[],
            loops=[
                Loop(
                    "outer",
                    trip_count=10,
                    subloops=[Loop("inner", 4, statements=[inner_stmt])],
                )
            ],
        )
        k = apply_pragmas(k, [PipelinePragma("outer")])
        assert schedule_kernel(k).find("outer").ii == 1

    def test_non_pipelined_nest_latency(self):
        k = mac_kernel(trip=10, fixed=True)
        sched = schedule_kernel(k)
        loop = sched.find("loop")
        assert not loop.pipelined
        # iteration = depth + 1 overhead; total = trip*iteration + 2.
        assert loop.latency_cycles == 10 * (loop.depth + 1) + 2

    def test_total_includes_function_overhead(self):
        k = mac_kernel(trip=10, fixed=True)
        sched = schedule_kernel(k)
        assert sched.total_cycles == (
            sum(l.latency_cycles for l in sched.loops) + FUNCTION_OVERHEAD
        )


class TestNonPipelinedExternalStalls:
    def test_random_reads_pay_full_latency(self):
        k = mac_kernel(trip=10, carried=False, storage=Storage.EXTERNAL,
                       pattern=AccessPattern.RANDOM)
        ext = ExternalAccessModel(read_latency=100)
        sched = schedule_kernel(k, external=ext).find("loop")
        assert sched.depth >= 100

    def test_sequential_reads_also_stall_without_pipeline(self):
        # Without pipelining there is no burst inference (the Marked-HW
        # mechanism): sequential pattern still pays per-access latency.
        k = mac_kernel(trip=10, carried=False, storage=Storage.EXTERNAL,
                       pattern=AccessPattern.SEQUENTIAL)
        ext = ExternalAccessModel(read_latency=100)
        sched = schedule_kernel(k, external=ext).find("loop")
        assert sched.depth >= 100


class TestScheduleResult:
    def test_find_unknown_raises(self):
        sched = schedule_kernel(mac_kernel())
        with pytest.raises(HlsError):
            sched.find("ghost")

    def test_loop_table_flattens(self):
        inner = Loop("inner", 4)
        k = Kernel(
            name="nest", args=[], arrays=[],
            loops=[Loop("outer", 10, subloops=[inner])],
        )
        table = schedule_kernel(k).loop_table()
        assert [t.name for t in table] == ["outer", "inner"]

    def test_external_model_validation(self):
        with pytest.raises(HlsError):
            ExternalAccessModel(read_latency=0)
        with pytest.raises(HlsError):
            ExternalAccessModel(burst_issue_interval=0)
