"""Tests for repro.runtime.ingest: coalescing, backpressure, async APIs.

Timing-sensitive cases gate the service with an event-controlled blur so
the queue state is deterministic rather than racy.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.errors import ServiceOverloadedError, ToneMapError
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    BackpressurePolicy,
    BatchToneMapper,
    ToneMapIngestor,
    ToneMapService,
)
from repro.tonemap.gaussian import separable_blur
from repro.tonemap.pipeline import ToneMapParams, ToneMapper

PARAMS = ToneMapParams(sigma=2.0, radius=6)


def scenes(count, size=24, base=100):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=base + i),
        )
        for i in range(count)
    ]


def gated_params():
    """Params whose blur blocks until the returned event is set."""
    gate = threading.Event()

    def slow_blur(plane, kernel):
        gate.wait(timeout=30)
        return separable_blur(plane, kernel)

    return ToneMapParams(sigma=2.0, radius=6, blur_fn=slow_blur), gate


class TestCoalescing:
    def test_outputs_match_batch_mapper(self):
        images = scenes(5)
        with ToneMapService(PARAMS, batch_size=2) as service:
            with ToneMapIngestor(service, max_delay_ms=20) as ingestor:
                outputs = ingestor.map_many(images)
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_partial_batch_flushes_at_deadline(self):
        # One image with batch_size 4 can only complete via the deadline.
        with ToneMapService(PARAMS, batch_size=4) as service:
            with ToneMapIngestor(service, max_delay_ms=5) as ingestor:
                future = ingestor.submit(scenes(1)[0])
                output = future.result(timeout=30)
        assert output.pixels.shape == (24, 24, 3)

    def test_zero_delay_degrades_to_submit_one_run_one(self):
        images = scenes(3)
        with ToneMapService(PARAMS, batch_size=8) as service:
            with ToneMapIngestor(service, max_delay_ms=0) as ingestor:
                outputs = ingestor.map_many(images)
        assert len(outputs) == 3
        assert service.stats.batches >= 1

    def test_mixed_shape_storm(self):
        # Interleaved shapes must coalesce per shape and all complete.
        images = []
        for i in range(4):
            images.extend(scenes(1, size=16, base=i))
            images.extend(scenes(1, size=24, base=40 + i))
            images.extend(scenes(1, size=32, base=80 + i))
        with ToneMapService(PARAMS, batch_size=3) as service:
            with ToneMapIngestor(
                service, max_delay_ms=2, queue_limit=64
            ) as ingestor:
                outputs = ingestor.map_many(images)
                stats = ingestor.stats
        single = ToneMapper(PARAMS)
        assert stats.images == len(images)
        for image, output in zip(images, outputs):
            assert output.pixels.shape == image.pixels.shape
            np.testing.assert_allclose(
                output.pixels, single.run(image).output.pixels, atol=1e-5
            )

    def test_full_bucket_flushes_before_deadline(self):
        images = scenes(4)
        with ToneMapService(PARAMS, batch_size=4) as service:
            # Deadline far away: only a full bucket can flush this fast.
            with ToneMapIngestor(service, max_delay_ms=60_000) as ingestor:
                futures = [ingestor.submit(image) for image in images]
                for future in futures:
                    future.result(timeout=30)
        assert service.stats.batches == 1


class TestBackpressure:
    def test_reject_policy_raises_and_counts(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=1, max_workers=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=0, queue_limit=2, policy="reject"
            ) as ingestor:
                futures = [ingestor.submit(img) for img in scenes(2)]
                with pytest.raises(ServiceOverloadedError):
                    ingestor.submit(scenes(1)[0])
                assert ingestor.stats.rejected == 1
                gate.set()
                for future in futures:
                    assert future.result(timeout=30) is not None

    def test_shed_oldest_policy_drops_oldest_waiting(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=8, max_workers=1) as service:
            # Long deadline: submissions park in the bucket, undispatched.
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=2,
                policy=BackpressurePolicy.SHED_OLDEST,
            )
            first = ingestor.submit(scenes(1, base=0)[0])
            second = ingestor.submit(scenes(1, base=1)[0])
            third = ingestor.submit(scenes(1, base=2)[0])  # sheds `first`
            assert ingestor.stats.shed == 1
            with pytest.raises(ServiceOverloadedError):
                first.result(timeout=5)
            gate.set()
            ingestor.close()
            assert second.result(timeout=30) is not None
            assert third.result(timeout=30) is not None

    def test_block_policy_waits_for_capacity(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=1, max_workers=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=0, queue_limit=1, policy="block"
            ) as ingestor:
                first = ingestor.submit(scenes(1)[0])
                unblocked_at = []

                def late_submit():
                    future = ingestor.submit(scenes(1, base=9)[0])
                    unblocked_at.append(time.perf_counter())
                    future.result(timeout=30)

                thread = threading.Thread(target=late_submit)
                thread.start()
                time.sleep(0.1)
                # Still blocked: the queue slot is held by `first`.
                assert not unblocked_at
                released_at = time.perf_counter()
                gate.set()
                thread.join(timeout=30)
                assert unblocked_at and unblocked_at[0] >= released_at
                assert first.result(timeout=30) is not None

    def test_queue_peak_tracks_high_water_mark(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=8, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service, max_delay_ms=60_000, queue_limit=8
            )
            futures = [ingestor.submit(img) for img in scenes(5)]
            assert ingestor.stats.queue_depth == 5
            assert ingestor.stats.queue_peak == 5
            gate.set()
            ingestor.close()
            for future in futures:
                future.result(timeout=30)
            assert ingestor.stats.queue_depth == 0
            assert ingestor.stats.queue_peak == 5


class TestLifecycle:
    def test_close_resolves_in_flight_futures(self):
        params, gate = gated_params()
        service = ToneMapService(params, batch_size=2, max_workers=2)
        ingestor = ToneMapIngestor(service, max_delay_ms=60_000)
        futures = [ingestor.submit(img) for img in scenes(5)]
        closer = threading.Thread(target=ingestor.close)
        closer.start()
        gate.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        for future in futures:
            assert future.result(timeout=1) is not None
        # close() flushed everything: nothing left in flight.
        assert ingestor.stats.queue_depth == 0
        service.close()

    def test_submit_after_close_rejected(self):
        with ToneMapService(PARAMS) as service:
            ingestor = ToneMapIngestor(service)
            ingestor.close()
            with pytest.raises(ToneMapError):
                ingestor.submit(scenes(1)[0])

    def test_close_is_idempotent(self):
        with ToneMapService(PARAMS) as service:
            ingestor = ToneMapIngestor(service)
            ingestor.close()
            ingestor.close()

    def test_service_stays_open_after_ingestor_close(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            with ToneMapIngestor(service) as ingestor:
                ingestor.map_many(scenes(2))
            # The ingestor borrowed the service; it must still work.
            assert len(service.map_many(scenes(2))) == 2

    def test_cancelled_future_does_not_starve_batchmates(self):
        # Cancelling one pending future must not prevent the rest of its
        # coalesced batch from resolving (set_result on a cancelled future
        # raises InvalidStateError, which _complete must tolerate).
        params, gate = gated_params()
        with ToneMapService(params, batch_size=2, max_workers=1) as service:
            ingestor = ToneMapIngestor(service, max_delay_ms=60_000)
            victim = ingestor.submit(scenes(1, base=0)[0])
            survivor = ingestor.submit(scenes(1, base=1)[0])
            assert victim.cancel()
            gate.set()
            ingestor.close()
            assert survivor.result(timeout=30) is not None
            assert victim.cancelled()

    def test_futures_resolved_when_close_returns(self):
        # close()'s contract: nothing in flight implies every future
        # handed out earlier has already resolved.
        images = scenes(6)
        with ToneMapService(PARAMS, batch_size=2) as service:
            ingestor = ToneMapIngestor(service, max_delay_ms=1)
            futures = [ingestor.submit(image) for image in images]
            ingestor.close()
            assert all(future.done() for future in futures)

    def test_errors_propagate_to_futures(self):
        def broken_blur(plane, kernel):
            raise ValueError("boom")

        params = ToneMapParams(sigma=2.0, radius=6, blur_fn=broken_blur)
        with ToneMapService(params, batch_size=2) as service:
            with ToneMapIngestor(service, max_delay_ms=0) as ingestor:
                future = ingestor.submit(scenes(1)[0])
                with pytest.raises(ValueError):
                    future.result(timeout=30)


class TestValidation:
    def test_non_image_rejected(self):
        with ToneMapService(PARAMS) as service:
            with ToneMapIngestor(service) as ingestor:
                with pytest.raises(ToneMapError):
                    ingestor.submit(np.zeros((4, 4)))

    def test_bad_parameters_rejected(self):
        with ToneMapService(PARAMS) as service:
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, max_delay_ms=-1)
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, queue_limit=0)
            with pytest.raises(ValueError):
                ToneMapIngestor(service, policy="drop-newest")


class TestAsyncAPI:
    def test_submit_async_returns_output(self):
        images = scenes(4)

        async def main():
            with ToneMapService(PARAMS, batch_size=2) as service:
                with ToneMapIngestor(service, max_delay_ms=5) as ingestor:
                    return await asyncio.gather(
                        *[ingestor.submit_async(img) for img in images]
                    )

        outputs = asyncio.run(main())
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_submit_async_propagates_overload(self):
        params, gate = gated_params()

        async def main():
            with ToneMapService(params, batch_size=1, max_workers=1) as service:
                ingestor = ToneMapIngestor(
                    service, max_delay_ms=0, queue_limit=1, policy="reject"
                )
                first = asyncio.ensure_future(
                    ingestor.submit_async(scenes(1)[0])
                )
                # Let the first submission win the only queue slot.
                await asyncio.sleep(0.2)
                with pytest.raises(ServiceOverloadedError):
                    await ingestor.submit_async(scenes(1, base=5)[0])
                gate.set()
                await first
                ingestor.close()

        asyncio.run(main())


class TestZeroCopyIngest:
    """The zero-copy admission path: frames written into arena slots."""

    def test_auto_enabled_only_for_sharded_services(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            with ToneMapIngestor(service) as ingestor:
                assert ingestor.zero_copy is False
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(service) as ingestor:
                assert ingestor.zero_copy is True

    def test_explicit_zero_copy_requires_shards(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, zero_copy=True)

    def test_outputs_bit_identical_to_batch_mapper(self):
        images = scenes(5)
        with ToneMapService(PARAMS, batch_size=2, shards=2) as service:
            with ToneMapIngestor(service, max_delay_ms=20) as ingestor:
                outputs = ingestor.map_many(images)
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_mixed_shape_storm_zero_copy(self):
        # Interleaved shapes: every bucket gets its own arena stack, all
        # coalesce correctly, nothing is left leased afterwards.
        images = []
        for i in range(4):
            images.extend(scenes(1, size=16, base=i))
            images.extend(scenes(1, size=24, base=40 + i))
            images.extend(scenes(1, size=32, base=80 + i))
        with ToneMapService(PARAMS, batch_size=3, shards=2) as service:
            with ToneMapIngestor(service, max_delay_ms=2) as ingestor:
                outputs = ingestor.map_many(images)
            arena = service.pool.arena
            assert arena.stats.leases_active == 0
        single = ToneMapper(PARAMS)
        for image, output in zip(images, outputs):
            assert output.pixels.shape == image.pixels.shape
            np.testing.assert_allclose(
                output.pixels, single.run(image).output.pixels, atol=1e-5
            )

    def test_no_staging_copies_on_the_ingest_path(self):
        images = scenes(6, size=16)
        with ToneMapService(PARAMS, batch_size=3, shards=1) as service:
            with ToneMapIngestor(service, max_delay_ms=5) as ingestor:
                ingestor.map_many(images)
            stats = service.pool.data_plane_stats
        # Frames entered shared memory at submit() time; the only
        # parent-side copy is the per-batch output materialize (the
        # futures safety fallback).
        assert stats.arena.bytes_copied_in == 0
        assert stats.arena.bytes_materialized == stats.bytes_served

    def test_shed_oldest_compacts_arena_slots(self):
        # With a huge deadline and batch_size 4, three submissions park in
        # one zero-copy bucket; queue_limit 3 makes the fourth shed the
        # oldest.  The survivors' frames must come back intact (the shed
        # compaction moves the top slot's frame into the hole).
        images = scenes(4, size=16)
        with ToneMapService(PARAMS, batch_size=4, shards=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=3,
                policy=BackpressurePolicy.SHED_OLDEST,
            )
            futures = [ingestor.submit(image) for image in images]
            assert ingestor.stats.shed == 1
            ingestor.close()
            with pytest.raises(ServiceOverloadedError):
                futures[0].result(timeout=5)
            expected = BatchToneMapper(PARAMS).map(images)
            for future, want in zip(futures[1:], expected[1:]):
                got = future.result(timeout=30)
                np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_shed_to_empty_bucket_releases_lease(self):
        # Shedding the only occupant of a bucket must release its arena
        # stack, not strand it.
        images = scenes(2, size=16)
        with ToneMapService(PARAMS, batch_size=4, shards=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=1,
                policy=BackpressurePolicy.SHED_OLDEST,
            )
            first = ingestor.submit(images[0])
            second = ingestor.submit(images[1])  # sheds first (sole occupant)
            assert ingestor.stats.shed == 1
            ingestor.close()
            with pytest.raises(ServiceOverloadedError):
                first.result(timeout=5)
            assert second.result(timeout=30) is not None
            assert service.pool.arena.stats.leases_active == 0

    def test_full_bucket_rotates_immediately(self):
        # A bucket sealing at batch_size must dispatch without waiting for
        # the deadline, and a following submission starts a fresh stack.
        images = scenes(5, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(service, max_delay_ms=60_000) as ingestor:
                futures = [ingestor.submit(image) for image in images[:4]]
                for future in futures:
                    assert future.result(timeout=30) is not None
                # Partial fifth image flushes at close.
                last = ingestor.submit(images[4])
            assert last.result(timeout=30) is not None
        assert service.stats.batches == 3

    def test_opt_out_keeps_copy_path(self):
        images = scenes(3)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=5, zero_copy=False
            ) as ingestor:
                outputs = ingestor.map_many(images)
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)


class TestServiceAutoscaleStats:
    def test_stats_surface_active_shards(self):
        with ToneMapService(PARAMS, batch_size=2, shards=2) as service:
            assert service.stats.shards_active == 2
            assert service.stats.scale_ups == 0

    def test_autoscaled_service_grows_under_sustained_load(self):
        from repro.runtime import AutoscalePolicy

        policy = AutoscalePolicy(
            min_shards=1, max_shards=2, grow_patience=1, shrink_patience=50
        )
        with ToneMapService(
            PARAMS,
            batch_size=1,
            shards=1,
            autoscale=True,
            autoscale_policy=policy,
        ) as service:
            # Pile up admitted batches so queue depth exceeds the active
            # width when each batch finishes.
            futures = [
                service.submit_batch([img]) for img in scenes(6, size=16)
            ]
            for future in futures:
                future.result(timeout=30)
            stats = service.stats
            assert stats.shards_active == 2
            assert stats.scale_ups >= 1

    def test_in_process_service_reports_zero_shards(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            service.map_many(scenes(2))
            assert service.stats.shards_active == 0
