"""Property-based tests (hypothesis) for the fixed-point substrate.

Invariants: quantization error bounds, scalar/vector agreement, widening
exactness, cast monotonicity, overflow containment — and, for the
runtime's hot path, random-format ``FixedArray.cast`` round trips within
the mode's proven bound plus bit-identity of the batched fixed-point
blur against the per-plane reference over random stacks and kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import (
    ApFixed,
    FixedArray,
    FixedFormat,
    Overflow,
    Quant,
    quantize_array,
    raw_to_float,
)
from repro.tonemap.fixed_blur import (
    FixedBlurConfig,
    fixed_point_blur_batch,
    fixed_point_blur_plane,
)
from repro.tonemap.gaussian import GaussianKernel

formats = st.builds(
    FixedFormat,
    word_length=st.integers(min_value=4, max_value=24),
    int_length=st.integers(min_value=0, max_value=8),
    signed=st.booleans(),
    quant=st.sampled_from(list(Quant)),
    overflow=st.sampled_from([Overflow.SAT, Overflow.WRAP, Overflow.SAT_SYM]),
)

in_range_values = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestQuantizationProperties:
    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_scalar_vector_agree(self, fmt, value):
        scalar = ApFixed.from_float(value, fmt).raw
        vector = int(quantize_array(np.array([value]), fmt)[0])
        assert scalar == vector

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_result_always_in_range(self, fmt, value):
        x = ApFixed.from_float(value, fmt)
        assert fmt.raw_min <= x.raw <= fmt.raw_max

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_error_bounded_when_representable(self, fmt, value):
        # Inside the representable range the quantization error is at
        # most one LSB (truncation) / half an LSB (rounding).
        if not (fmt.min_value <= value <= fmt.max_value):
            return
        x = ApFixed.from_float(value, fmt)
        bound = fmt.resolution if fmt.quant in (Quant.TRN, Quant.TRN_ZERO) \
            else fmt.resolution / 2
        assert abs(x.to_float() - value) <= bound + 1e-12

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=200, deadline=None)
    def test_quantization_idempotent(self, fmt, value):
        once = ApFixed.from_float(value, fmt)
        twice = ApFixed.from_float(once.to_float(), fmt)
        assert once.raw == twice.raw

    @given(
        fmt=formats,
        a=st.floats(min_value=-50, max_value=50, allow_nan=False),
        b=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_trn_monotone(self, fmt, a, b):
        # Truncation (and every rounding mode) is monotone.
        fmt = fmt.with_modes(quant=Quant.TRN, overflow=Overflow.SAT)
        xa = ApFixed.from_float(a, fmt)
        xb = ApFixed.from_float(b, fmt)
        if a <= b:
            assert xa.to_float() <= xb.to_float()


class TestArithmeticProperties:
    small_fmt = FixedFormat(16, 6, quant=Quant.RND, overflow=Overflow.SAT)

    @given(
        a=st.floats(min_value=-15, max_value=15, allow_nan=False),
        b=st.floats(min_value=-15, max_value=15, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_exact(self, a, b):
        xa = ApFixed.from_float(a, self.small_fmt)
        xb = ApFixed.from_float(b, self.small_fmt)
        assert (xa + xb).to_float() == pytest.approx(
            xa.to_float() + xb.to_float(), abs=1e-12
        )

    @given(
        a=st.floats(min_value=-15, max_value=15, allow_nan=False),
        b=st.floats(min_value=-15, max_value=15, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_mul_exact(self, a, b):
        xa = ApFixed.from_float(a, self.small_fmt)
        xb = ApFixed.from_float(b, self.small_fmt)
        assert (xa * xb).to_float() == pytest.approx(
            xa.to_float() * xb.to_float(), abs=1e-12
        )

    @given(
        a=st.floats(min_value=-15, max_value=15, allow_nan=False),
        b=st.floats(min_value=-15, max_value=15, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_commutative(self, a, b):
        xa = ApFixed.from_float(a, self.small_fmt)
        xb = ApFixed.from_float(b, self.small_fmt)
        assert (xa + xb) == (xb + xa)

    @given(a=st.floats(min_value=-15, max_value=15, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_neg_involutive(self, a):
        x = ApFixed.from_float(a, self.small_fmt)
        assert (-(-x)) == x

    @given(a=st.floats(min_value=-15, max_value=15, allow_nan=False),
           bits=st.integers(min_value=0, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_shift_roundtrip(self, a, bits):
        x = ApFixed.from_float(a, self.small_fmt)
        assert ((x >> bits) << bits) == x


#: A wide, high-resolution source format for cast experiments: any
#: narrow target drawn from `formats` is strictly coarser, so the cast
#: is a true narrowing re-quantization.
WIDE = FixedFormat(48, 10, quant=Quant.RND, overflow=Overflow.SAT)


class TestCastProperties:
    """Random-format ``FixedArray.cast`` round trips, within proven bounds.

    The bound being "proven" means: truncation moves a value at most one
    LSB toward the mode's direction, rounding at most half an LSB — the
    exact re-quantization error the narrowing hardware cast exhibits
    (docs/fixed_point.md derives both).
    """

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_narrowing_error_within_mode_bound(self, fmt, value):
        wide = FixedArray.from_float(np.array([value]), WIDE)
        exact = wide.to_float()[0]
        if not (fmt.min_value <= exact <= fmt.max_value):
            return  # overflow handling owns out-of-range inputs
        cast = wide.cast(fmt).to_float()[0]
        bound = (
            fmt.resolution
            if fmt.quant in (Quant.TRN, Quant.TRN_ZERO)
            else fmt.resolution / 2
        )
        assert abs(cast - exact) <= bound + 1e-12

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_saturating_cast_contained(self, fmt, value):
        fmt = fmt.with_modes(overflow=Overflow.SAT)
        cast = FixedArray.from_float(np.array([value]), WIDE).cast(fmt)
        assert fmt.raw_min <= int(cast.raw[0]) <= fmt.raw_max

    @given(fmt=formats, values=st.lists(in_range_values, min_size=1,
                                        max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_cast_idempotent(self, fmt, values):
        wide = FixedArray.from_float(np.asarray(values), WIDE)
        once = wide.cast(fmt)
        twice = once.cast(fmt)
        np.testing.assert_array_equal(once.raw, twice.raw)

    @given(
        fmt=formats,
        extra_int=st.integers(min_value=0, max_value=6),
        extra_frac=st.integers(min_value=0, max_value=8),
        values=st.lists(in_range_values, min_size=1, max_size=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_widening_roundtrip_exact(self, fmt, extra_int, extra_frac,
                                      values):
        # A format with more integer *and* more fraction bits represents
        # every narrow value exactly: narrow -> wide -> narrow must be
        # the identity on raws, and the wide view must equal the narrow
        # reals bit for bit.  (For an unsigned narrow the signed wide
        # needs one extra integer bit — the ap_fixed sign bit lives in
        # the integer field.)
        sign_pad = 0 if fmt.signed else 1
        wide = FixedFormat(
            fmt.word_length + extra_int + extra_frac + sign_pad,
            fmt.int_length + extra_int + sign_pad,
            signed=True,
            quant=fmt.quant,
            overflow=Overflow.SAT,
        )
        narrow = FixedArray.from_float(np.asarray(values), fmt)
        widened = narrow.cast(wide)
        np.testing.assert_array_equal(
            widened.to_float(), narrow.to_float()
        )
        back = widened.cast(fmt)
        np.testing.assert_array_equal(back.raw, narrow.raw)

    @given(fmt=formats, values=st.lists(in_range_values, min_size=1,
                                        max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_array_cast_matches_scalar_for_random_formats(self, fmt, values):
        arr = FixedArray.from_float(np.asarray(values), WIDE).cast(fmt)
        for i, value in enumerate(values):
            scalar = ApFixed.from_float(value, WIDE).cast(fmt)
            assert arr.element(i) == scalar


class TestArrayProperties:
    @given(
        fmt=formats,
        values=st.lists(in_range_values, min_size=1, max_size=32),
    )
    @settings(max_examples=150, deadline=None)
    def test_array_roundtrip_idempotent(self, fmt, values):
        arr = np.asarray(values)
        raw1 = quantize_array(arr, fmt)
        raw2 = quantize_array(raw_to_float(raw1, fmt), fmt)
        np.testing.assert_array_equal(raw1, raw2)

    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_array_cast_matches_scalar(self, values):
        wide = FixedFormat(24, 8, quant=Quant.RND, overflow=Overflow.SAT)
        narrow = FixedFormat(10, 4, quant=Quant.TRN, overflow=Overflow.SAT)
        arr = FixedArray.from_float(np.asarray(values), wide).cast(narrow)
        for i, v in enumerate(values):
            scalar = ApFixed.from_float(v, wide).cast(narrow)
            assert arr.element(i) == scalar


#: Blur configs the batched-vs-per-plane identity is proven over: the
#: paper's default 16-bit formats plus a truncating and a
#: non-renormalized coefficient variant (different rounding paths).
BLUR_CONFIGS = [
    FixedBlurConfig(),
    FixedBlurConfig(
        data_fmt=FixedFormat(
            16, 4, signed=True, quant=Quant.TRN, overflow=Overflow.SAT
        )
    ),
    FixedBlurConfig(
        coeff_fmt=FixedFormat(
            12, 0, signed=False, quant=Quant.RND, overflow=Overflow.SAT
        ),
        renormalize_coefficients=False,
    ),
]


class TestFixedBlurBatchProperties:
    """`fixed_point_blur_batch` is bit-identical to per-plane, always.

    The batched path folds mirrored taps across whole ``(N, H, W)``
    stacks; the contract (docs/architecture.md, "Fixed point is
    bit-exact everywhere") is that stacking changes *throughput*, never
    a single bit — here fuzzed over random stack shapes, pixel data,
    kernel widths, and blur configs rather than a handful of fixtures.
    """

    @given(
        n=st.integers(min_value=1, max_value=3),
        height=st.integers(min_value=6, max_value=20),
        width=st.integers(min_value=6, max_value=20),
        sigma=st.floats(min_value=0.6, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        config=st.sampled_from(BLUR_CONFIGS),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_bit_identical_to_per_plane(
        self, n, height, width, sigma, seed, config
    ):
        stack = np.random.default_rng(seed).uniform(
            0.0, 1.0, (n, height, width)
        )
        kernel = GaussianKernel(sigma=sigma)
        batched = fixed_point_blur_batch(stack, kernel, config)
        per_plane = np.stack(
            [fixed_point_blur_plane(plane, kernel, config) for plane in stack]
        )
        np.testing.assert_array_equal(batched, per_plane)

    @given(
        sigma=st.floats(min_value=0.6, max_value=2.5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_of_one_equals_plane(self, sigma, seed):
        # The N=1 degenerate case must not take a different code path.
        plane = np.random.default_rng(seed).uniform(0.0, 1.0, (12, 9))
        kernel = GaussianKernel(sigma=sigma)
        np.testing.assert_array_equal(
            fixed_point_blur_batch(plane[np.newaxis], kernel)[0],
            fixed_point_blur_plane(plane, kernel),
        )
