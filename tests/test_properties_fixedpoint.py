"""Property-based tests (hypothesis) for the fixed-point substrate.

Invariants: quantization error bounds, scalar/vector agreement, widening
exactness, cast monotonicity, overflow containment.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import (
    ApFixed,
    FixedArray,
    FixedFormat,
    Overflow,
    Quant,
    quantize_array,
    raw_to_float,
)

formats = st.builds(
    FixedFormat,
    word_length=st.integers(min_value=4, max_value=24),
    int_length=st.integers(min_value=0, max_value=8),
    signed=st.booleans(),
    quant=st.sampled_from(list(Quant)),
    overflow=st.sampled_from([Overflow.SAT, Overflow.WRAP, Overflow.SAT_SYM]),
)

in_range_values = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestQuantizationProperties:
    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_scalar_vector_agree(self, fmt, value):
        scalar = ApFixed.from_float(value, fmt).raw
        vector = int(quantize_array(np.array([value]), fmt)[0])
        assert scalar == vector

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_result_always_in_range(self, fmt, value):
        x = ApFixed.from_float(value, fmt)
        assert fmt.raw_min <= x.raw <= fmt.raw_max

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=300, deadline=None)
    def test_error_bounded_when_representable(self, fmt, value):
        # Inside the representable range the quantization error is at
        # most one LSB (truncation) / half an LSB (rounding).
        if not (fmt.min_value <= value <= fmt.max_value):
            return
        x = ApFixed.from_float(value, fmt)
        bound = fmt.resolution if fmt.quant in (Quant.TRN, Quant.TRN_ZERO) \
            else fmt.resolution / 2
        assert abs(x.to_float() - value) <= bound + 1e-12

    @given(fmt=formats, value=in_range_values)
    @settings(max_examples=200, deadline=None)
    def test_quantization_idempotent(self, fmt, value):
        once = ApFixed.from_float(value, fmt)
        twice = ApFixed.from_float(once.to_float(), fmt)
        assert once.raw == twice.raw

    @given(
        fmt=formats,
        a=st.floats(min_value=-50, max_value=50, allow_nan=False),
        b=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_trn_monotone(self, fmt, a, b):
        # Truncation (and every rounding mode) is monotone.
        fmt = fmt.with_modes(quant=Quant.TRN, overflow=Overflow.SAT)
        xa = ApFixed.from_float(a, fmt)
        xb = ApFixed.from_float(b, fmt)
        if a <= b:
            assert xa.to_float() <= xb.to_float()


class TestArithmeticProperties:
    small_fmt = FixedFormat(16, 6, quant=Quant.RND, overflow=Overflow.SAT)

    @given(
        a=st.floats(min_value=-15, max_value=15, allow_nan=False),
        b=st.floats(min_value=-15, max_value=15, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_exact(self, a, b):
        xa = ApFixed.from_float(a, self.small_fmt)
        xb = ApFixed.from_float(b, self.small_fmt)
        assert (xa + xb).to_float() == pytest.approx(
            xa.to_float() + xb.to_float(), abs=1e-12
        )

    @given(
        a=st.floats(min_value=-15, max_value=15, allow_nan=False),
        b=st.floats(min_value=-15, max_value=15, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_mul_exact(self, a, b):
        xa = ApFixed.from_float(a, self.small_fmt)
        xb = ApFixed.from_float(b, self.small_fmt)
        assert (xa * xb).to_float() == pytest.approx(
            xa.to_float() * xb.to_float(), abs=1e-12
        )

    @given(
        a=st.floats(min_value=-15, max_value=15, allow_nan=False),
        b=st.floats(min_value=-15, max_value=15, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_add_commutative(self, a, b):
        xa = ApFixed.from_float(a, self.small_fmt)
        xb = ApFixed.from_float(b, self.small_fmt)
        assert (xa + xb) == (xb + xa)

    @given(a=st.floats(min_value=-15, max_value=15, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_neg_involutive(self, a):
        x = ApFixed.from_float(a, self.small_fmt)
        assert (-(-x)) == x

    @given(a=st.floats(min_value=-15, max_value=15, allow_nan=False),
           bits=st.integers(min_value=0, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_shift_roundtrip(self, a, bits):
        x = ApFixed.from_float(a, self.small_fmt)
        assert ((x >> bits) << bits) == x


class TestArrayProperties:
    @given(
        fmt=formats,
        values=st.lists(in_range_values, min_size=1, max_size=32),
    )
    @settings(max_examples=150, deadline=None)
    def test_array_roundtrip_idempotent(self, fmt, values):
        arr = np.asarray(values)
        raw1 = quantize_array(arr, fmt)
        raw2 = quantize_array(raw_to_float(raw1, fmt), fmt)
        np.testing.assert_array_equal(raw1, raw2)

    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_array_cast_matches_scalar(self, values):
        wide = FixedFormat(24, 8, quant=Quant.RND, overflow=Overflow.SAT)
        narrow = FixedFormat(10, 4, quant=Quant.TRN, overflow=Overflow.SAT)
        arr = FixedArray.from_float(np.asarray(values), wide).cast(narrow)
        for i, v in enumerate(values):
            scalar = ApFixed.from_float(v, wide).cast(narrow)
            assert arr.element(i) == scalar
