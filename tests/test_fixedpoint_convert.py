"""Tests for repro.fixedpoint.convert (float-to-fixed analysis)."""

import math

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import (
    FixedFormat,
    Overflow,
    Quant,
    integer_bits_required,
    quantization_error_stats,
    suggest_format,
    value_range,
)


class TestValueRange:
    def test_basic(self):
        report = value_range(np.array([-1.0, 0.5, 3.0]))
        assert report.min_value == -1.0
        assert report.max_value == 3.0
        assert report.max_abs == 3.0
        assert report.needs_sign

    def test_non_negative(self):
        report = value_range(np.array([0.0, 0.5]))
        assert not report.needs_sign

    def test_empty_rejected(self):
        with pytest.raises(FixedPointError):
            value_range(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(FixedPointError):
            value_range(np.array([np.nan]))


class TestIntegerBitsRequired:
    def test_zero_needs_none(self):
        assert integer_bits_required(0.0, signed=False) == 0
        assert integer_bits_required(0.0, signed=True) == 1

    def test_unit_range(self):
        # Values < 1 need 0 magnitude bits; exactly 1.0 needs 1.
        assert integer_bits_required(0.99, signed=False) == 0
        assert integer_bits_required(1.0, signed=False) == 1

    def test_powers_of_two(self):
        assert integer_bits_required(2.0, signed=False) == 2
        assert integer_bits_required(3.9, signed=False) == 2
        assert integer_bits_required(4.0, signed=False) == 3

    def test_sign_adds_one(self):
        unsigned = integer_bits_required(5.0, signed=False)
        assert integer_bits_required(5.0, signed=True) == unsigned + 1

    def test_negative_rejected(self):
        with pytest.raises(FixedPointError):
            integer_bits_required(-1.0, signed=False)


class TestSuggestFormat:
    def test_unit_range_unsigned(self):
        fmt = suggest_format(np.array([0.0, 0.5, 0.99]), word_length=16)
        assert fmt.signed is False
        assert fmt.int_length == 0
        assert fmt.word_length == 16

    def test_signed_inferred(self):
        fmt = suggest_format(np.array([-0.5, 0.5]), word_length=16)
        assert fmt.signed is True
        assert fmt.int_length == 1

    def test_headroom(self):
        base = suggest_format(np.array([0.0, 0.9]), word_length=16)
        padded = suggest_format(np.array([0.0, 0.9]), word_length=16, headroom_bits=3)
        assert padded.int_length == base.int_length + 3

    def test_unsigned_request_with_negatives_rejected(self):
        with pytest.raises(FixedPointError):
            suggest_format(np.array([-1.0, 1.0]), word_length=16, signed=False)

    def test_covers_observed_range(self):
        values = np.array([-3.7, 0.2, 11.9])
        fmt = suggest_format(values, word_length=24)
        assert fmt.representable(values.min())
        assert fmt.representable(values.max())


class TestQuantizationErrorStats:
    def test_exact_signal(self):
        fmt = FixedFormat(16, 2, quant=Quant.RND)
        stats = quantization_error_stats(np.array([0.5, 0.25, -0.125]), fmt)
        assert stats.is_exact
        assert stats.snr_db == math.inf
        assert stats.saturated_fraction == 0.0

    def test_error_bounded_by_half_lsb(self):
        fmt = FixedFormat(12, 1, quant=Quant.RND, overflow=Overflow.SAT)
        rng = np.random.default_rng(7)
        values = rng.uniform(-0.9, 0.9, 512)
        stats = quantization_error_stats(values, fmt)
        assert stats.max_abs_error <= fmt.resolution / 2 + 1e-15

    def test_trn_error_bounded_by_one_lsb(self):
        fmt = FixedFormat(12, 1, quant=Quant.TRN, overflow=Overflow.SAT)
        rng = np.random.default_rng(8)
        values = rng.uniform(-0.9, 0.9, 512)
        stats = quantization_error_stats(values, fmt)
        assert stats.max_abs_error <= fmt.resolution + 1e-15
        assert stats.max_abs_error > fmt.resolution / 2  # truncation is worse

    def test_snr_improves_with_width(self):
        rng = np.random.default_rng(9)
        values = rng.uniform(0.01, 0.99, 2048)
        snrs = []
        for width in (8, 12, 16):
            fmt = FixedFormat(width, 0, signed=False, quant=Quant.RND,
                              overflow=Overflow.SAT)
            snrs.append(quantization_error_stats(values, fmt).snr_db)
        assert snrs[0] < snrs[1] < snrs[2]
        # ~6 dB per bit.
        assert 15 < snrs[1] - snrs[0] < 33

    def test_saturation_reported(self):
        fmt = FixedFormat(8, 1, quant=Quant.RND, overflow=Overflow.SAT)
        values = np.array([0.0, 0.5, 5.0, -5.0])
        stats = quantization_error_stats(values, fmt)
        assert stats.saturated_fraction == pytest.approx(0.5)

    def test_empty_rejected(self):
        fmt = FixedFormat(8, 1)
        with pytest.raises(FixedPointError):
            quantization_error_stats(np.array([]), fmt)
