"""Tests for repro.hls.ops (operator library)."""

import pytest

from repro.errors import HlsError
from repro.hls import DEFAULT_LIBRARY, OpKind, OpSpec, OperatorLibrary


class TestOpKind:
    def test_float_classification(self):
        assert OpKind.FADD.is_float
        assert OpKind.FMUL.is_float
        assert not OpKind.ADD.is_float
        assert not OpKind.LOAD.is_float

    def test_memory_classification(self):
        assert OpKind.LOAD.is_memory
        assert OpKind.STORE.is_memory
        assert not OpKind.FADD.is_memory


class TestOpSpec:
    def test_valid(self):
        spec = OpSpec(latency=3, lut=10, ff=20, dsp=1)
        assert spec.latency == 3
        assert spec.operator_ii == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(HlsError):
            OpSpec(latency=-1)

    def test_zero_operator_ii_rejected(self):
        with pytest.raises(HlsError):
            OpSpec(latency=1, operator_ii=0)

    def test_negative_resources_rejected(self):
        with pytest.raises(HlsError):
            OpSpec(latency=1, lut=-5)


class TestDefaultLibrary:
    def test_all_kinds_present(self):
        for kind in OpKind:
            assert DEFAULT_LIBRARY[kind].latency >= 0

    def test_float_add_slower_than_fixed_add(self):
        # The asymmetry behind the paper's FxP conversion.
        assert DEFAULT_LIBRARY.latency(OpKind.FADD) > DEFAULT_LIBRARY.latency(
            OpKind.ADD
        )

    def test_float_mul_uses_more_dsp_than_fixed(self):
        assert DEFAULT_LIBRARY[OpKind.FMUL].dsp > DEFAULT_LIBRARY[OpKind.MUL].dsp

    def test_divider_is_iterative(self):
        assert DEFAULT_LIBRARY[OpKind.DIV].operator_ii > 1

    def test_chain_latency(self):
        chain = (OpKind.LOAD, OpKind.FMUL, OpKind.FADD)
        expected = (
            DEFAULT_LIBRARY.latency(OpKind.LOAD)
            + DEFAULT_LIBRARY.latency(OpKind.FMUL)
            + DEFAULT_LIBRARY.latency(OpKind.FADD)
        )
        assert DEFAULT_LIBRARY.chain_latency(chain) == expected

    def test_empty_chain_latency_zero(self):
        assert DEFAULT_LIBRARY.chain_latency(()) == 0


class TestOperatorLibrary:
    def test_missing_spec_rejected(self):
        with pytest.raises(HlsError, match="missing"):
            OperatorLibrary({OpKind.FADD: OpSpec(latency=4)})

    def test_with_overrides(self):
        fast = DEFAULT_LIBRARY.with_overrides(
            {OpKind.FADD: OpSpec(latency=1, lut=100)}
        )
        assert fast.latency(OpKind.FADD) == 1
        assert DEFAULT_LIBRARY.latency(OpKind.FADD) == 4  # original intact
        # Other specs inherited.
        assert fast.latency(OpKind.FMUL) == DEFAULT_LIBRARY.latency(OpKind.FMUL)
