"""Tests for repro.runtime.arena: pooling, leases, hygiene.

The arena's contracts are structural (reuse, refcounts, overflow) and
hygienic (nothing left behind in /dev/shm), so the assertions here are
exact counter checks and filesystem scans, not tolerances.
"""

import os

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.runtime.arena import PAGE_BYTES, ShmArena, size_class

SHM_DIR = "/dev/shm"


def shm_names():
    """Current shared-memory segment names (posixshmem default prefix)."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm to scan on this platform")
    return {name for name in os.listdir(SHM_DIR) if name.startswith("psm_")}


class TestSizeClass:
    def test_rounds_up_to_powers_of_two(self):
        assert size_class(PAGE_BYTES + 1) == 2 * PAGE_BYTES
        assert size_class(3 * PAGE_BYTES) == 4 * PAGE_BYTES

    def test_exact_powers_stay(self):
        assert size_class(1 << 20) == 1 << 20

    def test_page_floor(self):
        assert size_class(1) == PAGE_BYTES
        assert size_class(0) == PAGE_BYTES

    def test_negative_rejected(self):
        with pytest.raises(ToneMapError):
            size_class(-1)


class TestLeaseLifecycle:
    def test_write_read_roundtrip(self):
        with ShmArena() as arena:
            lease = arena.lease_input((4, 8, 8))
            lease.array[:] = 7.0
            assert lease.array.shape == (4, 8, 8)
            assert lease.array.dtype == np.float32
            np.testing.assert_array_equal(lease.array, 7.0)
            lease.release()

    def test_release_recycles_segment(self):
        with ShmArena() as arena:
            first = arena.lease_input((2, 16, 16))
            name = first.segment_name
            first.release()
            second = arena.lease_input((2, 16, 16))
            assert second.segment_name == name
            stats = arena.stats
            assert stats.segments_created == 1
            assert stats.reuses == 1
            second.release()

    def test_double_release_raises(self):
        with ShmArena() as arena:
            lease = arena.lease_output((8, 8))
            lease.release()
            with pytest.raises(ToneMapError):
                lease.release()
            assert lease.array is None

    def test_acquire_defers_recycle_until_last_release(self):
        with ShmArena() as arena:
            lease = arena.lease_output((8, 8))
            lease.acquire()
            lease.release()
            assert lease.array is not None  # one reference still out
            assert arena.stats.leases_active == 1
            lease.release()
            assert lease.array is None
            assert arena.stats.leases_active == 0

    def test_acquire_after_release_raises(self):
        with ShmArena() as arena:
            lease = arena.lease_output((8, 8))
            lease.release()
            with pytest.raises(ToneMapError):
                lease.acquire()

    def test_materialize_copies_and_releases(self):
        with ShmArena() as arena:
            lease = arena.lease_output((3, 4))
            lease.array[:] = 2.5
            out = lease.array  # the view the copy must not alias
            copy = lease.materialize()
            assert lease.array is None
            np.testing.assert_array_equal(copy, 2.5)
            assert copy.base is None or copy.base is not out
            assert arena.stats.bytes_materialized == copy.nbytes
            with pytest.raises(ToneMapError):
                lease.materialize()

    def test_context_manager_releases(self):
        with ShmArena() as arena:
            with arena.lease_input((4, 4)) as lease:
                lease.array[:] = 1.0
            assert arena.stats.leases_active == 0


class TestPoolingAndOverflow:
    def test_inputs_and_outputs_pool_separately(self):
        with ShmArena(slots=2) as arena:
            a = arena.lease_input((16, 16))
            b = arena.lease_output((16, 16))
            assert a.segment_name != b.segment_name
            a.release()
            b.release()

    def test_overflow_creates_transient_segments(self):
        with ShmArena(slots=1) as arena:
            held = arena.lease_output((32, 32))
            overflow = arena.lease_output((32, 32))
            assert arena.stats.overflow == 1
            assert held.cacheable and not overflow.cacheable
            name = overflow.segment_name
            overflow.release()
            assert name not in shm_names()  # transient: unlinked on release
            held.release()

    def test_overflow_segments_do_not_join_the_pool(self):
        with ShmArena(slots=1) as arena:
            held = arena.lease_output((32, 32))
            arena.lease_output((32, 32)).release()
            held.release()
            # Only the pooled slab remains resident.
            assert arena.stats.pooled_segments == 1

    def test_mixed_shape_storm_bounded_by_slots(self):
        shapes = [(8, 8), (16, 16), (8, 8, 3), (32, 8), (8, 32)]
        with ShmArena(slots=2) as arena:
            for round_index in range(6):
                leases = [
                    arena.lease_input(shapes[(round_index + i) % len(shapes)])
                    for i in range(3)
                ]
                for index, lease in enumerate(leases):
                    lease.array[:] = float(index)
                for lease in leases:
                    lease.release()
            stats = arena.stats
            assert stats.leases_active == 0
            # Size classes collapse the 5 shapes into a handful of
            # segments, each reused across rounds.
            assert stats.segments_created <= 2 * len(shapes)
            assert stats.reuses > stats.segments_created

    def test_invalid_slots_rejected(self):
        with pytest.raises(ToneMapError):
            ShmArena(slots=0)

    def test_empty_shape_rejected(self):
        with ShmArena() as arena:
            with pytest.raises(ToneMapError):
                arena.lease_input((0, 8))


class TestHygiene:
    def test_close_unlinks_everything(self):
        before = shm_names()
        arena = ShmArena()
        leases = [arena.lease_input((64, 64)) for _ in range(3)]
        for lease in leases:
            lease.release()
        assert shm_names() - before  # segments existed while open
        arena.close()
        assert shm_names() - before == set()

    def test_close_unlinks_despite_pinned_view(self):
        # A leaked view makes mmap.close() raise BufferError; the name
        # must still leave /dev/shm (the kernel frees the pages when the
        # mapping dies).
        before = shm_names()
        arena = ShmArena()
        lease = arena.lease_input((16, 16))
        pinned = lease.array  # keep the buffer exported past close()
        arena.close()
        assert shm_names() - before == set()
        assert pinned.shape == (16, 16)  # mapping itself stays valid

    def test_release_after_close_is_safe(self):
        arena = ShmArena()
        lease = arena.lease_input((8, 8))
        arena.close()
        lease.release()  # no error, no resurrection
        assert arena.stats.leases_active == 0

    def test_lease_after_close_raises(self):
        arena = ShmArena()
        arena.close()
        with pytest.raises(ToneMapError):
            arena.lease_input((8, 8))

    def test_close_is_idempotent(self):
        arena = ShmArena()
        arena.lease_input((8, 8)).release()
        arena.close()
        arena.close()
