"""Tests for repro.hls.pragmas."""

import pytest

from repro.errors import PragmaError
from repro.hls import (
    AccessKind,
    ArrayDecl,
    ArrayPartitionPragma,
    Kernel,
    KernelArg,
    Loop,
    PartitionKind,
    PipelinePragma,
    Storage,
    UnrollPragma,
    apply_pragmas,
)


def kernel():
    return Kernel(
        name="k",
        args=[KernelArg("a", AccessKind.READ, 64, 32)],
        arrays=[
            ArrayDecl("buf", 64, 32),
            ArrayDecl("ext", 64, 32, storage=Storage.EXTERNAL),
        ],
        loops=[Loop("outer", trip_count=16, subloops=[Loop("inner", 8)])],
    )


class TestPipelinePragma:
    def test_sets_flag(self):
        out = apply_pragmas(kernel(), [PipelinePragma("inner")])
        assert out.find_loop("inner").pipeline is True
        assert out.find_loop("outer").pipeline is False

    def test_original_untouched(self):
        k = kernel()
        apply_pragmas(k, [PipelinePragma("outer")])
        assert k.find_loop("outer").pipeline is False

    def test_unknown_loop(self):
        with pytest.raises(PragmaError, match="unknown loop"):
            apply_pragmas(kernel(), [PipelinePragma("ghost")])

    def test_invalid_ii_target(self):
        with pytest.raises(PragmaError):
            PipelinePragma("outer", ii_target=0)


class TestUnrollPragma:
    def test_sets_factor(self):
        out = apply_pragmas(kernel(), [UnrollPragma("inner", factor=4)])
        assert out.find_loop("inner").unroll_factor == 4

    def test_factor_exceeding_trip_rejected(self):
        with pytest.raises(PragmaError, match="exceeds trip count"):
            apply_pragmas(kernel(), [UnrollPragma("inner", factor=16)])

    def test_invalid_factor(self):
        with pytest.raises(PragmaError):
            UnrollPragma("inner", factor=0)


class TestArrayPartitionPragma:
    def test_cyclic_multiplies_factor(self):
        out = apply_pragmas(
            kernel(), [ArrayPartitionPragma("buf", PartitionKind.CYCLIC, 4)]
        )
        assert out.array("buf").partition_factor == 4

    def test_block_same_model(self):
        out = apply_pragmas(
            kernel(), [ArrayPartitionPragma("buf", PartitionKind.BLOCK, 8)]
        )
        assert out.array("buf").partition_factor == 8

    def test_stacked_partitions_compose(self):
        out = apply_pragmas(
            kernel(),
            [
                ArrayPartitionPragma("buf", PartitionKind.CYCLIC, 2),
                ArrayPartitionPragma("buf", PartitionKind.CYCLIC, 2),
            ],
        )
        assert out.array("buf").partition_factor == 4

    def test_complete_becomes_registers(self):
        out = apply_pragmas(
            kernel(), [ArrayPartitionPragma("buf", PartitionKind.COMPLETE)]
        )
        decl = out.array("buf")
        assert decl.storage is Storage.REGISTERS
        assert decl.ports_per_cycle == float("inf")

    def test_external_array_rejected(self):
        with pytest.raises(PragmaError, match="external"):
            apply_pragmas(
                kernel(), [ArrayPartitionPragma("ext", PartitionKind.CYCLIC, 2)]
            )

    def test_factor_exceeding_depth_rejected(self):
        with pytest.raises(PragmaError, match="exceeds array depth"):
            apply_pragmas(
                kernel(), [ArrayPartitionPragma("buf", PartitionKind.CYCLIC, 128)]
            )

    def test_factor_one_rejected(self):
        with pytest.raises(PragmaError, match="no-op"):
            ArrayPartitionPragma("buf", PartitionKind.CYCLIC, 1)

    def test_unknown_array(self):
        with pytest.raises(PragmaError, match="unknown array"):
            apply_pragmas(
                kernel(), [ArrayPartitionPragma("ghost", PartitionKind.CYCLIC, 2)]
            )


class TestApplyPragmas:
    def test_non_pragma_rejected(self):
        with pytest.raises(PragmaError, match="not a pragma"):
            apply_pragmas(kernel(), ["#pragma HLS PIPELINE"])

    def test_order_of_application(self):
        out = apply_pragmas(
            kernel(),
            [
                PipelinePragma("outer"),
                UnrollPragma("inner", 2),
                ArrayPartitionPragma("buf", PartitionKind.CYCLIC, 2),
            ],
        )
        assert out.find_loop("outer").pipeline
        assert out.find_loop("inner").unroll_factor == 2
        assert out.array("buf").partition_factor == 2
