"""Tests for the SLO degradation ladder and service-class scheduling.

The :class:`~repro.runtime.overload.OverloadController` is a pure
policy object, so its hysteresis is driven observation by observation
on a :class:`~repro.runtime.clock.FakeClock`.  Class-aware shedding is
exercised both white-box (fabricated queues, exact victim selection)
and end-to-end through a gated ingestor whose queue state is
deterministic.
"""

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np
import pytest

from repro.errors import ServiceOverloadedError, ToneMapError
from repro.image.synthetic import SceneParams, make_scene
from repro.planner import pinned, plan_for
from repro.runtime import (
    LADDER,
    BatchToneMapper,
    FakeClock,
    OverloadController,
    OverloadPolicy,
    ServiceClass,
    ServiceLevelObjective,
    ToneMapIngestor,
    ToneMapService,
)
from repro.runtime.ingest import _coerce_class, _edf_key, _Pending
from repro.runtime.overload import (
    LADDER_BROWNOUT,
    LADDER_DEGRADED,
    LADDER_FULL,
    LADDER_SHED,
    rung_index,
)
from repro.tonemap.gaussian import separable_blur
from repro.tonemap.pipeline import ToneMapParams

PARAMS = ToneMapParams(sigma=2.0, radius=6)


def scenes(count, size=24, base=100):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=base + i),
        )
        for i in range(count)
    ]


def gated_params():
    """Params whose blur blocks until the returned event is set."""
    gate = threading.Event()

    def slow_blur(plane, kernel):
        gate.wait(timeout=30)
        return separable_blur(plane, kernel)

    return ToneMapParams(sigma=2.0, radius=6, blur_fn=slow_blur), gate


def depth_policy(limit=4, **kwargs):
    return OverloadPolicy(
        slo=ServiceLevelObjective(queue_depth=limit), **kwargs
    )


class TestServiceLevelObjective:
    def test_requires_at_least_one_bound(self):
        with pytest.raises(ToneMapError, match="needs p95_ms"):
            ServiceLevelObjective()

    def test_rejects_nonpositive_p95(self):
        with pytest.raises(ToneMapError, match="p95_ms must be > 0"):
            ServiceLevelObjective(p95_ms=0.0)

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ToneMapError, match="queue_depth must be >= 1"):
            ServiceLevelObjective(queue_depth=0)

    def test_single_bound_is_enough(self):
        assert ServiceLevelObjective(p95_ms=50.0).queue_depth is None
        assert ServiceLevelObjective(queue_depth=8).p95_ms is None


class TestOverloadPolicy:
    def test_slo_type_checked(self):
        with pytest.raises(ToneMapError, match="must be a ServiceLevel"):
            OverloadPolicy(slo="fast please")

    def test_patience_bounds(self):
        with pytest.raises(ToneMapError, match="patience"):
            depth_policy(climb_patience=0)
        with pytest.raises(ToneMapError, match="patience"):
            depth_policy(descend_patience=0)

    def test_recover_fraction_bounds(self):
        with pytest.raises(ToneMapError, match="recover_fraction"):
            depth_policy(recover_fraction=0.0)
        with pytest.raises(ToneMapError, match="recover_fraction"):
            depth_policy(recover_fraction=1.5)

    def test_min_dwell_nonnegative(self):
        with pytest.raises(ToneMapError, match="min_dwell_s"):
            depth_policy(min_dwell_s=-1.0)

    def test_controller_requires_policy(self):
        with pytest.raises(ToneMapError, match="OverloadPolicy"):
            OverloadController(ServiceLevelObjective(queue_depth=4))


class TestOverloadController:
    def test_starts_full_and_climbs_after_patience(self):
        ctl = OverloadController(depth_policy(4, climb_patience=3))
        assert ctl.rung == LADDER_FULL
        assert ctl.observe(None, 10) == LADDER_FULL
        assert ctl.observe(None, 10) == LADDER_FULL
        assert ctl.observe(None, 10) == LADDER_DEGRADED
        assert ctl.transitions == 1

    def test_climbs_one_rung_per_streak_and_caps_at_brownout(self):
        ctl = OverloadController(depth_policy(4, climb_patience=1))
        rungs = [ctl.observe(None, 100) for _ in range(6)]
        assert rungs[:3] == [LADDER_DEGRADED, LADDER_SHED, LADDER_BROWNOUT]
        assert rungs[3:] == [LADDER_BROWNOUT] * 3  # capped, no flapping
        assert ctl.transitions == 3

    def test_dead_zone_resets_the_climb_streak(self):
        # SLO depth 10, recovery band at 5: depth 8 is between the two.
        ctl = OverloadController(
            depth_policy(10, climb_patience=2, recover_fraction=0.5)
        )
        ctl.observe(None, 11)
        ctl.observe(None, 8)  # dead zone: streak forgotten
        ctl.observe(None, 11)
        assert ctl.rung == LADDER_FULL  # one breach, not two consecutive
        assert ctl.observe(None, 11) == LADDER_DEGRADED

    def test_dead_zone_resets_the_descend_streak(self):
        ctl = OverloadController(
            depth_policy(
                10,
                climb_patience=1,
                descend_patience=2,
                recover_fraction=0.5,
            )
        )
        ctl.observe(None, 11)  # -> degraded
        ctl.observe(None, 4)
        ctl.observe(None, 8)  # dead zone: recovery streak forgotten
        ctl.observe(None, 4)
        assert ctl.rung == LADDER_DEGRADED
        assert ctl.observe(None, 4) == LADDER_FULL
        assert ctl.transitions == 2

    def test_descends_slowly_one_rung_per_streak(self):
        ctl = OverloadController(
            depth_policy(10, climb_patience=1, descend_patience=3)
        )
        ctl.observe(None, 11)
        ctl.observe(None, 11)  # -> shed_best_effort
        for _ in range(3):
            ctl.observe(None, 0)
        assert ctl.rung == LADDER_DEGRADED  # one rung down, not two
        for _ in range(3):
            ctl.observe(None, 0)
        assert ctl.rung == LADDER_FULL
        assert ctl.transitions == 4

    def test_min_dwell_gates_transitions_on_the_injected_clock(self):
        clock = FakeClock()
        ctl = OverloadController(
            depth_policy(4, climb_patience=1, min_dwell_s=10.0),
            clock=clock,
        )
        assert ctl.observe(None, 100) == LADDER_DEGRADED
        # Breaches keep arriving but the dwell floor holds the rung.
        assert ctl.observe(None, 100) == LADDER_DEGRADED
        assert ctl.observe(None, 100) == LADDER_DEGRADED
        clock.advance(10.0)
        assert ctl.observe(None, 100) == LADDER_SHED
        assert ctl.transitions == 2

    def test_empty_latency_window_is_no_signal(self):
        # p95-only SLO: None / 0.0 (empty window) can never breach it.
        ctl = OverloadController(
            OverloadPolicy(
                slo=ServiceLevelObjective(p95_ms=10.0), climb_patience=1
            )
        )
        assert ctl.observe(None, 10_000) == LADDER_FULL
        assert ctl.observe(0.0, 10_000) == LADDER_FULL
        assert ctl.observe(11.0, 0) == LADDER_DEGRADED

    def test_p95_breach_climbs_without_depth_bound(self):
        ctl = OverloadController(
            OverloadPolicy(
                slo=ServiceLevelObjective(p95_ms=10.0),
                climb_patience=1,
                descend_patience=1,
            )
        )
        ctl.observe(50.0, 0)
        assert ctl.rung == LADDER_DEGRADED
        ctl.observe(1.0, 0)  # well inside the recovery band
        assert ctl.rung == LADDER_FULL

    def test_rung_index_rejects_unknown_rungs(self):
        assert [rung_index(r) for r in LADDER] == [0, 1, 2, 3]
        with pytest.raises(ToneMapError, match="unknown ladder rung"):
            rung_index("medium-rare")


class TestServiceClassCoercion:
    def test_none_means_standard(self):
        assert _coerce_class(None) is ServiceClass.STANDARD

    def test_enum_and_string_forms(self):
        assert _coerce_class(ServiceClass.INTERACTIVE) is (
            ServiceClass.INTERACTIVE
        )
        assert _coerce_class("interactive") is ServiceClass.INTERACTIVE
        assert _coerce_class("best_effort") is ServiceClass.BEST_EFFORT
        assert _coerce_class("best-effort") is ServiceClass.BEST_EFFORT

    def test_unknown_priority_raises(self):
        with pytest.raises(ToneMapError, match="priority must be"):
            _coerce_class("urgent")
        with pytest.raises(ToneMapError, match="priority must be"):
            _coerce_class(3)

    def test_submit_rejects_unknown_priority(self):
        with ToneMapService(PARAMS, batch_size=1) as service:
            with ToneMapIngestor(service) as ingestor:
                with pytest.raises(ToneMapError, match="priority"):
                    ingestor.submit(scenes(1)[0], priority="urgent")


class TestEDFOrdering:
    def test_edf_key_orders_deadline_then_class_then_arrival(self):
        def frame(name, deadline, service_class, at):
            return _Pending(
                name, Future(), at, None, "t",
                deadline=deadline, service_class=service_class,
            )

        soon = frame("soon", 5.0, ServiceClass.BEST_EFFORT, 3.0)
        later = frame("later", 9.0, ServiceClass.INTERACTIVE, 0.0)
        ui = frame("ui", None, ServiceClass.INTERACTIVE, 2.0)
        std_old = frame("std_old", None, ServiceClass.STANDARD, 1.0)
        std_new = frame("std_new", None, ServiceClass.STANDARD, 4.0)
        ordered = sorted(
            [std_new, ui, soon, std_old, later], key=_edf_key
        )
        # Any deadline beats none; class rank then arrival break ties.
        assert [p.name for p in ordered] == [
            "soon", "later", "ui", "std_old", "std_new"
        ]

    def test_batch_membership_is_edf_selected(self):
        # One gated worker + a dispatch gate of 1 parks three frames in
        # the queue; the next 2-seat batch must take the frame with a
        # deadline and the interactive frame, leaving the older
        # standard frame behind.
        params, gate = gated_params()
        done = []
        with ToneMapService(params, batch_size=2, max_workers=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=0, max_inflight_batches=1
            ) as ingestor:
                blocker = ingestor.submit(scenes(1, base=0)[0])
                while True:  # wait for the blocker to occupy the gate
                    with ingestor._lock:
                        if ingestor._dispatched == 1:
                            break
                    time.sleep(0.005)
                a, b, c = scenes(3)
                futures = {
                    "standard": ingestor.submit(a),
                    "deadline": ingestor.submit(b, deadline_ms=60_000),
                    "ui": ingestor.submit(c, priority="interactive"),
                }
                for name, future in futures.items():
                    future.add_done_callback(
                        lambda _, name=name: done.append(name)
                    )
                gate.set()
                blocker.result(timeout=30)
                for future in futures.values():
                    future.result(timeout=30)
        assert set(done[:2]) == {"deadline", "ui"}
        assert done[2] == "standard"


def park(ingestor, tenant, name, service_class, deadline=None, at=0.0):
    """Fabricate one queued frame (white-box shed-selection tests)."""
    with ingestor._lock:
        state = ingestor._tenant_locked(tenant)
        pending = _Pending(
            name, Future(), at, None, tenant,
            deadline=deadline, service_class=service_class,
        )
        shape = (8, 8, 3)
        state.queues.setdefault(shape, deque()).append(pending)
        state.in_flight += 1
        ingestor._shape_totals[shape] = (
            ingestor._shape_totals.get(shape, 0) + 1
        )
        ingestor._in_flight += 1
        return pending


def clear_queues(ingestor):
    """Drop fabricated frames so close() does not wait on them."""
    with ingestor._lock:
        for state in ingestor._tenants.values():
            for shape, queue in list(state.queues.items()):
                state.in_flight -= len(queue)
                ingestor._in_flight -= len(queue)
                del state.queues[shape]
        ingestor._shape_totals.clear()


@pytest.fixture
def quiet_ingestor():
    clock = FakeClock(start=100.0)
    with ToneMapService(PARAMS, batch_size=64) as service:
        # Huge batch size + huge delay: nothing fabricated ever flushes.
        ingestor = ToneMapIngestor(
            service, max_delay_ms=60_000, queue_limit=64, clock=clock
        )
        try:
            yield ingestor, clock
        finally:
            clear_queues(ingestor)
            ingestor.close()


class TestClassAwareShedding:
    def test_best_effort_sheds_before_older_standard(self, quiet_ingestor):
        ingestor, _ = quiet_ingestor
        std = park(ingestor, "t", "std", ServiceClass.STANDARD, at=1.0)
        cheap = park(
            ingestor, "t", "cheap", ServiceClass.BEST_EFFORT, at=5.0
        )
        with ingestor._lock:
            assert ingestor._shed_one_locked() is True
        with pytest.raises(ServiceOverloadedError):
            cheap.future.result(timeout=0)
        assert not std.future.done()

    def test_all_standard_sheds_the_oldest(self, quiet_ingestor):
        ingestor, _ = quiet_ingestor
        old = park(ingestor, "t", "old", ServiceClass.STANDARD, at=1.0)
        new = park(ingestor, "t", "new", ServiceClass.STANDARD, at=2.0)
        with ingestor._lock:
            assert ingestor._shed_one_locked() is True
        assert old.future.done() and not new.future.done()

    def test_interactive_protected_until_its_deadline_expires(
        self, quiet_ingestor
    ):
        ingestor, clock = quiet_ingestor
        ui = park(
            ingestor, "t", "ui", ServiceClass.INTERACTIVE,
            deadline=clock.now() + 5.0, at=1.0,
        )
        with ingestor._lock:
            # Pre-deadline: the only queued frame is untouchable.
            assert ingestor._shed_one_locked() is False
        clock.advance(6.0)
        with ingestor._lock:
            assert ingestor._shed_one_locked() is True
        with pytest.raises(ServiceOverloadedError):
            ui.future.result(timeout=0)

    def test_interactive_without_deadline_never_sheds(self, quiet_ingestor):
        ingestor, _ = quiet_ingestor
        park(ingestor, "t", "ui", ServiceClass.INTERACTIVE, at=1.0)
        with ingestor._lock:
            assert ingestor._shed_one_locked() is False

    def test_tenant_scope_narrows_the_search(self, quiet_ingestor):
        ingestor, _ = quiet_ingestor
        other = park(
            ingestor, "other", "cheap", ServiceClass.BEST_EFFORT, at=1.0
        )
        mine = park(ingestor, "mine", "std", ServiceClass.STANDARD, at=2.0)
        with ingestor._lock:
            state = ingestor._tenant_locked("mine")
            assert ingestor._shed_one_locked(state) is True
        # Scoped to "mine": its standard frame goes, not the globally
        # more sheddable best-effort frame of the other tenant.
        assert mine.future.done() and not other.future.done()

    def test_shed_class_drops_every_queued_best_effort(self, quiet_ingestor):
        ingestor, _ = quiet_ingestor
        victims = [
            park(ingestor, t, f"be-{t}", ServiceClass.BEST_EFFORT, at=i)
            for i, t in enumerate(["a", "a", "b"])
        ]
        keeper = park(ingestor, "a", "std", ServiceClass.STANDARD, at=9.0)
        with ingestor._lock:
            dropped = ingestor._shed_class_locked(
                ServiceClass.BEST_EFFORT, reason="drain", ladder=False
            )
        assert dropped == 3
        errors = set()
        for victim in victims:
            with pytest.raises(ServiceOverloadedError, match="drain"):
                victim.future.result(timeout=0)
            errors.add(id(victim.future.exception()))
        assert len(errors) == 1  # one coalesced storm error, not three
        assert victims[0].future.exception().shed_count == 3
        assert not keeper.future.done()
        assert ingestor.stats.reliability.ladder_shed == 0  # ladder=False


class TestLadderEndToEnd:
    def test_storm_walks_the_ladder_and_protects_interactive(self):
        # 1 gated worker, dispatch gate 1: submissions pile up to a
        # known depth, then completions drain it one frame at a time —
        # each completion is one ladder observation at a deterministic
        # queue depth (7, 6, ... 0 against an SLO of 2).
        params, gate = gated_params()
        policy = depth_policy(
            2, climb_patience=1, descend_patience=1_000
        )
        with ToneMapService(params, batch_size=1, max_workers=1) as service:
            with ToneMapIngestor(
                service,
                max_delay_ms=0,
                queue_limit=64,
                max_inflight_batches=1,
                overload=policy,
            ) as ingestor:
                frames = [
                    ingestor.submit(image, priority="standard")
                    for image in scenes(7)
                ]
                cheap = ingestor.submit(
                    scenes(1, base=900)[0], priority="best_effort"
                )
                gate.set()
                for future in frames:
                    future.result(timeout=30)
                # Queued best-effort was dropped when the ladder hit
                # shed_best_effort (depth 6 > SLO 2 on completion #2).
                with pytest.raises(
                    ServiceOverloadedError, match="overload ladder"
                ):
                    cheap.result(timeout=30)
                # And new best-effort admissions are refused outright.
                with pytest.raises(
                    ServiceOverloadedError, match="suspended"
                ):
                    ingestor.submit(
                        scenes(1, base=901)[0], priority="best_effort"
                    )
                stats = ingestor.stats
        reliability = stats.reliability
        assert reliability.ladder_rung == LADDER_BROWNOUT
        assert reliability.ladder_transitions == 3
        assert reliability.ladder_shed == 2  # 1 dropped + 1 refused
        assert stats.tenants[0].served == 7  # standard traffic intact

    def test_slo_accepts_policy_controller_or_objective(self):
        with ToneMapService(PARAMS, batch_size=1) as service:
            slo = ServiceLevelObjective(queue_depth=4)
            for overload in (
                slo,
                OverloadPolicy(slo=slo),
                OverloadController(OverloadPolicy(slo=slo)),
            ):
                with ToneMapIngestor(service, overload=overload) as ing:
                    assert ing.stats.reliability.ladder_rung == LADDER_FULL
            with pytest.raises(ToneMapError, match="overload must be"):
                ToneMapIngestor(service, overload="degrade please")

    def test_ladder_disabled_by_default(self):
        with ToneMapService(PARAMS, batch_size=1) as service:
            with ToneMapIngestor(service) as ingestor:
                future = ingestor.submit(
                    scenes(1)[0], priority="best_effort"
                )
                future.result(timeout=30)
                assert ingestor.stats.reliability.ladder_transitions == 0


class TestServiceRungHooks:
    def test_degraded_rung_swaps_to_the_pinned_plan(self):
        images = scenes(2, size=32)
        plan = plan_for(height=32, width=32, batch=2, sigma=PARAMS.sigma)
        cheap = pinned(plan, engine="staged", blur_method="folded")
        want = BatchToneMapper(PARAMS, plan=cheap).map(images)
        with ToneMapService(PARAMS, batch_size=2, plan=plan) as service:
            service.apply_overload_rung(LADDER_DEGRADED)
            got = service.run_batch(images)
            # Degraded output is the pinned plan's output, bit for bit.
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g.pixels, w.pixels)
            service.apply_overload_rung(LADDER_FULL)
            restored = service.run_batch(images)
        full = BatchToneMapper(PARAMS, plan=plan).map(images)
        for g, w in zip(restored, full):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_unplanned_service_degrades_to_a_noop(self):
        images = scenes(2)
        want = BatchToneMapper(PARAMS).map(images)
        with ToneMapService(PARAMS, batch_size=2) as service:
            service.apply_overload_rung(LADDER_DEGRADED)
            got = service.run_batch(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_unknown_rung_raises(self):
        with ToneMapService(PARAMS, batch_size=1) as service:
            with pytest.raises(ToneMapError, match="unknown ladder rung"):
                service.apply_overload_rung("panic")

    def test_brownout_rung_bypasses_the_shard_pool(self):
        images = scenes(2, size=16)
        with ToneMapService(
            PARAMS, batch_size=2, shards=1, arena_slots=2
        ) as service:
            healthy = service.run_batch(images)
            before = service.stats.reliability.brownout_batches
            service.apply_overload_rung(LADDER_BROWNOUT)
            browned = service.run_batch(images)
            after = service.stats.reliability.brownout_batches
            service.apply_overload_rung(LADDER_FULL)
        assert after == before + 1
        # Brownout trades throughput, never correctness.
        for g, w in zip(browned, healthy):
            np.testing.assert_array_equal(g.pixels, w.pixels)
