"""Tests for repro.experiments: Table II, Figs. 5-8, workload, charts.

Shape assertions follow DESIGN.md's per-experiment criteria.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import (
    PAPER_ENERGY,
    PAPER_TABLE2,
    make_paper_flow,
    paper_workload,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table2,
)
from repro.experiments.ascii_chart import horizontal_bar_chart, simple_bar_chart
from repro.power.rails import Rail

FLOW = make_paper_flow()
TABLE2 = run_table2(FLOW)
FIG6 = run_fig6(FLOW)
FIG7 = run_fig7(FLOW)
FIG8 = run_fig8(FLOW)


class TestWorkload:
    def test_paper_size(self):
        workload = paper_workload()
        assert workload.image.width == 1024
        assert workload.image.height == 1024
        assert workload.geometry.taps == 57

    def test_scaled_workload(self):
        workload = paper_workload(size=128)
        assert workload.image.width == 128
        assert workload.geometry.taps <= 2 * (128 // 8) + 1

    def test_params_match_geometry(self):
        workload = paper_workload()
        kernel = workload.params.kernel()
        assert kernel.radius == workload.geometry.radius


class TestTable2:
    def test_all_rows_present(self):
        assert [row.key for row in TABLE2.rows] == list(PAPER_TABLE2)

    def test_paper_columns_attached(self):
        row = TABLE2.row("sw")
        assert row.paper_blur_seconds == 7.29
        assert row.paper_total_seconds == 26.66

    def test_every_row_within_3x_of_paper(self):
        # Shape criterion: same order of magnitude everywhere.
        for row in TABLE2.rows:
            assert 1 / 3 < row.blur_ratio < 3, row.key
            assert 1 / 3 < row.total_ratio < 3, row.key

    def test_headline_metrics(self):
        assert TABLE2.blur_speedup >= 10.0
        assert TABLE2.naive_slowdown >= 5.0

    def test_render(self):
        text = TABLE2.render()
        assert "TABLE II" in text
        assert "FlP to FxP conversion" in text
        assert "speed-up" in text


class TestFig5Quality:
    # Computed once at a reduced-but-meaningful size (timing-independent).
    QUALITY = run_fig5(paper_workload(size=256))

    def test_psnr_band(self):
        # Paper: 66 dB; criterion: >= 50 dB (lossy-compression class).
        assert self.QUALITY.psnr_db >= 50.0
        assert self.QUALITY.psnr_db <= 90.0  # must not be exact either

    def test_ssim_near_one(self):
        # Paper: SSIM = 1 (at its reported precision).
        assert self.QUALITY.ssim >= 0.99

    def test_outputs_differ_bitwise(self):
        # FxP and FlP must NOT be identical — the comparison is real.
        assert not np.array_equal(
            self.QUALITY.float_output.pixels, self.QUALITY.fixed_output.pixels
        )

    def test_outputs_are_displayable(self):
        assert self.QUALITY.float_output.max_value <= 1.0
        assert self.QUALITY.fixed_output.max_value <= 1.0

    def test_image_files_written(self, tmp_path):
        run_fig5(paper_workload(size=64), output_dir=tmp_path)
        assert (tmp_path / "fig5a_input.pfm").exists()
        assert (tmp_path / "fig5b_float.ppm").exists()
        assert (tmp_path / "fig5c_fixed.ppm").exists()

    def test_render(self):
        text = self.QUALITY.render()
        assert "PSNR" in text and "SSIM" in text


class TestFig6:
    def test_marked_hw_omitted(self):
        # "omitting the Marked HW function which is not relevant".
        assert [b.key for b in FIG6.bars] == ["sw", "sequential", "pragmas", "fxp"]

    def test_sw_has_no_pl_time(self):
        assert FIG6.bar("sw").pl_seconds == 0.0

    def test_accelerated_have_pl_time(self):
        for key in ("sequential", "pragmas", "fxp"):
            assert FIG6.bar(key).pl_seconds > 0.0, key

    def test_ps_time_roughly_constant_for_accelerated(self):
        # The PS-side remainder is the same work in every accelerated
        # implementation (the SW bar's PS time also contains the blur).
        ps = [FIG6.bar(k).ps_seconds for k in ("sequential", "pragmas", "fxp")]
        assert max(ps) / min(ps) < 1.3
        # And it approximates the SW total minus the SW blur.
        remainder = TABLE2.row("sw").total_seconds - TABLE2.row("sw").blur_seconds
        assert ps[1] == pytest.approx(remainder, rel=0.1)

    def test_totals_match_table2(self):
        for bar in FIG6.bars:
            assert bar.total_seconds == pytest.approx(
                TABLE2.row(bar.key).total_seconds, rel=1e-6
            )

    def test_render(self):
        text = FIG6.render()
        assert "FIG 6" in text
        assert "PS" in text and "PL" in text


class TestFig7:
    def test_energy_reduction_band(self):
        # Paper: 23%; criterion band 10-40%.
        assert 0.10 <= FIG7.energy_reduction <= 0.40

    def test_sw_total_near_calibration_anchor(self):
        assert FIG7.bar("sw").total_joules == pytest.approx(
            PAPER_ENERGY["sw_total_j"], rel=0.10
        )

    def test_fxp_total_near_paper(self):
        assert FIG7.bar("fxp").total_joules == pytest.approx(
            PAPER_ENERGY["fxp_total_j"], rel=0.15
        )

    def test_all_rails_present(self):
        for bar in FIG7.bars:
            assert set(bar.rail_joules) == set(Rail)

    def test_sequential_is_most_expensive(self):
        # Longest run + active fabric: the energy peak of Fig. 7.
        seq = FIG7.bar("sequential").total_joules
        for key in ("sw", "pragmas", "fxp"):
            assert seq > FIG7.bar(key).total_joules

    def test_ps_is_largest_rail(self):
        for bar in FIG7.bars:
            assert bar.rail_joules[Rail.PS] == max(bar.rail_joules.values())

    def test_render(self):
        text = FIG7.render()
        assert "FIG 7" in text and "reduction" in text


class TestFig8:
    def test_ps_terms_shrink_with_faster_totals(self):
        # Paper: "shorter execution times allows to reduce both the
        # bottomline and the execution overhead" (PS panel).
        sw = FIG8.bar(Rail.PS, "sw")
        fxp = FIG8.bar(Rail.PS, "fxp")
        assert fxp.bottomline_j < sw.bottomline_j
        assert fxp.overhead_j < sw.overhead_j

    def test_pl_bottomline_grows_with_configured_logic(self):
        # Paper: PL bottomline grows from SW to the accelerated designs.
        sw = FIG8.bar(Rail.PL, "sw").bottomline_j
        for key in ("sequential", "pragmas", "fxp"):
            assert FIG8.bar(Rail.PL, key).bottomline_j > sw, key

    def test_pl_overhead_shrinks_after_first_accelerator(self):
        # Paper: "the execution overhead decreases thanks to the very
        # short execution times".
        seq = FIG8.bar(Rail.PL, "sequential").overhead_j
        pragmas = FIG8.bar(Rail.PL, "pragmas").overhead_j
        fxp = FIG8.bar(Rail.PL, "fxp").overhead_j
        assert seq > pragmas > fxp

    def test_sw_has_no_pl_overhead(self):
        assert FIG8.bar(Rail.PL, "sw").overhead_j == 0.0

    def test_panels_consistent_with_fig7(self):
        for key in ("sw", "fxp"):
            fig8_total = (
                FIG8.bar(Rail.PS, key).total_j + FIG8.bar(Rail.PL, key).total_j
            )
            fig7_partial = (
                FIG7.bar(key).rail_joules[Rail.PS]
                + FIG7.bar(key).rail_joules[Rail.PL]
            )
            assert fig8_total == pytest.approx(fig7_partial, rel=0.02)

    def test_render(self):
        text = FIG8.render()
        assert "FIG 8a" in text and "FIG 8b" in text


class TestAsciiChart:
    def test_stacked_chart(self):
        text = horizontal_bar_chart(
            [("a", {"x": 1.0, "y": 2.0}), ("b", {"x": 0.5, "y": 0.5})],
            unit="s",
            title="T",
        )
        assert "T" in text and "a" in text and "3.000 s" in text

    def test_simple_chart(self):
        text = simple_bar_chart([("a", 1.0), ("b", 2.0)], unit="J")
        assert "a" in text and "2.000 J" in text

    def test_inconsistent_segments_rejected(self):
        with pytest.raises(ReproError):
            horizontal_bar_chart(
                [("a", {"x": 1.0}), ("b", {"y": 1.0})], unit="s"
            )

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            horizontal_bar_chart([("a", {"x": -1.0})], unit="s")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            horizontal_bar_chart([], unit="s")
