"""Tests for repro.image.pfm and repro.image.ppm (file I/O)."""

import numpy as np
import pytest

from repro.errors import ImageFormatError
from repro.image import (
    HDRImage,
    read_pfm,
    read_ppm,
    to_8bit,
    write_pfm,
    write_pgm,
    write_ppm,
)


def rgb_image(h=6, w=5):
    rng = np.random.default_rng(42)
    return HDRImage(rng.uniform(0, 100, (h, w, 3)).astype(np.float32), name="rgb")


def gray_image(h=6, w=5):
    rng = np.random.default_rng(43)
    return HDRImage(rng.uniform(0, 100, (h, w)).astype(np.float32), name="gray")


class TestPfmRoundtrip:
    def test_rgb_roundtrip_exact(self, tmp_path):
        img = rgb_image()
        path = tmp_path / "a.pfm"
        write_pfm(img, path)
        back = read_pfm(path)
        np.testing.assert_array_equal(back.pixels, img.pixels)
        assert back.is_color

    def test_gray_roundtrip_exact(self, tmp_path):
        img = gray_image()
        path = tmp_path / "g.pfm"
        write_pfm(img, path)
        back = read_pfm(path)
        np.testing.assert_array_equal(back.pixels, img.pixels)
        assert not back.is_color

    def test_orientation_preserved(self, tmp_path):
        # A gradient that differs top vs bottom catches flipud mistakes.
        px = np.zeros((4, 3), dtype=np.float32)
        px[0, :] = 7.0  # top row bright
        img = HDRImage(px)
        path = tmp_path / "o.pfm"
        write_pfm(img, path)
        back = read_pfm(path)
        assert back.pixels[0, 0] == 7.0
        assert back.pixels[3, 0] == 0.0

    def test_name_from_stem(self, tmp_path):
        path = tmp_path / "scene_x.pfm"
        write_pfm(gray_image(), path)
        assert read_pfm(path).name == "scene_x"

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "f.pfm"
        write_pfm(gray_image(), path)
        assert read_pfm(path, name="custom").name == "custom"

    def test_big_endian_scale(self, tmp_path):
        # Hand-write a big-endian file (positive scale).
        path = tmp_path / "be.pfm"
        data = np.arange(6, dtype=">f4").reshape(2, 3)
        with open(path, "wb") as fh:
            fh.write(b"Pf\n3 2\n1.0\n")
            fh.write(np.flipud(data).tobytes())
        back = read_pfm(path)
        np.testing.assert_array_equal(back.pixels, data.astype(np.float32))

    def test_scale_magnitude_applied(self, tmp_path):
        path = tmp_path / "s.pfm"
        data = np.ones((2, 2), dtype="<f4")
        with open(path, "wb") as fh:
            fh.write(b"Pf\n2 2\n-2.5\n")
            fh.write(data.tobytes())
        back = read_pfm(path)
        np.testing.assert_allclose(back.pixels, 2.5)


class TestPfmErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pfm"
        path.write_bytes(b"P6\n1 1\n255\n\x00\x00\x00")
        with pytest.raises(ImageFormatError, match="magic"):
            read_pfm(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "t.pfm"
        path.write_bytes(b"Pf\n4 4\n-1.0\n" + b"\x00" * 10)
        with pytest.raises(ImageFormatError, match="truncated"):
            read_pfm(path)

    def test_zero_scale(self, tmp_path):
        path = tmp_path / "z.pfm"
        path.write_bytes(b"Pf\n1 1\n0.0\n" + b"\x00" * 4)
        with pytest.raises(ImageFormatError, match="scale"):
            read_pfm(path)

    def test_bad_dimensions(self, tmp_path):
        path = tmp_path / "d.pfm"
        path.write_bytes(b"Pf\n0 4\n-1.0\n")
        with pytest.raises(ImageFormatError):
            read_pfm(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "m.pfm"
        path.write_bytes(b"Pf\nxx yy\n-1.0\n")
        with pytest.raises(ImageFormatError):
            read_pfm(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.pfm"
        path.write_bytes(b"")
        with pytest.raises(ImageFormatError):
            read_pfm(path)


class TestTo8Bit:
    def test_unit_range(self):
        out = to_8bit(np.array([0.0, 0.5, 1.0]))
        np.testing.assert_array_equal(out, [0, 128, 255])

    def test_clipping(self):
        out = to_8bit(np.array([-0.5, 2.0]))
        np.testing.assert_array_equal(out, [0, 255])

    def test_rescale_mode(self):
        out = to_8bit(np.array([0.0, 5.0, 10.0]), assume_unit_range=False)
        np.testing.assert_array_equal(out, [0, 128, 255])


class TestPpmRoundtrip:
    def test_ppm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        px = rng.integers(0, 256, (5, 7, 3), dtype=np.uint8)
        path = tmp_path / "img.ppm"
        write_ppm(px, path)
        np.testing.assert_array_equal(read_ppm(path), px)

    def test_pgm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(2)
        px = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        path = tmp_path / "img.pgm"
        write_pgm(px, path)
        np.testing.assert_array_equal(read_ppm(path), px)

    def test_float_input_converted(self, tmp_path):
        path = tmp_path / "f.ppm"
        write_ppm(np.ones((2, 2, 3)) * 0.5, path)
        np.testing.assert_array_equal(read_ppm(path), 128)

    def test_gray_promoted_to_rgb(self, tmp_path):
        path = tmp_path / "p.ppm"
        write_ppm(np.ones((2, 2)), path)
        out = read_ppm(path)
        assert out.shape == (2, 2, 3)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 1\n255\n\x01\x02")
        np.testing.assert_array_equal(read_ppm(path), [[1, 2]])

    def test_bad_maxval(self, tmp_path):
        path = tmp_path / "m.pgm"
        path.write_bytes(b"P5\n1 1\n65535\n\x00\x00")
        with pytest.raises(ImageFormatError, match="maxval"):
            read_ppm(path)

    def test_wrong_dtype_rejected(self, tmp_path):
        with pytest.raises(ImageFormatError):
            write_ppm(np.ones((2, 2, 3), dtype=np.int32), tmp_path / "x.ppm")
