"""Tests for repro.hls.resources, repro.hls.report and repro.hls.synthesis."""

import pytest

from repro.errors import HlsError, ResourceError
from repro.hls import (
    AccessKind,
    ArrayDecl,
    ArrayPartitionPragma,
    Kernel,
    KernelArg,
    Loop,
    MemAccess,
    OpKind,
    PartitionKind,
    PipelinePragma,
    ResourceUsage,
    Statement,
    Storage,
    estimate_resources,
    schedule_kernel,
    synthesize,
)
from repro.hls.resources import BRAM18_BITS


def small_kernel(taps=8, fixed=False):
    mul = OpKind.MUL if fixed else OpKind.FMUL
    add = OpKind.ADD if fixed else OpKind.FADD
    return Kernel(
        name="small",
        args=[KernelArg("x", AccessKind.READ, 256, 32)],
        arrays=[ArrayDecl("buf", 256, 32)],
        loops=[
            Loop(
                "pixels",
                trip_count=256,
                subloops=[
                    Loop(
                        "taps",
                        trip_count=taps,
                        statements=[
                            Statement(
                                "mac",
                                chain=(OpKind.LOAD, mul, add),
                                accesses=(MemAccess("buf", AccessKind.READ),),
                            )
                        ],
                    )
                ],
            )
        ],
    )


class TestResourceUsage:
    def test_add(self):
        a = ResourceUsage(lut=10, ff=20, dsp=1, bram18=2)
        b = ResourceUsage(lut=5, ff=5, dsp=1, bram18=0)
        c = a + b
        assert (c.lut, c.ff, c.dsp, c.bram18) == (15, 25, 2, 2)

    def test_fits(self):
        small = ResourceUsage(lut=10, ff=10, dsp=1, bram18=1)
        big = ResourceUsage(lut=100, ff=100, dsp=10, bram18=10)
        assert small.fits(big)
        assert not big.fits(small)

    def test_utilization(self):
        used = ResourceUsage(lut=50, ff=25, dsp=5, bram18=2)
        limits = ResourceUsage(lut=100, ff=100, dsp=10, bram18=4)
        util = used.utilization(limits)
        assert util["LUT"] == pytest.approx(0.5)
        assert util["BRAM18"] == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(HlsError):
            ResourceUsage(lut=-1)


class TestEstimateResources:
    def test_bram_from_array_size(self):
        kernel = small_kernel()
        sched = schedule_kernel(kernel)
        res = estimate_resources(kernel, sched)
        expected_bram = max(1, -(-256 * 32 // BRAM18_BITS))
        assert res.bram18 >= expected_bram

    def test_partitioned_array_uses_more_brams(self):
        from repro.hls import apply_pragmas

        base = small_kernel()
        parted = apply_pragmas(
            base, [ArrayPartitionPragma("buf", PartitionKind.CYCLIC, 8)]
        )
        res_base = estimate_resources(base, schedule_kernel(base))
        res_part = estimate_resources(parted, schedule_kernel(parted))
        assert res_part.bram18 > res_base.bram18

    def test_complete_partition_uses_ff_not_bram(self):
        from repro.hls import apply_pragmas

        parted = apply_pragmas(
            small_kernel(), [ArrayPartitionPragma("buf", PartitionKind.COMPLETE)]
        )
        res = estimate_resources(parted, schedule_kernel(parted))
        base = estimate_resources(small_kernel(), schedule_kernel(small_kernel()))
        assert res.ff > base.ff

    def test_pipelining_replicates_operators(self):
        # At II=1 the unrolled tap MACs each need an operator instance.
        base = small_kernel(fixed=True)
        sched_base = schedule_kernel(base)
        from repro.hls import apply_pragmas

        piped = apply_pragmas(
            base,
            [
                PipelinePragma("pixels"),
                ArrayPartitionPragma("buf", PartitionKind.COMPLETE),
            ],
        )
        sched_piped = schedule_kernel(piped)
        res_base = estimate_resources(base, sched_base)
        res_piped = estimate_resources(piped, sched_piped)
        assert res_piped.dsp > res_base.dsp

    def test_fixed_point_cheaper_than_float(self):
        flt = small_kernel(fixed=False)
        fxp = small_kernel(fixed=True)
        res_flt = estimate_resources(flt, schedule_kernel(flt))
        res_fxp = estimate_resources(fxp, schedule_kernel(fxp))
        assert res_fxp.dsp <= res_flt.dsp
        assert res_fxp.lut < res_flt.lut


class TestSynthesize:
    def test_design_latency_conversion(self):
        design = synthesize(small_kernel(), clock_mhz=100)
        assert design.latency_seconds == pytest.approx(
            design.total_cycles * 1e-8
        )

    def test_loop_ii_accessor(self):
        from repro.hls import apply_pragmas  # noqa: F401  (API surface)

        design = synthesize(
            small_kernel(fixed=True),
            pragmas=[PipelinePragma("taps")],
        )
        assert design.loop_ii("taps") == 1

    def test_invalid_clock(self):
        with pytest.raises(HlsError):
            synthesize(small_kernel(), clock_mhz=0)

    def test_device_fit_enforced(self):
        tiny = ResourceUsage(lut=10, ff=10, dsp=0, bram18=0)
        with pytest.raises(ResourceError, match="does not fit"):
            synthesize(small_kernel(), device_limits=tiny)

    def test_fit_passes_on_large_device(self):
        from repro.platform import ZYNQ_7020

        design = synthesize(small_kernel(), device_limits=ZYNQ_7020.limits)
        assert design.resources.fits(ZYNQ_7020.limits)


class TestReport:
    def test_report_contains_sections(self):
        design = synthesize(
            small_kernel(),
            pragmas=[PipelinePragma("pixels")],
        )
        text = design.report()
        assert "HLS Report: small" in text
        assert "Loop summary" in text
        assert "Resource estimate" in text
        assert "pixels" in text

    def test_report_explains_ii_bottleneck(self):
        design = synthesize(
            small_kernel(),  # float MACs, unpartitioned BRAM
            pragmas=[PipelinePragma("pixels")],
        )
        text = design.report()
        assert "II bottleneck" in text
        assert "limited by" in text
