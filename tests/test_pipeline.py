"""Tests for repro.tonemap.pipeline and repro.tonemap.operators."""

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.image import HDRImage, SceneParams, window_interior_scene
from repro.tonemap import (
    GLOBAL_OPERATORS,
    AdjustParams,
    GaussianKernel,
    MaskingParams,
    ToneMapParams,
    ToneMapper,
    gamma_operator,
    log_operator,
    reinhard_global,
    tone_map,
)

SCENE = window_interior_scene(SceneParams(height=96, width=96))


class TestToneMapParams:
    def test_default_kernel(self):
        params = ToneMapParams(sigma=4.0)
        k = params.kernel()
        assert k.sigma == 4.0
        assert k.radius == 12

    def test_explicit_radius(self):
        params = ToneMapParams(sigma=4.0, radius=5)
        assert params.kernel().taps == 11


class TestToneMapper:
    def test_stages_present(self):
        result = ToneMapper(ToneMapParams(sigma=4.0)).run(SCENE)
        stages = result.stages
        assert set(stages) == {"source", "normalized", "mask", "masked", "output"}

    def test_output_unit_range(self):
        result = ToneMapper(ToneMapParams(sigma=4.0)).run(SCENE)
        assert result.output.min_value >= 0.0
        assert result.output.max_value <= 1.0

    def test_normalized_stage_peak_one(self):
        result = ToneMapper(ToneMapParams(sigma=4.0)).run(SCENE)
        assert result.normalized.max_value == pytest.approx(1.0)

    def test_mask_is_blurred_luminance(self):
        mapper = ToneMapper(ToneMapParams(sigma=4.0))
        result = mapper.run(SCENE)
        from repro.tonemap import separable_blur

        expected = separable_blur(result.normalized.luminance(), mapper.kernel)
        np.testing.assert_allclose(result.mask, np.clip(expected, 0, 1))

    def test_dark_zones_brighter_bright_zones_darker(self):
        # The paper's headline behaviour (section II).
        result = ToneMapper(
            ToneMapParams(sigma=4.0, adjust=AdjustParams())  # identity step 4
        ).run(SCENE)
        norm = np.asarray(result.normalized.pixels, dtype=np.float64)
        out = np.asarray(result.output.pixels, dtype=np.float64)
        dark = (norm > 1e-4) & (norm < 0.05)
        bright = norm > 0.6
        assert out[dark].mean() > norm[dark].mean()
        assert out[bright].mean() < norm[bright].mean()

    def test_contrast_ratio_reduced(self):
        # Tone mapping compresses dynamic range toward the display's.
        result = ToneMapper(
            ToneMapParams(sigma=4.0, adjust=AdjustParams())
        ).run(SCENE)
        norm_lum = result.normalized.luminance()
        out_lum = result.output.luminance()
        floor = 1e-6
        ratio_in = norm_lum.max() / max(np.percentile(norm_lum, 5.0), floor)
        ratio_out = out_lum.max() / max(np.percentile(out_lum, 5.0), floor)
        assert ratio_out < ratio_in

    def test_custom_blur_fn_invoked(self):
        calls = []

        def fake_blur(plane, kernel):
            calls.append(kernel.taps)
            return np.full_like(plane, 0.5)

        result = ToneMapper(ToneMapParams(sigma=4.0, blur_fn=fake_blur)).run(SCENE)
        assert calls, "blur_fn was not invoked"
        np.testing.assert_allclose(result.mask, 0.5)

    def test_zero_strength_identity_up_to_adjust(self):
        params = ToneMapParams(
            sigma=4.0,
            masking=MaskingParams(strength=0.0),
            adjust=AdjustParams(),  # identity
        )
        result = ToneMapper(params).run(SCENE)
        np.testing.assert_allclose(
            np.asarray(result.output.pixels),
            np.asarray(result.normalized.pixels),
            atol=1e-6,
        )

    def test_gray_image_supported(self):
        gray = HDRImage(SCENE.luminance().astype(np.float32), name="gray")
        result = ToneMapper(ToneMapParams(sigma=4.0)).run(gray)
        assert not result.output.is_color

    def test_non_image_rejected(self):
        with pytest.raises(ToneMapError):
            ToneMapper().run(np.ones((4, 4)))

    def test_tone_map_convenience(self):
        out = tone_map(SCENE, ToneMapParams(sigma=4.0))
        assert isinstance(out, HDRImage)
        assert out.max_value <= 1.0

    def test_deterministic(self):
        a = tone_map(SCENE, ToneMapParams(sigma=4.0))
        b = tone_map(SCENE, ToneMapParams(sigma=4.0))
        assert a == b


class TestGlobalOperators:
    @pytest.mark.parametrize("name", sorted(GLOBAL_OPERATORS))
    def test_unit_range_output(self, name):
        out = GLOBAL_OPERATORS[name](SCENE)
        assert out.min_value >= 0.0
        assert out.max_value <= 1.0

    def test_gamma_brightens_midtones(self):
        img = HDRImage(np.full((4, 4), 0.25, dtype=np.float32))
        out = gamma_operator(img, gamma=2.2)
        assert out.pixels[0, 0] > 0.25

    def test_gamma_invalid(self):
        with pytest.raises(ToneMapError):
            gamma_operator(SCENE, gamma=0.0)

    def test_log_monotone(self):
        img = HDRImage(np.array([[1.0, 10.0, 100.0]], dtype=np.float32))
        out = log_operator(img)
        vals = out.pixels[0]
        assert vals[0] < vals[1] < vals[2]

    def test_log_invalid_scale(self):
        with pytest.raises(ToneMapError):
            log_operator(SCENE, scale=-2.0)

    def test_log_black_image(self):
        img = HDRImage(np.zeros((4, 4), dtype=np.float32))
        out = log_operator(img)
        assert out.max_value == 0.0

    def test_reinhard_compresses_highlights(self):
        # On gray input, output equals compressed luminance: L/(1+L) < 1.
        gray = HDRImage(SCENE.luminance().astype(np.float32), name="gray")
        out = reinhard_global(gray)
        assert out.max_value < 1.0
        # Color output is clipped to the displayable range.
        assert reinhard_global(SCENE).max_value <= 1.0

    def test_reinhard_black_image(self):
        img = HDRImage(np.zeros((4, 4), dtype=np.float32))
        assert reinhard_global(img).max_value == 0.0

    def test_reinhard_invalid_key(self):
        with pytest.raises(ToneMapError):
            reinhard_global(SCENE, key=0.0)

    def test_global_cannot_hold_both_ends_like_local_does(self):
        # The paper's motivation: a global curve lifts shadows only by
        # also lifting everything else.  Verify the local operator keeps
        # highlight detail (contrast inside the bright window region)
        # better than the log operator at equal shadow lift.
        local = ToneMapper(ToneMapParams(sigma=4.0, adjust=AdjustParams())).run(SCENE)
        global_out = log_operator(SCENE)
        lum = SCENE.luminance()
        bright = lum > 0.5 * lum.max()
        local_contrast = np.std(local.output.luminance()[bright])
        global_contrast = np.std(global_out.luminance()[bright])
        assert local_contrast > global_contrast
