"""Tests for repro.hls.ir (kernel IR)."""

import pytest

from repro.errors import HlsError
from repro.hls import (
    AccessKind,
    AccessPattern,
    ArrayDecl,
    CarriedDependence,
    Kernel,
    KernelArg,
    Loop,
    MemAccess,
    OpKind,
    Statement,
    Storage,
)


def simple_kernel():
    return Kernel(
        name="k",
        args=[KernelArg("a", AccessKind.READ, 64, 32)],
        arrays=[ArrayDecl("buf", 64, 32)],
        loops=[
            Loop(
                "outer",
                trip_count=8,
                statements=[
                    Statement(
                        "s",
                        chain=(OpKind.LOAD, OpKind.ADD),
                        accesses=(MemAccess("buf", AccessKind.READ),),
                    )
                ],
                subloops=[Loop("inner", trip_count=4)],
            )
        ],
    )


class TestArrayDecl:
    def test_total_bits(self):
        assert ArrayDecl("a", 128, 16).total_bits == 2048

    def test_bram_ports(self):
        assert ArrayDecl("a", 64, 32).ports_per_cycle == 2

    def test_partitioned_ports_multiply(self):
        assert ArrayDecl("a", 64, 32, partition_factor=4).ports_per_cycle == 8

    def test_registers_unlimited(self):
        decl = ArrayDecl("a", 8, 32, storage=Storage.REGISTERS)
        assert decl.ports_per_cycle == float("inf")

    def test_stream_single_port(self):
        assert ArrayDecl("a", 64, 32, storage=Storage.STREAM).ports_per_cycle == 1

    def test_word_packing_doubles_16bit_ports(self):
        # The paper's FxP gain: two 16-bit pixels per 32-bit BRAM word.
        packed = ArrayDecl("a", 64, 16, word_packed=True)
        assert packed.packing_factor == 2
        assert packed.ports_per_cycle == 4

    def test_word_packing_noop_for_32bit(self):
        assert ArrayDecl("a", 64, 32, word_packed=True).packing_factor == 1

    def test_word_packing_ignored_for_registers(self):
        decl = ArrayDecl("a", 8, 16, storage=Storage.REGISTERS, word_packed=True)
        assert decl.packing_factor == 1

    def test_invalid_depth(self):
        with pytest.raises(HlsError):
            ArrayDecl("a", 0, 32)

    def test_invalid_partition(self):
        with pytest.raises(HlsError):
            ArrayDecl("a", 8, 32, partition_factor=0)


class TestStatement:
    def test_chain_implies_ops(self):
        stmt = Statement("s", chain=(OpKind.LOAD, OpKind.FMUL, OpKind.FADD))
        assert stmt.ops == {OpKind.LOAD: 1, OpKind.FMUL: 1, OpKind.FADD: 1}

    def test_explicit_ops_kept(self):
        stmt = Statement(
            "s", chain=(OpKind.FADD,), ops={OpKind.FADD: 3, OpKind.LOAD: 2}
        )
        assert stmt.ops[OpKind.FADD] == 3

    def test_scaled(self):
        stmt = Statement(
            "s",
            chain=(OpKind.FADD,),
            ops={OpKind.FADD: 2},
            accesses=(MemAccess("buf", AccessKind.READ, count=3),),
        )
        scaled = stmt.scaled(4)
        assert scaled.ops[OpKind.FADD] == 8
        assert scaled.accesses[0].count == 12
        # Original untouched; factor 1 returns self.
        assert stmt.ops[OpKind.FADD] == 2
        assert stmt.scaled(1) is stmt

    def test_negative_count_rejected(self):
        with pytest.raises(HlsError):
            Statement("s", ops={OpKind.ADD: -1})

    def test_carried_dependence_validation(self):
        with pytest.raises(HlsError):
            CarriedDependence(0, (OpKind.FADD,))
        with pytest.raises(HlsError):
            CarriedDependence(1, ())


class TestLoop:
    def test_walk_order(self):
        kernel = simple_kernel()
        names = [l.name for l in kernel.loops[0].walk()]
        assert names == ["outer", "inner"]

    def test_find(self):
        kernel = simple_kernel()
        assert kernel.find_loop("inner").trip_count == 4
        with pytest.raises(HlsError):
            kernel.find_loop("nope")

    def test_copy_is_deep(self):
        kernel = simple_kernel()
        clone = kernel.copy()
        clone.find_loop("outer").pipeline = True
        assert kernel.find_loop("outer").pipeline is False

    def test_invalid_trip_count(self):
        with pytest.raises(HlsError):
            Loop("l", trip_count=0)


class TestKernel:
    def test_unknown_array_access_rejected(self):
        with pytest.raises(HlsError, match="unknown array"):
            Kernel(
                name="bad",
                args=[],
                arrays=[],
                loops=[
                    Loop(
                        "l",
                        trip_count=2,
                        statements=[
                            Statement(
                                "s",
                                accesses=(MemAccess("ghost", AccessKind.READ),),
                            )
                        ],
                    )
                ],
            )

    def test_duplicate_array_names_rejected(self):
        with pytest.raises(HlsError, match="duplicate"):
            Kernel(
                name="bad",
                args=[],
                arrays=[ArrayDecl("a", 4, 8), ArrayDecl("a", 8, 8)],
                loops=[Loop("l", trip_count=1)],
            )

    def test_no_loops_rejected(self):
        with pytest.raises(HlsError):
            Kernel(name="bad", args=[], arrays=[], loops=[])

    def test_array_lookup(self):
        kernel = simple_kernel()
        assert kernel.array("buf").depth == 64
        with pytest.raises(HlsError):
            kernel.array("nope")

    def test_replace_array(self):
        from dataclasses import replace

        kernel = simple_kernel()
        kernel.replace_array(replace(kernel.array("buf"), partition_factor=4))
        assert kernel.array("buf").partition_factor == 4


class TestKernelArg:
    def test_bytes(self):
        assert KernelArg("a", AccessKind.READ, 100, 32).bytes == 400
        assert KernelArg("a", AccessKind.READ, 100, 16).bytes == 200
        # Non-byte-aligned widths round up.
        assert KernelArg("a", AccessKind.READ, 10, 12).bytes == 20

    def test_validation(self):
        with pytest.raises(HlsError):
            KernelArg("a", AccessKind.READ, 0, 32)
