"""Tests for repro.platform.cpu and repro.platform.cache."""

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.platform import ArmCortexA9Model, CacheConfig, CacheSim, CpuCosts
from repro.platform.cache import A9_L1D, ZYNQ_L2, CacheHierarchy
from repro.platform.cpu import SwKernelTrace


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=32, ways=4)
        assert cfg.num_sets == 256

    def test_validation(self):
        with pytest.raises(PlatformError):
            CacheConfig(size_bytes=0, line_bytes=32, ways=4)
        with pytest.raises(PlatformError):
            CacheConfig(size_bytes=1024, line_bytes=33, ways=1)
        with pytest.raises(PlatformError):
            CacheConfig(size_bytes=1000, line_bytes=32, ways=4)


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        sim = CacheSim(A9_L1D)
        assert sim.access(0x1000) is False
        assert sim.access(0x1000) is True
        assert sim.access(0x1004) is True  # same line

    def test_sequential_miss_rate_is_per_line(self):
        sim = CacheSim(A9_L1D)
        stats = sim.run_trace(range(0, 8192, 4))
        # One miss per 32-byte line = 1/8 of 4-byte accesses.
        assert stats.miss_rate == pytest.approx(1 / 8, abs=0.01)

    def test_large_stride_always_misses(self):
        sim = CacheSim(A9_L1D)
        # Stride = 4096 bytes over a 1 MiB span >> 32 KiB cache.
        addresses = [(i * 4096) % (1 << 22) for i in range(4096)]
        stats = sim.run_trace(addresses)
        assert stats.miss_rate > 0.95

    def test_working_set_within_capacity_hits(self):
        sim = CacheSim(A9_L1D)
        addresses = list(range(0, 16 * 1024, 4)) * 3
        stats = sim.run_trace(addresses)
        assert stats.hit_rate > 0.9

    def test_lru_eviction(self):
        cfg = CacheConfig(size_bytes=4 * 32, line_bytes=32, ways=4)  # 1 set
        sim = CacheSim(cfg)
        for i in range(4):
            sim.access(i * 32)
        sim.access(0)           # touch line 0 (now MRU)
        sim.access(4 * 32)      # evicts LRU = line 1
        assert sim.access(0) is True
        assert sim.access(1 * 32) is False

    def test_reset(self):
        sim = CacheSim(A9_L1D)
        sim.access(0)
        sim.reset()
        assert sim.stats.accesses == 0
        assert sim.access(0) is False

    def test_negative_address_rejected(self):
        with pytest.raises(PlatformError):
            CacheSim(A9_L1D).access(-4)


class TestCacheHierarchy:
    def test_l1_hit_cheapest(self):
        h = CacheHierarchy()
        h.access_cycles(0)
        assert h.access_cycles(0) == h.l1_hit_cycles

    def test_l2_catches_l1_evictions(self):
        h = CacheHierarchy()
        # Walk 64 KiB (> L1 32K, < L2 512K) twice: second pass hits L2.
        span = list(range(0, 64 * 1024, 32))
        for addr in span:
            h.access_cycles(addr)
        costs = [h.access_cycles(a) for a in span]
        assert np.mean(costs) <= h.l2_hit_cycles + 1

    def test_average_cycles_empty_rejected(self):
        with pytest.raises(PlatformError):
            CacheHierarchy().average_cycles([])


class TestAnalyticCpuModel:
    def test_analytic_sequential_matches_simulator(self):
        # The analytic "miss per line" rule must track the simulator.
        cpu = ArmCortexA9Model()
        count = 4096
        analytic = cpu.sequential_load_cycles(count)
        sim = CacheHierarchy(
            l1_hit_cycles=int(cpu.costs.load_l1),
            l2_hit_cycles=int(cpu.costs.l2_hit_penalty),
            memory_cycles=int(cpu.costs.ddr_penalty),
        )
        simulated = sum(sim.access_cycles(i * 4) for i in range(count))
        # L2 is cold in the simulator but the analytic model assumes
        # streaming prefetch; allow 2x.
        assert analytic <= simulated <= 8 * analytic

    def test_strided_worse_than_sequential(self):
        cpu = ArmCortexA9Model()
        n = 10_000
        assert cpu.strided_load_cycles(n, 64 * 1024) > cpu.sequential_load_cycles(n)

    def test_random_worse_than_strided(self):
        cpu = ArmCortexA9Model()
        n = 10_000
        assert cpu.random_load_cycles(n) > cpu.strided_load_cycles(n, 64 * 1024)

    def test_strided_beyond_l2_pays_ddr(self):
        cpu = ArmCortexA9Model()
        in_l2 = cpu.strided_load_cycles(1000, 256 * 1024)
        beyond = cpu.strided_load_cycles(1000, 4 << 20)
        assert beyond > in_l2

    def test_trace_pricing_additive(self):
        cpu = ArmCortexA9Model()
        a = SwKernelTrace(flops=100)
        b = SwKernelTrace(pow_calls=10)
        combined = SwKernelTrace(flops=100, pow_calls=10)
        assert cpu.cycles(combined) == pytest.approx(
            cpu.cycles(a) + cpu.cycles(b)
        )

    def test_seconds_scale_with_frequency(self):
        trace = SwKernelTrace(flops=1_000_000)
        slow = ArmCortexA9Model(freq_mhz=333.0)
        fast = ArmCortexA9Model(freq_mhz=666.0)
        assert slow.seconds(trace) == pytest.approx(2 * fast.seconds(trace),
                                                    rel=1e-3)

    def test_pow_dominates_masking_style_trace(self):
        # The PS-side profile must be pow-dominated, as the flow's ~19 s
        # remainder requires.
        cpu = ArmCortexA9Model()
        trace = SwKernelTrace(pow_calls=1000, flops=3000, stores=1000)
        pow_only = SwKernelTrace(pow_calls=1000)
        assert cpu.cycles(pow_only) / cpu.cycles(trace) > 0.9

    def test_validation(self):
        with pytest.raises(PlatformError):
            CpuCosts(flop=-1.0)
        with pytest.raises(PlatformError):
            SwKernelTrace(flops=-5)
        with pytest.raises(PlatformError):
            ArmCortexA9Model(freq_mhz=0.0)
        with pytest.raises(PlatformError):
            ArmCortexA9Model().seconds_for_cycles(-1)
