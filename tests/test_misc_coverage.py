"""Coverage for the error hierarchy, reports, runner and I/O properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import errors
from repro.experiments.runner import run_all_experiments
from repro.image import HDRImage, read_pfm, read_ppm, write_pfm, write_ppm
from repro.image.pfm import roundtrip_equal


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        leaf_errors = [
            errors.FixedPointError,
            errors.BusAlignmentError,
            errors.ImageError,
            errors.ImageFormatError,
            errors.ToneMapError,
            errors.HlsError,
            errors.PragmaError,
            errors.ResourceError,
            errors.PlatformError,
            errors.DataMoverError,
            errors.PowerError,
            errors.FlowError,
            errors.CalibrationError,
        ]
        for err in leaf_errors:
            assert issubclass(err, errors.ReproError), err

    def test_subsystem_nesting(self):
        assert issubclass(errors.BusAlignmentError, errors.FixedPointError)
        assert issubclass(errors.ImageFormatError, errors.ImageError)
        assert issubclass(errors.PragmaError, errors.HlsError)
        assert issubclass(errors.ResourceError, errors.HlsError)
        assert issubclass(errors.DataMoverError, errors.PlatformError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            HDRImage(np.array([[-1.0]]))


class TestHlsReportDetails:
    def test_non_pipelined_loop_shows_dash_ii(self):
        from repro.accel import BlurGeometry, get_variant
        from repro.hls import synthesize

        geom = BlurGeometry(height=64, width=64, radius=4, sigma=2.0)
        variant = get_variant("sequential", geom)
        text = synthesize(variant.kernel, pragmas=variant.pragmas).report()
        # Non-pipelined loops display "-" in the II column.
        rows = [l for l in text.splitlines() if l.strip().startswith("pixels")]
        assert rows and " - " in rows[0] + " "

    def test_report_total_latency_line(self):
        from repro.accel import BlurGeometry, get_variant
        from repro.hls import synthesize

        geom = BlurGeometry(height=64, width=64, radius=4, sigma=2.0)
        variant = get_variant("fxp", geom)
        design = synthesize(variant.kernel, pragmas=variant.pragmas)
        assert f"{design.total_cycles} cycles" in design.report()


class TestRunner:
    def test_suite_contains_all_artifacts(self):
        suite = run_all_experiments(image_size=64)
        assert len(suite.table2.rows) == 5
        assert suite.fig5.psnr_db > 40
        assert len(suite.fig6.bars) == 4
        assert len(suite.fig7.bars) == 4
        assert len(suite.fig8.ps_bars) == 4

    def test_render_joins_sections(self):
        suite = run_all_experiments(image_size=64)
        text = suite.render()
        assert text.index("TABLE II") < text.index("FIG 5")
        assert text.index("FIG 5") < text.index("FIG 8a")


small_planes = hnp.arrays(
    dtype=np.float32,
    shape=st.tuples(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
    ),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                       width=32),
)


class TestIoProperties:
    @given(plane=small_planes)
    @settings(max_examples=60, deadline=None)
    def test_pfm_roundtrip_exact_gray(self, plane, tmp_path_factory):
        path = tmp_path_factory.mktemp("pfm") / "x.pfm"
        image = HDRImage(plane)
        assert roundtrip_equal(image, path)

    @given(plane=small_planes)
    @settings(max_examples=60, deadline=None)
    def test_pfm_roundtrip_exact_rgb(self, plane, tmp_path_factory):
        path = tmp_path_factory.mktemp("pfm") / "x.pfm"
        rgb = np.repeat(plane[:, :, None], 3, axis=2)
        image = HDRImage(rgb)
        write_pfm(image, path)
        back = read_pfm(path)
        np.testing.assert_array_equal(back.pixels, image.pixels)

    @given(
        data=hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(min_value=1, max_value=10),
                st.integers(min_value=1, max_value=10),
                st.just(3),
            ),
            elements=st.integers(min_value=0, max_value=255),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_ppm_roundtrip_exact(self, data, tmp_path_factory):
        path = tmp_path_factory.mktemp("ppm") / "x.ppm"
        write_ppm(data, path)
        np.testing.assert_array_equal(read_ppm(path), data)


class TestWorkloadEdgeCases:
    def test_tiny_workload_valid(self):
        from repro.experiments.workload import paper_workload

        workload = paper_workload(size=16)
        assert workload.geometry.taps <= 16
        assert workload.image.width == 16

    def test_custom_seed_changes_image(self):
        from repro.experiments.workload import make_paper_image

        a = make_paper_image(size=64, seed=1)
        b = make_paper_image(size=64, seed=2)
        assert a != b

    def test_blur_fn_injected_params(self):
        from repro.experiments.workload import make_paper_tonemap_params

        calls = []

        def fake_blur(plane, kernel):
            calls.append(1)
            return np.zeros_like(plane)

        params = make_paper_tonemap_params(blur_fn=fake_blur)
        assert params.blur_fn is fake_blur
