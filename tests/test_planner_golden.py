"""Golden plans: representative workloads pinned against the checked-in
reference profile (``benchmarks/reference_profile.json``).

These are snapshot tests for the *decisions*: a change to the dispatch
formulas, the band-sizing arithmetic, the partitioner, or the reference
profile's thresholds must show up here as an explicit golden diff — not
slip through as a silent scheduling change.  The cost model only ranks
candidates (it explains plans, it does not decide them), so the goldens
pin its per-workload winner but never its absolute numbers.
"""

import json
from pathlib import Path

import pytest

from repro.planner import CalibrationProfile, ExecutionPlan, Planner, Workload

REFERENCE_PROFILE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "reference_profile.json"
)

#: (workload kwargs, expected decision, expected cheapest cost candidate).
#: Thread counts are explicit so partitions cannot drift with host CPUs.
GOLDEN = [
    (
        # The paper's 1080p sigma-16 workload: wide kernel, staged FFT.
        dict(height=1080, width=1920, batch=4, sigma=16.0, threads=4),
        dict(
            engine="staged", blur_method="fft", fused_h_method="fft",
            band_bytes=4194304, band_rows=48, partitions=4,
        ),
        "staged-fft",
    ),
    (
        # Narrow kernel, cache-resident plane: fused folded end to end.
        dict(height=512, width=512, batch=1, sigma=2.0, radius=6, threads=2),
        dict(
            engine="fused", blur_method="folded", fused_h_method="folded",
            band_bytes=4194304, band_rows=102, partitions=2,
        ),
        "fused-folded",
    ),
    (
        # Exactly at tiled_min_plane_bytes (8 MiB plane): tiled blur.
        dict(height=1024, width=1024, batch=2, sigma=2.5, radius=8, threads=2),
        dict(
            engine="fused", blur_method="tiled", fused_h_method="folded",
            band_bytes=4194304, band_rows=51, partitions=2,
        ),
        "fused-folded",
    ),
    (
        # At the staged FFT crossover (25 taps) but below the fused
        # band-FFT crossover: fused engine keeps its folded window.
        dict(height=64, width=64, batch=1, sigma=4.0, threads=1),
        dict(
            engine="fused", blur_method="fft", fused_h_method="folded",
            band_bytes=4194304, band_rows=64, partitions=1,
        ),
        "fused-folded",
    ),
    (
        # Fixed-point is staged regardless of kernel width.
        dict(
            height=1080, width=1920, batch=4, sigma=16.0, dtype="fixed",
            threads=4,
        ),
        dict(
            engine="staged", blur_method="fft", fused_h_method="fft",
            band_bytes=4194304, band_rows=48, partitions=4,
        ),
        "staged-fft",
    ),
    (
        # Color 720p, narrow kernel: the 3-channel band working set
        # shrinks band_rows but not the decisions.
        dict(
            height=720, width=1280, batch=2, sigma=3.0, radius=10,
            color=True, threads=3,
        ),
        dict(
            engine="fused", blur_method="folded", fused_h_method="folded",
            band_bytes=4194304, band_rows=25, partitions=3,
        ),
        "fused-folded",
    ),
]


@pytest.fixture(scope="module")
def reference_planner():
    return Planner(CalibrationProfile.load(REFERENCE_PROFILE))


def _ids():
    return [
        f"{kw['height']}x{kw['width']}-{kw.get('dtype', 'float32')}"
        f"-r{Workload(**kw).effective_radius}"
        for kw, _, _ in GOLDEN
    ]


class TestGoldenPlans:
    @pytest.mark.parametrize("kwargs,decision,cheapest", GOLDEN, ids=_ids())
    def test_plan_matches_golden(
        self, reference_planner, kwargs, decision, cheapest
    ):
        plan = reference_planner.plan(Workload(**kwargs))
        assert plan.decision() == decision
        assert plan.cost_estimates[0][0] == cheapest
        assert plan.profile.source == str(REFERENCE_PROFILE)

    @pytest.mark.parametrize("kwargs,decision,cheapest", GOLDEN, ids=_ids())
    def test_plan_survives_json_round_trip(
        self, reference_planner, kwargs, decision, cheapest
    ):
        plan = reference_planner.plan(Workload(**kwargs))
        restored = ExecutionPlan.from_json_dict(
            json.loads(json.dumps(plan.to_json_dict()))
        )
        assert restored == plan
        assert restored.decision() == decision


class TestReferenceProfileFile:
    """The checked-in file itself is load-bearing — pin its contents."""

    def test_reference_profile_matches_builtin_defaults(self):
        profile = CalibrationProfile.load(REFERENCE_PROFILE)
        defaults = CalibrationProfile()
        assert profile.fft_crossover_taps == defaults.fft_crossover_taps
        assert profile.tiled_min_plane_bytes == defaults.tiled_min_plane_bytes
        assert profile.fused_fft_min_taps == defaults.fused_fft_min_taps
        assert profile.fused_band_bytes == defaults.fused_band_bytes
        assert profile.calibrated is True

    def test_reference_profile_records_provenance(self):
        raw = json.loads(REFERENCE_PROFILE.read_text())
        assert raw["version"] == CalibrationProfile().version
        assert "provenance" in raw  # ignored by the loader, kept for humans
        assert set(raw["provenance"]["measurements"]) == {
            "fft_crossover_taps", "tiled_min_plane_bytes",
            "fused_fft_min_taps", "fused_band_bytes",
            "fused_pooled_geometries",
        }
