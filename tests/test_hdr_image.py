"""Tests for repro.image.hdr and repro.image.color."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image import HDRImage, gray_to_rgb, luminance, rgb_to_gray


def make_rgb(h=8, w=8, value=1.0):
    return HDRImage(np.full((h, w, 3), value, dtype=np.float32), name="t")


class TestConstruction:
    def test_gray(self):
        img = HDRImage(np.ones((4, 5), dtype=np.float32))
        assert img.height == 4
        assert img.width == 5
        assert img.channels == 1
        assert not img.is_color

    def test_rgb(self):
        img = make_rgb(4, 6)
        assert img.channels == 3
        assert img.is_color
        assert img.pixel_count == 24
        assert img.sample_count == 72

    def test_single_channel_3d_squeezed(self):
        img = HDRImage(np.ones((4, 4, 1), dtype=np.float32))
        assert img.channels == 1

    def test_negative_rejected(self):
        with pytest.raises(ImageError):
            HDRImage(np.array([[-1.0, 0.0]]))

    def test_nan_rejected(self):
        with pytest.raises(ImageError):
            HDRImage(np.array([[np.nan, 0.0]]))

    def test_inf_rejected(self):
        with pytest.raises(ImageError):
            HDRImage(np.array([[np.inf, 0.0]]))

    def test_wrong_channel_count_rejected(self):
        with pytest.raises(ImageError):
            HDRImage(np.ones((4, 4, 2)))

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ImageError):
            HDRImage(np.ones(16))
        with pytest.raises(ImageError):
            HDRImage(np.ones((2, 2, 3, 1)))

    def test_empty_rejected(self):
        with pytest.raises(ImageError):
            HDRImage(np.ones((0, 4)))

    def test_pixels_immutable(self):
        img = make_rgb()
        with pytest.raises(ValueError):
            img.pixels[0, 0, 0] = 2.0

    def test_source_array_not_aliased(self):
        src = np.ones((4, 4), dtype=np.float32)
        img = HDRImage(src)
        src[0, 0] = 77.0
        assert img.pixels[0, 0] == 1.0

    def test_float32_conversion(self):
        img = HDRImage(np.ones((2, 2), dtype=np.float64))
        assert img.pixels.dtype == np.float32


class TestNormalization:
    def test_normalized_peak_is_one(self):
        img = HDRImage(np.array([[1.0, 4.0], [2.0, 0.5]], dtype=np.float32))
        norm = img.normalized()
        assert norm.max_value == 1.0
        np.testing.assert_allclose(norm.pixels, img.pixels / 4.0)

    def test_normalized_preserves_ratios(self):
        img = HDRImage(np.array([[10.0, 5.0]], dtype=np.float32))
        norm = img.normalized()
        assert norm.pixels[0, 1] == pytest.approx(0.5)

    def test_black_image_unchanged(self):
        img = HDRImage(np.zeros((3, 3), dtype=np.float32))
        norm = img.normalized()
        assert norm.max_value == 0.0

    def test_name_suffix(self):
        assert make_rgb().normalized().name.endswith(":normalized")


class TestLuminanceHelpers:
    def test_rec601_weights(self):
        img = HDRImage(np.ones((2, 2, 3), dtype=np.float32))
        np.testing.assert_allclose(img.luminance(), 1.0, atol=1e-6)

    def test_pure_channels(self):
        px = np.zeros((1, 3, 3), dtype=np.float32)
        px[0, 0, 0] = 1.0  # red
        px[0, 1, 1] = 1.0  # green
        px[0, 2, 2] = 1.0  # blue
        lum = luminance(px)
        np.testing.assert_allclose(lum[0], [0.299, 0.587, 0.114], atol=1e-6)

    def test_gray_pass_through(self):
        plane = np.random.default_rng(0).uniform(0, 1, (4, 4))
        np.testing.assert_allclose(luminance(plane), plane)

    def test_rgb_to_gray_requires_rgb(self):
        with pytest.raises(ImageError):
            rgb_to_gray(np.ones((4, 4)))

    def test_gray_to_rgb_shape(self):
        rgb = gray_to_rgb(np.ones((4, 5)))
        assert rgb.shape == (4, 5, 3)

    def test_gray_to_rgb_requires_2d(self):
        with pytest.raises(ImageError):
            gray_to_rgb(np.ones((4, 5, 3)))

    def test_luminance_bad_shape(self):
        with pytest.raises(ImageError):
            luminance(np.ones((2, 2, 4)))


class TestMisc:
    def test_with_name(self):
        img = make_rgb().with_name("other")
        assert img.name == "other"

    def test_map(self):
        img = HDRImage(np.full((2, 2), 2.0, dtype=np.float32))
        doubled = img.map(lambda p: p * 2)
        assert doubled.max_value == 4.0

    def test_equality(self):
        a = HDRImage(np.ones((2, 2), dtype=np.float32))
        b = HDRImage(np.ones((2, 2), dtype=np.float32))
        c = HDRImage(np.zeros((2, 2), dtype=np.float32))
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_same_shape(self):
        assert make_rgb(4, 4).same_shape(make_rgb(4, 4))
        assert not make_rgb(4, 4).same_shape(make_rgb(4, 5))

    def test_repr(self):
        text = repr(make_rgb(4, 6))
        assert "6x4" in text
        assert "RGB" in text
