"""Tests for the cross-scene quality robustness study."""

import pytest

from repro.experiments.robustness import quality_robustness
from repro.image.synthetic import SCENE_BUILDERS

STUDY = quality_robustness(size=128)


class TestQualityRobustness:
    def test_all_scenes_evaluated(self):
        assert {r.scene for r in STUDY.results} == set(SCENE_BUILDERS)

    def test_every_scene_in_lossy_compression_band(self):
        # The arithmetic, not the content, sets the quality class: every
        # scene must land in the paper's band.
        assert STUDY.min_psnr_db >= 50.0

    def test_ssim_near_one_everywhere(self):
        assert STUDY.min_ssim >= 0.99

    def test_spread_is_bounded(self):
        # Content moves PSNR by several dB (edges vs smooth ramps), but
        # not by an order of magnitude.
        assert STUDY.max_psnr_db - STUDY.min_psnr_db < 30.0

    def test_comparison_is_real_on_every_scene(self):
        # No scene may compare bit-identical outputs.
        for result in STUDY.results:
            assert result.psnr_db < 120.0, result.scene

    def test_subset_selection(self):
        study = quality_robustness(size=64, scenes=["gradient"])
        assert [r.scene for r in study.results] == ["gradient"]
        with pytest.raises(KeyError):
            study.result("checker")

    def test_render(self):
        text = STUDY.render()
        assert "ROBUSTNESS" in text
        assert "window_interior" in text
