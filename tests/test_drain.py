"""Drain semantics: zero-loss graceful shutdown at every layer.

``close()`` has always meant "flush queued work, then stop".  ``drain()``
is its operator-facing sibling: refuse *new* work immediately, finish
everything already admitted, and (at the ingest edge) fail queued
best-effort frames fast so the flush completes sooner.  These tests pin
the contract layer by layer — ingestor, service, shard pool, host pool —
plus the ``serve-host`` SIGTERM path and the fault-marked rolling
restart.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ServiceOverloadedError, ToneMapError
from repro.image import HDRImage
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    BatchToneMapper,
    FaultPlan,
    HostPool,
    HostServer,
    ToneMapIngestor,
    ToneMapService,
)
from repro.tonemap.gaussian import separable_blur
from repro.tonemap.pipeline import ToneMapParams

PARAMS = ToneMapParams(sigma=2.0, radius=6)


def scenes(count, size=24, base=100):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=base + i),
        )
        for i in range(count)
    ]


def gated_params():
    """Params whose blur blocks until the returned event is set."""
    gate = threading.Event()

    def slow_blur(plane, kernel):
        gate.wait(timeout=30)
        return separable_blur(plane, kernel)

    return ToneMapParams(sigma=2.0, radius=6, blur_fn=slow_blur), gate


def _stack(frames=4, size=32, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((frames, size, size), dtype=np.float32)


def _want(stack):
    return BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)


def _wait_for(predicate, timeout_s=30.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestIngestorDrain:
    def test_drain_flushes_queued_sheds_best_effort_refuses_new(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=1, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service, max_delay_ms=0, max_inflight_batches=1
            )
            kept = [ingestor.submit(image) for image in scenes(3)]
            cheap = ingestor.submit(
                scenes(1, base=900)[0], priority="best_effort"
            )
            drainer = threading.Thread(target=ingestor.drain)
            drainer.start()
            try:
                # Queued best-effort fails fast, before the flush ends
                # (the gate is still closed, so nothing has completed).
                with pytest.raises(ServiceOverloadedError, match="drain"):
                    cheap.result(timeout=30)
                # New admissions are refused from the drain call on.
                with pytest.raises(ToneMapError, match="draining"):
                    ingestor.submit(scenes(1, base=901)[0])
            finally:
                gate.set()
                drainer.join(timeout=60)
            assert not drainer.is_alive()
            # Every admitted interactive/standard frame got a real result.
            for future in kept:
                assert future.result(timeout=0).pixels.shape == (24, 24, 3)
            # drain closed the ingestor (close is now a no-op) ...
            ingestor.close()
            with pytest.raises(ToneMapError, match="draining|closed"):
                ingestor.submit(scenes(1, base=902)[0])
            # ... but the borrowed service stays open — the caller owns it.
            service.submit(scenes(1, base=903)[0]).result(timeout=30)

    def test_close_serves_queued_best_effort_frames(self):
        # close() is the zero-refusal flush: unlike drain(), queued
        # best-effort work still resolves to a real result.
        with ToneMapService(PARAMS, batch_size=4) as service:
            ingestor = ToneMapIngestor(service, max_delay_ms=60_000)
            future = ingestor.submit(
                scenes(1)[0], priority="best_effort"
            )
            ingestor.close()
            assert future.result(timeout=0).pixels.shape == (24, 24, 3)

    def test_drain_is_idempotent_on_an_idle_ingestor(self):
        with ToneMapService(PARAMS, batch_size=1) as service:
            ingestor = ToneMapIngestor(service)
            ingestor.drain()
            ingestor.drain()
            ingestor.close()


class TestServiceDrain:
    def test_drain_finishes_admitted_then_refuses(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            futures = [service.submit(image) for image in scenes(3)]
            service.drain()
            for future in futures:
                assert future.result(timeout=0).pixels.shape == (24, 24, 3)
            with pytest.raises(ToneMapError, match="drain|closed"):
                service.submit(scenes(1)[0])

    def test_drain_closes_the_shard_pool_gracefully(self):
        images = scenes(2, size=16)
        with ToneMapService(
            PARAMS, batch_size=2, shards=1, arena_slots=2
        ) as service:
            pool = service.pool
            service.run_batch(images)
            service.drain()
            # The pool was drained (graceful), not just closed: it now
            # refuses leases as a drained pool.
            with pytest.raises(ToneMapError, match="draining|closed"):
                pool.run_stack(_stack(frames=2, size=16))

    def test_shard_pool_drain_refuses_new_leases(self):
        with ToneMapService(
            PARAMS, batch_size=2, shards=1, arena_slots=2
        ) as service:
            pool = service.pool
            got = pool.run_stack(_stack(frames=2, size=16, seed=7))
            np.testing.assert_array_equal(
                got, _want(_stack(frames=2, size=16, seed=7))
            )
            pool.drain()
            # run_stack hits the closed arena first; run_leased's own
            # guard is the draining message — either way it refuses.
            with pytest.raises(ToneMapError, match="draining|closed"):
                pool.run_stack(_stack(frames=2, size=16))


class TestHostPoolDrain:
    def test_drain_waits_for_in_flight_then_refuses(self):
        stack = _stack(seed=11)
        want = _want(stack)
        results = []
        with HostPool.spawn_local(
            2, PARAMS, shards_per_host=1, arena_slots=4
        ) as pool:
            loader = threading.Thread(
                target=lambda: results.append(pool.run_stack(stack))
            )
            loader.start()
            time.sleep(0.05)  # let the batch reach the wire
            pool.drain()
            loader.join(timeout=30)
            assert not loader.is_alive()
            # The in-flight batch finished with a real, correct result.
            assert len(results) == 1
            np.testing.assert_array_equal(results[0], want)
            with pytest.raises(ToneMapError, match="draining|closed"):
                pool.run_stack(stack)
        # No reviver thread survives a drain (close joins them).
        assert not [
            t for t in threading.enumerate()
            if t.name.startswith("repro-host-revive") and t.is_alive()
        ]

    def test_rolling_restart_requires_owned_hosts(self):
        server = HostServer(PARAMS, shards=1, arena_slots=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with HostPool([server.address]) as pool:
                with pytest.raises(ToneMapError, match="owns its host"):
                    pool.rolling_restart()
        finally:
            server.close()
            thread.join(timeout=10)


@pytest.mark.fault
class TestRollingRestartChaos:
    def test_rolling_restart_under_faulted_load_loses_nothing(self):
        # Slow links jitter the wire while every host is cycled under
        # sustained load: the contract is the bench gate's — zero
        # admitted frames lost, outputs bit-identical throughout.
        plan = FaultPlan(slow_link_batches=(0, 1, 2, 3), jitter_ms=2.0)
        batches = [_stack(seed=50 + i) for i in range(3)]
        wants = [_want(stack) for stack in batches]
        errors = []
        served = [0]
        stop = threading.Event()

        with HostPool.spawn_local(
            2, PARAMS, shards_per_host=1, faults=plan
        ) as pool:
            def load():
                index = 0
                while not stop.is_set():
                    i = index % len(batches)
                    index += 1
                    try:
                        got = pool.run_stack(batches[i])
                        np.testing.assert_array_equal(got, wants[i])
                        served[0] += 1
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            loader = threading.Thread(target=load)
            loader.start()
            try:
                time.sleep(0.2)
                drained = pool.rolling_restart()
            finally:
                stop.set()
                loader.join(timeout=60)
            assert errors == []
            assert drained == 2
            assert pool.hosts_drained == 2
            assert served[0] >= 1
            # The restarted fleet is whole and still serving.
            assert _wait_for(lambda: pool.active_shards == 2)
            got = pool.run_stack(batches[0])
            np.testing.assert_array_equal(got, wants[0])


class TestServeHostSignals:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_and_releases_shm_segments(self, signum):
        before = set(os.listdir("/dev/shm"))
        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli",
                "serve-host", "--shards", "1", "--arena-slots", "2",
                "--sigma", "2.0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=repo,
        )
        try:
            line = proc.stdout.readline()
            assert "serving" in line, line
            address = line.strip().rsplit(" ", 1)[-1]
            # Serve one real batch so the host's lazily-leased arena
            # segments actually exist before the stop signal arrives.
            stack = _stack(frames=2, size=16, seed=13)
            want = (
                BatchToneMapper(ToneMapParams(sigma=2.0))
                .run_stack(stack)
                .astype(np.float32)
            )
            with HostPool([address]) as client:
                np.testing.assert_array_equal(
                    client.run_stack(stack), want
                )
            created = set(os.listdir("/dev/shm")) - before
            assert created  # the arena lives in /dev/shm
            proc.send_signal(signum)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert proc.returncode == 0  # graceful drain, not a crash
        # Every segment the host created is gone — an orchestrator's
        # stop signal never leaks shared memory (resource-tracker
        # cleanup of multiprocessing internals may lag a moment).
        assert _wait_for(
            lambda: not (created & set(os.listdir("/dev/shm"))),
            timeout_s=15.0,
        )
