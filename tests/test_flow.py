"""Tests for repro.sdsoc.flow (the five-step optimization ladder).

These tests pin the *shape* criteria from DESIGN.md: orderings,
crossovers and ratio bands, not absolute seconds.
"""

import pytest

from repro.accel import BlurGeometry
from repro.errors import FlowError
from repro.experiments.calibration import make_paper_flow
from repro.platform import ZynqSoC
from repro.sdsoc.flow import OptimizationFlow

# Module-level: the calibrated flow is reused by many tests (it is cheap —
# all analytic — but building variants repeatedly adds up).
FLOW = make_paper_flow()
RESULTS = {r.key: r for r in FLOW.run_all()}


class TestTableIIShape:
    def test_ordering_of_blur_times(self):
        # marked >> sequential > sw > pragmas > fxp (the paper's ladder).
        blur = {k: r.blur_seconds for k, r in RESULTS.items()}
        assert blur["marked_hw"] > blur["sequential"] > blur["sw"]
        assert blur["sw"] > blur["pragmas"] > blur["fxp"]

    def test_naive_offload_is_a_regression(self):
        # "a straightforward selection ... would not produce any
        # immediate gain" — at least 5x slower (paper: 24x).
        ratio = RESULTS["marked_hw"].blur_seconds / RESULTS["sw"].blur_seconds
        assert ratio > 5.0

    def test_sequential_restructure_still_slower_than_sw(self):
        # The key crossover: restructuring alone does not beat the CPU.
        assert RESULTS["sequential"].blur_seconds > RESULTS["sw"].blur_seconds

    def test_blur_speedup_at_least_10x(self):
        # Paper headline: "more than 17x".
        speedup = RESULTS["sw"].blur_seconds / RESULTS["fxp"].blur_seconds
        assert speedup >= 10.0

    def test_fxp_faster_than_float_pragmas(self):
        assert RESULTS["fxp"].blur_seconds < RESULTS["pragmas"].blur_seconds

    def test_totals_dominated_by_ps_for_fast_variants(self):
        # Once the blur is accelerated, the totals collapse onto the
        # PS-side remainder (paper: 19.10 / 19.27 vs 26.66).
        for key in ("pragmas", "fxp"):
            result = RESULTS[key]
            assert result.rest_seconds / result.total_seconds > 0.9

    def test_fxp_total_slightly_above_pragmas_total(self):
        # Paper Table II: 19.27 > 19.10 — the PS-side conversion eats the
        # blur gain.
        assert RESULTS["fxp"].total_seconds > RESULTS["pragmas"].total_seconds
        assert RESULTS["fxp"].total_seconds < 1.05 * RESULTS["pragmas"].total_seconds

    def test_sw_blur_near_paper_anchor(self):
        # Calibrated anchor: 7.29 s within 5%.
        assert RESULTS["sw"].blur_seconds == pytest.approx(7.29, rel=0.05)

    def test_marked_blur_near_paper_anchor(self):
        assert RESULTS["marked_hw"].blur_seconds == pytest.approx(176.0, rel=0.05)


class TestResultStructure:
    def test_stage_accounting_consistent(self):
        for result in RESULTS.values():
            assert result.total_seconds == pytest.approx(
                sum(s.seconds for s in result.stage_times)
            )
            assert result.rest_seconds == pytest.approx(
                result.total_seconds - result.blur_seconds
            )

    def test_sw_variant_has_no_hardware(self):
        result = RESULTS["sw"]
        assert not result.uses_hardware
        assert result.pl_busy_seconds == 0.0
        assert result.resources is None
        assert result.pl_utilization == 0.0

    def test_hw_variants_have_resources_and_utilization(self):
        for key in ("marked_hw", "sequential", "pragmas", "fxp"):
            result = RESULTS[key]
            assert result.uses_hardware
            assert result.resources is not None
            assert 0.0 < result.pl_utilization < 1.0

    def test_fxp_has_conversion_stage(self):
        stage = RESULTS["fxp"].stage("fxp_conversion")
        assert stage.seconds > 0
        with pytest.raises(FlowError):
            RESULTS["pragmas"].stage("fxp_conversion")

    def test_phases_cover_total_time(self):
        for result in RESULTS.values():
            phases = result.phases()
            assert sum(p.duration_s for p in phases) == pytest.approx(
                result.total_seconds
            )

    def test_hw_blur_phase_is_pl_active(self):
        phases = {p.name: p for p in RESULTS["fxp"].phases()}
        assert phases["gaussian_blur"].pl_active
        assert not phases["gaussian_blur"].ps_active
        assert phases["masking"].ps_active

    def test_hls_report_renders(self):
        text = RESULTS["fxp"].hls_design.report()
        assert "pixels" in text

    def test_fxp_transfers_half_of_float(self):
        # 16-bit elements halve the DMA payload.
        assert RESULTS["fxp"].transfer_seconds < RESULTS["pragmas"].transfer_seconds


class TestFlowApi:
    def test_unknown_variant_rejected(self):
        with pytest.raises(FlowError):
            FLOW.run_variant("ghost")

    def test_bad_channels_rejected(self):
        with pytest.raises(FlowError):
            OptimizationFlow(ZynqSoC(), channels=2)

    def test_small_geometry_flow_runs(self):
        flow = OptimizationFlow(
            ZynqSoC(), geometry=BlurGeometry(height=64, width=64, radius=4,
                                             sigma=2.0)
        )
        results = flow.run_all()
        assert len(results) == 5

    def test_ps_stage_times_positive(self):
        for name, seconds in FLOW.ps_stage_times().items():
            assert seconds > 0, name

    def test_project_for_sw_variant_has_no_marked_functions(self):
        project = FLOW.project_for(FLOW.variants["sw"])
        assert project.marked_functions == []

    def test_project_for_hw_variant_marks_blur(self):
        project = FLOW.project_for(FLOW.variants["fxp"])
        assert project.marked_functions == ["gaussian_blur"]
