"""Tests for repro.image.synthetic (procedural HDR scenes)."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image import (
    SCENE_BUILDERS,
    SceneParams,
    dynamic_range_stops,
    make_scene,
    window_interior_scene,
)

SMALL = SceneParams(height=64, width=64)


class TestSceneParams:
    def test_defaults_match_paper_size(self):
        params = SceneParams()
        assert params.height == 1024
        assert params.width == 1024

    def test_too_small_rejected(self):
        with pytest.raises(ImageError):
            SceneParams(height=4, width=64)

    def test_nonpositive_peak_rejected(self):
        with pytest.raises(ImageError):
            SceneParams(peak_luminance=0.0)


@pytest.mark.parametrize("name", sorted(SCENE_BUILDERS))
class TestAllScenes:
    def test_shape_and_validity(self, name):
        img = make_scene(name, SMALL)
        assert img.height == 64
        assert img.width == 64
        assert img.is_color
        assert img.min_value >= 0.0

    def test_peak_luminance_respected(self, name):
        params = SceneParams(height=64, width=64, peak_luminance=1234.0)
        img = make_scene(name, params)
        assert img.max_value == pytest.approx(1234.0, rel=1e-5)

    def test_deterministic(self, name):
        a = make_scene(name, SMALL)
        b = make_scene(name, SMALL)
        np.testing.assert_array_equal(a.pixels, b.pixels)

    def test_seed_changes_textured_scenes(self, name):
        a = make_scene(name, SceneParams(height=64, width=64, seed=1))
        b = make_scene(name, SceneParams(height=64, width=64, seed=2))
        if name in ("gradient", "checker"):  # deterministic, no noise
            np.testing.assert_array_equal(a.pixels, b.pixels)
        else:
            assert not np.array_equal(a.pixels, b.pixels)

    def test_high_dynamic_range(self, name):
        img = make_scene(name, SceneParams(height=128, width=128))
        # HDR scenes must span many stops (paper: "very high ratio between
        # the luminance of the brightest and the darkest pixel").
        assert dynamic_range_stops(img, percentile_floor=1.0) > 6.0

    def test_gray_variant(self, name):
        img = make_scene(name, SceneParams(height=64, width=64, color=False))
        assert not img.is_color


class TestRegistry:
    def test_unknown_scene_rejected(self):
        with pytest.raises(ImageError, match="unknown scene"):
            make_scene("nope", SMALL)

    def test_registry_complete(self):
        assert set(SCENE_BUILDERS) == {
            "window_interior",
            "outdoor_sun",
            "gradient",
            "checker",
            "starfield",
        }


class TestWindowInterior:
    """The paper-workload scene gets extra scrutiny."""

    def test_window_is_brightest_region(self):
        img = window_interior_scene(SceneParams(height=128, width=128))
        lum = img.luminance()
        bright_y, bright_x = np.unravel_index(np.argmax(lum), lum.shape)
        # Window spans y in [0.18, 0.62], x in [0.52, 0.84]; the sky
        # gradient peaks at the window's top edge, so allow the borders.
        assert 0.17 * 128 <= bright_y <= 0.63 * 128
        assert 0.51 * 128 <= bright_x <= 0.85 * 128

    def test_has_dark_interior(self):
        img = window_interior_scene(SceneParams(height=128, width=128))
        lum = img.luminance()
        # A meaningful fraction of the scene is deep shadow (< 1% of peak).
        assert np.mean(lum < 0.01 * lum.max()) > 0.3
