"""Fault injection: shard workers die, the pool must not.

The scenarios SIGKILL real worker processes (or make them suicide on
their first slab) and assert the recovery contract of
``ShardPool.run_leased``:

* the broken batch is replayed once on a respawned worker set (callers
  see a result, not an exception, for a one-off crash);
* a *persistently* crashing workload surfaces
  :class:`~repro.errors.ShardCrashError` instead of hanging;
* no arena lease is leaked on any path and ``/dev/shm`` ends clean;
* the autoscaler keeps operating across a respawn;
* futures handed out by the ingestor always resolve — no hung callers.

Persistent-crash injection goes through the first-class
:class:`~repro.runtime.FaultPlan` (seeded, in-worker SIGKILL at chosen
batch indices) rather than monkeypatching the slab task — the same
mechanism the chaos suite and the ``--fault-plan`` CLI flag use.
Worker-kill tests fork fresh pools per test and are marked ``fault`` so
the per-PR CI job can select them explicitly (they run in the default
suite too — each is sub-second).
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import ShardCrashError
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    BatchToneMapper,
    FaultPlan,
    ShardPool,
    ToneMapIngestor,
    ToneMapService,
)
from repro.tonemap.pipeline import ToneMapParams

pytestmark = pytest.mark.fault

PARAMS = ToneMapParams(sigma=2.0, radius=6)
SHM_DIR = "/dev/shm"


def shm_names():
    if not os.path.isdir(SHM_DIR):
        pytest.skip("no /dev/shm to scan on this platform")
    return set(os.listdir(SHM_DIR))


def _stack(frames=4, size=64, seed=3):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, (frames, size, size)).astype(np.float32)


def _wait_for_corpse(pool, timeout=30.0):
    """Block until the pool's executor has noticed a killed worker.

    SIGKILL is asynchronous: with two workers the survivor can drain an
    entire batch before the executor's manager thread reaps the corpse,
    in which case the next ``run_leased`` succeeds *without* a respawn
    and ``worker_respawns`` assertions race (seen under CPU contention).
    The executor flags itself broken the moment it reaps — wait for
    that before dispatching the batch that must trip over the corpse.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pool._executor._broken:
            return
        time.sleep(0.005)
    pytest.fail("executor never noticed the killed worker")


class TestWorkerKillRecovery:
    def test_killed_worker_batch_replayed_and_pool_recovers(self):
        baseline = shm_names()
        stack = _stack()
        want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
        with ShardPool(PARAMS, shards=2) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            pool.run_leased(lease).release()  # warm, known-good
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            _wait_for_corpse(pool)
            # The next batch trips over the corpse, respawns, replays —
            # and the caller never notices.
            out = pool.run_leased(lease)
            got = out.array.copy()
            out.release()
            lease.release()
            np.testing.assert_array_equal(got, want)
            assert pool.worker_respawns >= 1
            assert pool.data_plane_stats.worker_respawns == pool.worker_respawns
            assert pool.arena.stats.leases_active == 0
        assert shm_names() <= baseline

    def test_kill_mid_batch_no_hung_caller_no_leaked_lease(self):
        stack = _stack(frames=8, size=256)
        with ShardPool(PARAMS, shards=2) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            pool.run_leased(lease).release()  # warm
            results = []
            failures = []
            first_done = threading.Event()
            killed = threading.Event()

            def hammer():
                for index in range(4):
                    try:
                        out = pool.run_leased(lease)
                        results.append(out.array.copy())
                        out.release()
                    except ShardCrashError as exc:  # pragma: no cover
                        failures.append(exc)
                    first_done.set()
                    if index == 0:
                        # Batch 2 starts only after the signal landed, so
                        # a later submission is guaranteed to trip over
                        # the corpse — no lucky all-done-before-the-kill
                        # timing.
                        killed.wait(timeout=60)

            thread = threading.Thread(target=hammer)
            thread.start()
            assert first_done.wait(timeout=60)
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            _wait_for_corpse(pool)
            killed.set()
            thread.join(timeout=120)
            assert not thread.is_alive(), "caller hung after worker kill"
            # Every batch either replayed to success or failed loudly.
            assert len(results) + len(failures) == 4
            assert not failures, "single crash must be absorbed by replay"
            want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
            for got in results:
                np.testing.assert_array_equal(got, want)
            lease.release()
            assert pool.worker_respawns >= 1
            assert pool.arena.stats.leases_active == 0

    def test_persistent_crash_raises_shard_crash_error(self):
        # A FaultPlan SIGKILLs a worker on batch attempts 0 and 1: the
        # replay crashes too, which must surface as ShardCrashError
        # (bounded retries), not an infinite respawn loop or a hang.
        stack = _stack()
        plan = FaultPlan(kill_batches=(0, 1))
        with ShardPool(PARAMS, shards=2, faults=plan) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            with pytest.raises(ShardCrashError):
                pool.run_leased(lease)
            assert pool.worker_respawns == 2  # initial crash + failed replay
            assert pool.arena.stats.leases_active == 1  # only the input
            # The plan's kill indices are exhausted: attempt 2 runs the
            # workload clean on the respawned workers.
            out = pool.run_leased(lease)
            want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
            np.testing.assert_array_equal(out.array, want)
            out.release()
            lease.release()
            assert pool.arena.stats.leases_active == 0

    def test_autoscaler_keeps_operating_after_respawn(self):
        stack = _stack()
        with ShardPool(PARAMS, shards=1, autoscale=True, max_shards=2) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            pool.run_leased(lease).release()
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            pool.run_leased(lease).release()  # respawn + replay
            assert pool.worker_respawns >= 1
            # The autoscaler state machine survived: observations still
            # move the active width within bounds.
            for _ in range(8):
                pool.observe(queue_depth=8)
            assert pool.active_shards == 2
            for _ in range(32):
                pool.observe(queue_depth=0)
            assert pool.active_shards == 1
            pool.run_leased(lease).release()
            lease.release()


class TestServiceAndIngestorFaultPaths:
    def test_ingestor_futures_resolve_across_worker_kill(self):
        baseline = shm_names()
        images = [
            make_scene(
                "window_interior",
                SceneParams(height=32, width=32, seed=7 + i),
            )
            for i in range(12)
        ]
        with ToneMapService(PARAMS, batch_size=4, shards=2) as service:
            with ToneMapIngestor(service, max_delay_ms=5) as ingestor:
                futures = []
                for index, image in enumerate(images):
                    futures.append(ingestor.submit(image))
                    if index == 5:
                        os.kill(
                            service.pool.worker_pids()[0], signal.SIGKILL
                        )
                        _wait_for_corpse(service.pool)
                outcomes = [f.result(timeout=120) for f in futures]
            # Replay absorbed the crash: every frame got a real result.
            assert all(out is not None for out in outcomes)
            assert service.pool.arena.stats.leases_active == 0
            assert service.stats.shard_respawns >= 1
        assert shm_names() <= baseline

    def test_parent_side_crash_fails_futures_without_hanging(self):
        # If the pool gives up (ShardCrashError), every affected future
        # must fail promptly — and the service must keep serving once
        # the fault clears.
        images = [
            make_scene(
                "window_interior",
                SceneParams(height=24, width=24, seed=60 + i),
            )
            for i in range(4)
        ]
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            pool = service.pool
            real = pool.run_leased

            def always_crashing(in_lease, count=None, retries=1, **kwargs):
                raise ShardCrashError("injected: workers crash persistently")

            pool.run_leased = always_crashing
            try:
                with ToneMapIngestor(service, max_delay_ms=5) as ingestor:
                    futures = [ingestor.submit(img) for img in images[:2]]
                    for future in futures:
                        with pytest.raises(ShardCrashError):
                            future.result(timeout=30)
            finally:
                pool.run_leased = real
            assert pool.arena.stats.leases_active == 0
            # Fault cleared: the same service serves again.
            with ToneMapIngestor(service, max_delay_ms=5) as ingestor:
                outputs = ingestor.map_many(images[2:])
            assert len(outputs) == 2
            assert pool.arena.stats.leases_active == 0
