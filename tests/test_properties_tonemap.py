"""Property-based tests for the tone-mapping and metrics substrates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.image.metrics import psnr, ssim
from repro.tonemap import (
    GaussianKernel,
    MaskingParams,
    adjust_brightness_contrast,
    AdjustParams,
    nonlinear_masking,
    separable_blur,
)
from repro.tonemap.fixed_blur import FixedBlurConfig, fixed_point_blur_plane

planes = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=12, max_value=24),
        st.integers(min_value=12, max_value=24),
    ),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                       width=64),
)

kernels = st.builds(
    GaussianKernel,
    sigma=st.floats(min_value=0.5, max_value=4.0),
    radius=st.integers(min_value=1, max_value=5),
)


class TestBlurProperties:
    @given(plane=planes, kernel=kernels)
    @settings(max_examples=60, deadline=None)
    def test_output_within_input_range(self, plane, kernel):
        out = separable_blur(plane, kernel)
        assert out.min() >= plane.min() - 1e-9
        assert out.max() <= plane.max() + 1e-9

    @given(plane=planes, kernel=kernels)
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance_of_constant_offset(self, plane, kernel):
        # blur(x + c) == blur(x) + c: the kernel sums to one.
        out_a = separable_blur(plane, kernel)
        out_b = separable_blur(plane + 0.25, kernel)
        np.testing.assert_allclose(out_b, out_a + 0.25, atol=1e-9)

    @given(plane=planes, kernel=kernels, scale=st.floats(0.1, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_homogeneity(self, plane, kernel, scale):
        np.testing.assert_allclose(
            separable_blur(scale * plane, kernel),
            scale * separable_blur(plane, kernel),
            atol=1e-9,
        )

    @given(plane=planes, kernel=kernels)
    @settings(max_examples=40, deadline=None)
    def test_fixed_blur_error_bounded(self, plane, kernel):
        # Fixed-point output differs from float by a bounded number of
        # LSBs (quantization per pass plus coefficient truncation).
        cfg = FixedBlurConfig()
        fixed = fixed_point_blur_plane(plane, kernel, cfg)
        ref = separable_blur(plane, kernel)
        lsb = cfg.data_fmt.resolution
        assert np.max(np.abs(fixed - ref)) <= 8 * lsb

    @given(plane=planes, kernel=kernels)
    @settings(max_examples=40, deadline=None)
    def test_fixed_blur_output_saturates_not_wraps(self, plane, kernel):
        out = fixed_point_blur_plane(plane, kernel)
        assert out.min() >= -1e-9  # never wraps to negative


class TestMaskingProperties:
    @given(plane=planes, mask_level=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_output_unit_range(self, plane, mask_level):
        mask = np.full(plane.shape, mask_level)
        out = nonlinear_masking(plane, mask)
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    @given(plane=planes, mask_level=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_pixel_value(self, plane, mask_level):
        mask = np.full(plane.shape, mask_level)
        out = nonlinear_masking(plane, mask)
        flat_in = plane.ravel()
        flat_out = out.ravel()
        order = np.argsort(flat_in)
        diffs = np.diff(flat_out[order])
        assert np.all(diffs >= -1e-12)

    @given(plane=planes)
    @settings(max_examples=40, deadline=None)
    def test_strength_zero_is_identity(self, plane):
        mask = np.random.default_rng(0).uniform(0, 1, plane.shape)
        out = nonlinear_masking(plane, mask, MaskingParams(strength=0.0))
        np.testing.assert_allclose(out, plane, atol=1e-12)

    @given(
        plane=planes,
        brightness=st.floats(-0.5, 0.5),
        contrast=st.floats(0.25, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_adjust_clamped_and_monotone(self, plane, brightness, contrast):
        out = adjust_brightness_contrast(
            plane, AdjustParams(brightness=brightness, contrast=contrast)
        )
        assert out.min() >= 0.0 and out.max() <= 1.0
        order = np.argsort(plane.ravel())
        assert np.all(np.diff(out.ravel()[order]) >= -1e-12)


class TestMetricProperties:
    @given(plane=planes, sigma=st.floats(0.001, 0.1))
    @settings(max_examples=40, deadline=None)
    def test_psnr_decreases_with_noise(self, plane, sigma):
        rng = np.random.default_rng(1)
        n1 = np.clip(plane + rng.normal(0, sigma, plane.shape), 0, 1)
        n2 = np.clip(plane + rng.normal(0, 4 * sigma, plane.shape), 0, 1)
        p1 = psnr(plane, n1, 1.0)
        p2 = psnr(plane, n2, 1.0)
        if np.isfinite(p1) and np.isfinite(p2):
            assert p1 >= p2 - 1.0  # allow clip-induced wiggle

    @given(plane=planes)
    @settings(max_examples=40, deadline=None)
    def test_ssim_self_is_one(self, plane):
        result = ssim(plane, plane, data_range=1.0)
        assert float(result) == pytest.approx(1.0)

    @given(plane=planes, sigma=st.floats(0.001, 0.05))
    @settings(max_examples=40, deadline=None)
    def test_ssim_bounded(self, plane, sigma):
        rng = np.random.default_rng(2)
        noisy = np.clip(plane + rng.normal(0, sigma, plane.shape), 0, 1)
        value = float(ssim(plane, noisy, 1.0))
        assert -1.0 <= value <= 1.0 + 1e-12
