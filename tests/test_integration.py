"""End-to-end integration tests: full stacks wired together."""

import numpy as np
import pytest

from repro.accel import BlurGeometry
from repro.experiments import (
    make_paper_flow,
    paper_workload,
    run_fig5,
    run_table2,
)
from repro.experiments.runner import run_all_experiments
from repro.image import SceneParams, psnr, ssim, window_interior_scene
from repro.image.pfm import read_pfm, write_pfm
from repro.image.ppm import read_ppm
from repro.platform import ZynqSoC
from repro.power.pmbus import PmBusMonitor
from repro.sdsoc.flow import OptimizationFlow
from repro.tonemap import ToneMapParams, ToneMapper, tone_map


class TestFullPipelineIntegration:
    def test_tone_map_roundtrip_through_files(self, tmp_path):
        # Scene -> PFM -> read back -> tone map -> PPM -> read back.
        scene = window_interior_scene(SceneParams(height=96, width=96))
        pfm_path = tmp_path / "in.pfm"
        write_pfm(scene, pfm_path)
        loaded = read_pfm(pfm_path)
        assert loaded == scene

        out = tone_map(loaded, ToneMapParams(sigma=4.0))
        from repro.image.ppm import write_ppm

        ppm_path = tmp_path / "out.ppm"
        write_ppm(out.pixels, ppm_path)
        back = read_ppm(ppm_path)
        assert back.shape == (96, 96, 3)
        assert back.max() > back.min()  # non-degenerate image

    def test_quality_pipeline_consistency(self):
        # Fig. 5's quality numbers must be reproducible from the public
        # API alone (no experiment harness).
        workload = paper_workload(size=128)
        from repro.accel.variants import paper_fixed_config
        from repro.tonemap.fixed_blur import make_fixed_blur_fn

        base = workload.params
        flp = ToneMapper(base).run(workload.image).output
        fxp_params = ToneMapParams(
            sigma=base.sigma, radius=base.radius, masking=base.masking,
            adjust=base.adjust, blur_fn=make_fixed_blur_fn(paper_fixed_config()),
        )
        fxp = ToneMapper(fxp_params).run(workload.image).output
        assert psnr(flp, fxp, 1.0) > 45.0
        assert float(ssim(flp, fxp, 1.0)) > 0.99


class TestHarnessIntegration:
    def test_run_all_experiments_small(self, tmp_path):
        suite = run_all_experiments(image_size=64, output_dir=tmp_path)
        text = suite.render()
        for marker in ("TABLE II", "FIG 5", "FIG 6", "FIG 7", "FIG 8a"):
            assert marker in text
        assert (tmp_path / "fig5b_float.ppm").exists()

    def test_flow_results_deterministic(self):
        a = run_table2(make_paper_flow())
        b = run_table2(make_paper_flow())
        for ra, rb in zip(a.rows, b.rows):
            assert ra.blur_seconds == rb.blur_seconds
            assert ra.total_seconds == rb.total_seconds

    def test_energy_through_monitor_matches_decomposition(self):
        # Fig. 7 (PMBus sampling) and Fig. 8 (exact decomposition) must
        # agree on totals for every implementation.
        from repro.experiments.calibration import calibrated_power_model
        from repro.power.energy import compute_energy

        flow = make_paper_flow()
        model = calibrated_power_model()
        monitor = PmBusMonitor(sample_interval_s=1e-3)
        for key in ("sw", "sequential", "pragmas", "fxp"):
            result = flow.run_variant(key)
            timeline = model.timeline_powers(result.phases(),
                                             result.pl_utilization)
            sampled = sum(monitor.measure_energy(timeline).values())
            exact = compute_energy(key, result.phases(),
                                   result.pl_utilization, model).total_j
            assert sampled == pytest.approx(exact, rel=0.02), key


class TestCrossLayerConsistency:
    def test_geometry_consistent_between_layers(self):
        # The functional kernel and the performance kernel must describe
        # the same filter.
        flow = make_paper_flow()
        geom = flow.geometry
        kernel = geom.kernel()
        assert kernel.taps == geom.taps
        hw = flow.variants["fxp"].kernel
        assert hw.array("coeffs").depth == geom.taps
        assert hw.array("linebuf").depth == geom.taps * geom.width

    def test_bram_capacity_honoured(self):
        # The line buffer the flow instantiates must actually fit the
        # device according to the independent BRAM model.
        soc = ZynqSoC()
        flow = make_paper_flow()
        geom = flow.geometry
        assert soc.bram.lines_fit(geom.width, geom.element_bits) >= geom.taps

    def test_resources_fit_the_device(self):
        flow = make_paper_flow()
        soc = flow.soc
        for key in ("marked_hw", "sequential", "pragmas", "fxp"):
            result = flow.run_variant(key)
            assert result.resources.fits(soc.device.limits), key

    def test_small_geometry_end_to_end(self):
        geom = BlurGeometry(height=32, width=32, radius=2, sigma=1.0)
        flow = OptimizationFlow(ZynqSoC(), geometry=geom)
        results = flow.run_all()
        blur = {r.key: r.blur_seconds for r in results}
        # Orderings hold even at toy sizes.
        assert blur["marked_hw"] > blur["sequential"]
        assert blur["pragmas"] > blur["fxp"]
