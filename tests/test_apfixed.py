"""Tests for repro.fixedpoint.apfixed (scalar ap_fixed semantics)."""

import math

import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import ApFixed, FixedFormat, Overflow, Quant

Q8_8_SAT = FixedFormat(16, 8, quant=Quant.RND, overflow=Overflow.SAT)
UQ1_15 = FixedFormat(16, 1, signed=False, quant=Quant.RND, overflow=Overflow.SAT)


class TestConstruction:
    def test_from_float_exact(self):
        x = ApFixed.from_float(1.5, Q8_8_SAT)
        assert x.to_float() == 1.5
        assert x.raw == int(1.5 * 2**8)

    def test_from_float_negative(self):
        x = ApFixed.from_float(-2.25, Q8_8_SAT)
        assert x.to_float() == -2.25

    def test_raw_constructor(self):
        x = ApFixed(384, Q8_8_SAT)
        assert x.to_float() == 1.5

    def test_raw_out_of_range_rejected(self):
        with pytest.raises(FixedPointError):
            ApFixed(2**15, Q8_8_SAT)

    def test_nan_rejected(self):
        with pytest.raises(FixedPointError):
            ApFixed.from_float(float("nan"), Q8_8_SAT)

    def test_inf_rejected(self):
        with pytest.raises(FixedPointError):
            ApFixed.from_float(float("inf"), Q8_8_SAT)

    def test_from_int(self):
        x = ApFixed.from_float(3, Q8_8_SAT)
        assert x.to_float() == 3.0

    def test_float_dunder(self):
        assert float(ApFixed.from_float(0.5, Q8_8_SAT)) == 0.5


class TestQuantizationModes:
    def _fmt(self, quant):
        return FixedFormat(8, 8, quant=quant, overflow=Overflow.SAT)

    def test_trn_floors(self):
        fmt = self._fmt(Quant.TRN)
        assert ApFixed.from_float(1.7, fmt).to_float() == 1.0
        assert ApFixed.from_float(-1.3, fmt).to_float() == -2.0

    def test_trn_zero_truncates_toward_zero(self):
        fmt = self._fmt(Quant.TRN_ZERO)
        assert ApFixed.from_float(1.7, fmt).to_float() == 1.0
        assert ApFixed.from_float(-1.7, fmt).to_float() == -1.0

    def test_rnd_half_up(self):
        fmt = self._fmt(Quant.RND)
        assert ApFixed.from_float(1.5, fmt).to_float() == 2.0
        assert ApFixed.from_float(-1.5, fmt).to_float() == -1.0
        assert ApFixed.from_float(1.4, fmt).to_float() == 1.0

    def test_rnd_min_inf_half_down(self):
        fmt = self._fmt(Quant.RND_MIN_INF)
        assert ApFixed.from_float(1.5, fmt).to_float() == 1.0
        assert ApFixed.from_float(-1.5, fmt).to_float() == -2.0
        assert ApFixed.from_float(1.6, fmt).to_float() == 2.0

    def test_rnd_zero_ties_toward_zero(self):
        fmt = self._fmt(Quant.RND_ZERO)
        assert ApFixed.from_float(1.5, fmt).to_float() == 1.0
        assert ApFixed.from_float(-1.5, fmt).to_float() == -1.0
        assert ApFixed.from_float(1.6, fmt).to_float() == 2.0

    def test_rnd_inf_ties_away_from_zero(self):
        fmt = self._fmt(Quant.RND_INF)
        assert ApFixed.from_float(1.5, fmt).to_float() == 2.0
        assert ApFixed.from_float(-1.5, fmt).to_float() == -2.0

    def test_rnd_conv_ties_to_even(self):
        fmt = self._fmt(Quant.RND_CONV)
        assert ApFixed.from_float(1.5, fmt).to_float() == 2.0
        assert ApFixed.from_float(2.5, fmt).to_float() == 2.0
        assert ApFixed.from_float(-1.5, fmt).to_float() == -2.0
        assert ApFixed.from_float(-2.5, fmt).to_float() == -2.0

    def test_exact_values_unchanged_by_all_modes(self):
        for quant in Quant:
            fmt = FixedFormat(16, 8, quant=quant, overflow=Overflow.SAT)
            assert ApFixed.from_float(1.25, fmt).to_float() == 1.25


class TestOverflowModes:
    def test_sat_clamps_high(self):
        fmt = FixedFormat(8, 8, overflow=Overflow.SAT)
        assert ApFixed.from_float(500.0, fmt).to_float() == 127.0

    def test_sat_clamps_low(self):
        fmt = FixedFormat(8, 8, overflow=Overflow.SAT)
        assert ApFixed.from_float(-500.0, fmt).to_float() == -128.0

    def test_sat_zero(self):
        fmt = FixedFormat(8, 8, overflow=Overflow.SAT_ZERO)
        assert ApFixed.from_float(500.0, fmt).to_float() == 0.0

    def test_sat_sym(self):
        fmt = FixedFormat(8, 8, overflow=Overflow.SAT_SYM)
        assert ApFixed.from_float(-500.0, fmt).to_float() == -127.0

    def test_wrap(self):
        fmt = FixedFormat(8, 8, overflow=Overflow.WRAP)
        assert ApFixed.from_float(128.0, fmt).to_float() == -128.0
        assert ApFixed.from_float(256.0, fmt).to_float() == 0.0

    def test_wrap_unsigned(self):
        fmt = FixedFormat(8, 8, signed=False, overflow=Overflow.WRAP)
        assert ApFixed.from_float(256.0, fmt).to_float() == 0.0
        assert ApFixed.from_float(257.0, fmt).to_float() == 1.0


class TestArithmetic:
    def test_add_is_exact(self):
        a = ApFixed.from_float(1.5, Q8_8_SAT)
        b = ApFixed.from_float(2.25, Q8_8_SAT)
        c = a + b
        assert c.to_float() == 3.75
        assert c.fmt.int_length == 9  # one growth bit

    def test_sub(self):
        a = ApFixed.from_float(1.0, Q8_8_SAT)
        b = ApFixed.from_float(2.5, Q8_8_SAT)
        assert (a - b).to_float() == -1.5

    def test_mul_is_exact(self):
        a = ApFixed.from_float(1.5, Q8_8_SAT)
        b = ApFixed.from_float(-2.5, Q8_8_SAT)
        c = a * b
        assert c.to_float() == -3.75
        assert c.fmt.word_length == 32

    def test_mul_mixed_formats(self):
        a = ApFixed.from_float(0.5, UQ1_15)
        b = ApFixed.from_float(0.25, UQ1_15)
        assert (a * b).to_float() == 0.125

    def test_neg(self):
        a = ApFixed.from_float(1.5, Q8_8_SAT)
        assert (-a).to_float() == -1.5

    def test_neg_of_minimum_is_representable(self):
        fmt = FixedFormat(8, 8)
        a = ApFixed(-128, fmt)
        assert (-a).to_float() == 128.0  # widened by one bit

    def test_shift_right_moves_binary_point(self):
        a = ApFixed.from_float(1.0, Q8_8_SAT)
        assert (a >> 2).to_float() == 0.25
        assert (a >> 2).raw == a.raw  # same bits, different point

    def test_shift_left(self):
        a = ApFixed.from_float(1.0, Q8_8_SAT)
        assert (a << 3).to_float() == 8.0

    def test_negative_shift_rejected(self):
        a = ApFixed.from_float(1.0, Q8_8_SAT)
        with pytest.raises(FixedPointError):
            a >> -1
        with pytest.raises(FixedPointError):
            a << -1

    def test_mixing_with_float_raises_typeerror(self):
        a = ApFixed.from_float(1.0, Q8_8_SAT)
        with pytest.raises(TypeError):
            a + 1.0  # explicit quantization required

    def test_mac_chain_matches_float(self):
        # A convolution-style MAC chain stays exact in the widened formats.
        data = [0.125, 0.5, 0.25]
        coeffs = [0.25, 0.5, 0.25]
        acc = ApFixed.from_float(0.0, UQ1_15)
        for d, c in zip(data, coeffs):
            acc = acc + ApFixed.from_float(d, UQ1_15) * ApFixed.from_float(c, UQ1_15)
        expected = sum(d * c for d, c in zip(data, coeffs))
        assert acc.to_float() == pytest.approx(expected, abs=1e-9)


class TestCast:
    def test_cast_to_narrower_quantizes(self):
        wide = FixedFormat(32, 8, quant=Quant.RND, overflow=Overflow.SAT)
        narrow = FixedFormat(8, 8, quant=Quant.RND, overflow=Overflow.SAT)
        x = ApFixed.from_float(3.6, wide)
        assert x.cast(narrow).to_float() == 4.0

    def test_cast_to_wider_is_lossless(self):
        narrow = FixedFormat(8, 4, quant=Quant.RND, overflow=Overflow.SAT)
        wide = FixedFormat(32, 8, quant=Quant.RND, overflow=Overflow.SAT)
        x = ApFixed.from_float(3.25, narrow)
        assert x.cast(wide).to_float() == x.to_float()

    def test_cast_saturates(self):
        wide = FixedFormat(32, 16, quant=Quant.RND, overflow=Overflow.SAT)
        narrow = FixedFormat(8, 4, quant=Quant.RND, overflow=Overflow.SAT)
        x = ApFixed.from_float(100.0, wide)
        assert x.cast(narrow).to_float() == narrow.max_value


class TestComparison:
    def test_eq_same_format(self):
        assert ApFixed.from_float(1.5, Q8_8_SAT) == ApFixed.from_float(1.5, Q8_8_SAT)

    def test_eq_across_formats(self):
        a = ApFixed.from_float(0.5, Q8_8_SAT)
        b = ApFixed.from_float(0.5, UQ1_15)
        assert a == b
        assert hash(a) == hash(b)

    def test_ordering(self):
        a = ApFixed.from_float(0.25, Q8_8_SAT)
        b = ApFixed.from_float(0.5, UQ1_15)
        assert a < b
        assert b > a
        assert a <= a
        assert b >= b

    def test_eq_other_type_not_equal(self):
        assert (ApFixed.from_float(1.0, Q8_8_SAT) == 1.0) is False

    def test_repr_mentions_value(self):
        assert "1.5" in repr(ApFixed.from_float(1.5, Q8_8_SAT))
