"""Tests for repro.runtime.shard: process sharding over shared memory.

Every correctness assertion is bit-identity against the in-process path —
the sharded backend re-runs the same stack code, so "close" is never good
enough.  Pools are kept small (1–3 workers) to stay fast on CI runners.
"""

import os

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    AutoscalePolicy,
    BatchToneMapper,
    ShardAutoscaler,
    ShardPool,
    ToneMapService,
)
from repro.runtime.shard import _run_slab, _slab_bounds
from repro.tonemap.fixed_blur import FixedBlurConfig, make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams

PARAMS = ToneMapParams(sigma=2.0, radius=6)


def scenes(count, size=24, color=True, base=100):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=base + i, color=color),
        )
        for i in range(count)
    ]


class TestSlabBounds:
    def test_even_split(self):
        assert _slab_bounds(8, 2) == [(0, 4), (4, 8)]

    def test_remainder_spread_over_leading_slabs(self):
        assert _slab_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_shards_than_images(self):
        assert _slab_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_bounds_partition_exactly(self):
        for count in (1, 5, 16):
            for shards in (1, 2, 3, 7):
                bounds = _slab_bounds(count, shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == count
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo


@pytest.fixture(scope="module")
def float_pool():
    with ShardPool(PARAMS, shards=2) as pool:
        yield pool


class TestShardPool:
    @pytest.mark.parametrize("color", [True, False], ids=["rgb", "gray"])
    def test_bit_identical_to_batch_mapper(self, float_pool, color):
        images = scenes(5, color=color)
        got = float_pool.run_batch(images)
        want = BatchToneMapper(PARAMS).map(images)
        assert [o.name for o in got] == [o.name for o in want]
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_fixed_config_bit_identical(self):
        images = scenes(4)
        config = FixedBlurConfig()
        with ShardPool(PARAMS, shards=3, fixed_config=config) as pool:
            got = pool.run_batch(images)
        reference = BatchToneMapper(
            ToneMapParams(
                sigma=PARAMS.sigma,
                radius=PARAMS.radius,
                blur_fn=make_fixed_blur_fn(config),
            )
        ).map(images)
        for g, w in zip(got, reference):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_more_shards_than_images(self, float_pool):
        # 1 image across a 2-worker pool: one slab, one worker idle.
        images = scenes(1)
        got = float_pool.run_batch(images)
        want = BatchToneMapper(PARAMS).map(images)
        np.testing.assert_array_equal(got[0].pixels, want[0].pixels)

    def test_run_stack_roundtrip(self, float_pool):
        stack = np.stack([im.pixels for im in scenes(3, color=False)])
        got = float_pool.run_stack(stack)
        assert got.dtype == np.float32
        want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
        np.testing.assert_array_equal(got, want)

    def test_blur_closure_rejected(self):
        params = ToneMapParams(blur_fn=make_fixed_blur_fn())
        with pytest.raises(ToneMapError):
            ShardPool(params, shards=2)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ToneMapError):
            ShardPool(PARAMS, shards=0)

    def test_empty_batch_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_batch([])

    def test_mixed_shapes_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_batch(scenes(1, size=16) + scenes(1, size=32))

    def test_non_image_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_batch([np.zeros((8, 8))])

    def test_bad_stack_rank_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_stack(np.zeros((8, 8)))


class TestWorkerPids:
    """``worker_pids()`` is an operational probe: it must never raise.

    The regression here: reading ``self._executor._processes`` without
    a snapshot raced worker respawn (the executor reference is swapped
    mid-``_respawn``) and pool shutdown (a shut-down executor tears its
    process dict down), surfacing ``AttributeError`` / ``RuntimeError``
    from a pure introspection call.
    """

    def test_live_pool_reports_worker_pids(self, float_pool):
        pids = float_pool.worker_pids()
        assert len(pids) == 2
        assert all(isinstance(pid, int) and pid > 0 for pid in pids)

    def test_closed_pool_returns_empty_list(self):
        pool = ShardPool(PARAMS, shards=1)
        pool.run_stack(np.zeros((1, 8, 8), dtype=np.float32))
        pool.close()
        assert pool.worker_pids() == []

    def test_concurrent_reads_survive_kill_and_respawn(self):
        import signal
        import threading

        stack = np.random.default_rng(0).random(
            (2, 16, 16), dtype=np.float32
        )
        errors = []
        stop = threading.Event()

        def hammer(pool):
            while not stop.is_set():
                try:
                    for pid in pool.worker_pids():
                        assert isinstance(pid, int)
                except Exception as exc:  # the regression: any raise
                    errors.append(exc)
                    return

        with ShardPool(PARAMS, shards=2) as pool:
            pool.run_stack(stack)  # warm: workers up, pids live
            threads = [
                threading.Thread(target=hammer, args=(pool,))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            try:
                # Kill a worker mid-hammer; the next batch forces the
                # pool through crash detection and executor respawn
                # while worker_pids() readers race both transitions.
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                pool.run_stack(stack)
                assert pool.worker_respawns >= 1
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
        # Readers also race close() itself (the with-exit above).
        assert pool.worker_pids() == []
        assert not errors, f"worker_pids() raised: {errors[0]!r}"


class TestZeroCopyDataPlane:
    def test_zero_copy_matches_copy_path_bit_for_bit(self, float_pool):
        stack = np.stack([im.pixels for im in scenes(4, color=False)])
        copied = float_pool.run_stack(stack)
        lease = float_pool.run_stack(stack, zero_copy=True)
        try:
            np.testing.assert_array_equal(lease.array, copied)
        finally:
            lease.release()
        want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
        np.testing.assert_array_equal(copied, want)

    def test_run_leased_roundtrip(self, float_pool):
        stack = np.stack([im.pixels for im in scenes(3)])
        in_lease = float_pool.lease_input(stack.shape)
        try:
            in_lease.array[:] = stack
            out_lease = float_pool.run_leased(in_lease)
        finally:
            in_lease.release()
        want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
        try:
            np.testing.assert_array_equal(out_lease.array, want)
        finally:
            out_lease.release()

    def test_partial_stack_count(self, float_pool):
        stack = np.stack([im.pixels for im in scenes(4, color=False)])
        in_lease = float_pool.lease_input(stack.shape)
        try:
            in_lease.array[:2] = stack[:2]
            out = float_pool.run_leased(in_lease, count=2).materialize()
        finally:
            in_lease.release()
        want = (
            BatchToneMapper(PARAMS).run_stack(stack[:2]).astype(np.float32)
        )
        np.testing.assert_array_equal(out, want)

    def test_invalid_count_rejected(self, float_pool):
        in_lease = float_pool.lease_input((2, 16, 16))
        try:
            with pytest.raises(ToneMapError):
                float_pool.run_leased(in_lease, count=3)
            with pytest.raises(ToneMapError):
                float_pool.run_leased(in_lease, count=0)
        finally:
            in_lease.release()

    def test_released_lease_rejected(self, float_pool):
        in_lease = float_pool.lease_input((2, 16, 16))
        in_lease.release()
        with pytest.raises(ToneMapError):
            float_pool.run_leased(in_lease)

    def test_steady_state_allocates_nothing(self, float_pool):
        stack = np.stack([im.pixels for im in scenes(3, color=False)])
        float_pool.run_stack(stack)  # warm the size class
        before = float_pool.data_plane_stats
        for _ in range(4):
            float_pool.run_stack(stack)
        after = float_pool.data_plane_stats
        assert (
            after.arena.segments_created == before.arena.segments_created
        )
        assert after.arena.reuses > before.arena.reuses
        assert after.batches == before.batches + 4

    def test_copy_counters_track_staging(self):
        stack = np.stack([im.pixels for im in scenes(2, color=False)])
        with ShardPool(PARAMS, shards=1) as pool:
            pool.run_stack(stack)
            stats = pool.data_plane_stats
            # run_stack stages once in and once (materialize) out.
            assert stats.arena.bytes_copied_in == stack.nbytes
            assert stats.arena.bytes_materialized == stack.nbytes
            assert stats.copies_per_frame == pytest.approx(2.0)
            # The leased path adds nothing.
            in_lease = pool.lease_input(stack.shape)
            in_lease.array[:] = stack
            pool.run_leased(in_lease).release()
            in_lease.release()
            assert (
                pool.data_plane_stats.bytes_staged == stats.bytes_staged
            )

    def test_worker_error_mid_flight_recovers(self, float_pool):
        # A worker raising (bad segment name) must not poison the pool or
        # leak leases; the next batch runs normally.
        future = float_pool._executor.submit(
            _run_slab, "psm_does_not_exist", "psm_nor_this",
            (1, 8, 8), 0, 1, False, False,
        )
        with pytest.raises(FileNotFoundError):
            future.result()
        stack = np.stack([im.pixels for im in scenes(2, color=False)])
        want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
        np.testing.assert_array_equal(float_pool.run_stack(stack), want)
        assert float_pool.arena.stats.leases_active == 0

    def test_failed_batch_releases_leases(self, float_pool):
        # Force the dispatch itself to fail: a released input lease is
        # rejected before any worker runs, and the output lease (had one
        # been taken) must not stay checked out.
        active_before = float_pool.arena.stats.leases_active
        lease = float_pool.lease_input((2, 16, 16))
        lease.release()
        with pytest.raises(ToneMapError):
            float_pool.run_leased(lease)
        assert float_pool.arena.stats.leases_active == active_before


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)
class TestShmLeakCheck:
    def test_no_segments_leaked_across_pool_lifetime(self):
        def names():
            return {
                n for n in os.listdir("/dev/shm") if n.startswith("psm_")
            }

        before = names()
        with ShardPool(PARAMS, shards=2) as pool:
            stack = np.stack([im.pixels for im in scenes(3, color=False)])
            pool.run_stack(stack)
            # Error path: a failing slab must not strand segments either.
            future = pool._executor.submit(
                _run_slab, "psm_missing", "psm_missing_too",
                (1, 8, 8), 0, 1, False, False,
            )
            with pytest.raises(FileNotFoundError):
                future.result()
            pool.run_stack(stack)
            assert names() - before  # arena segments exist while open
        assert names() - before == set(), "pool close leaked /dev/shm"


class TestAutoscaler:
    def policy(self, **kwargs):
        defaults = dict(
            min_shards=1, max_shards=4, grow_patience=2, shrink_patience=3
        )
        defaults.update(kwargs)
        return AutoscalePolicy(**defaults)

    def test_grow_needs_sustained_pressure(self):
        scaler = ShardAutoscaler(self.policy())
        assert scaler.observe(1, queue_depth=5) == 1  # first hot tick
        assert scaler.observe(1, queue_depth=5) == 2  # patience met

    def test_single_burst_does_not_grow(self):
        scaler = ShardAutoscaler(self.policy())
        assert scaler.observe(1, queue_depth=5) == 1
        assert scaler.observe(1, queue_depth=1) == 1  # calm resets
        assert scaler.observe(1, queue_depth=5) == 1  # must re-earn

    def test_shrink_needs_sustained_idle(self):
        scaler = ShardAutoscaler(self.policy())
        width = 3
        for _ in range(2):
            assert scaler.observe(width, queue_depth=0) == width
        assert scaler.observe(width, queue_depth=0) == width - 1

    def test_flapping_load_holds_width(self):
        scaler = ShardAutoscaler(self.policy())
        width = 2
        for depth in (0, 5, 0, 5, 0, 5):
            width = scaler.observe(width, queue_depth=depth)
        assert width == 2

    def test_bounds_respected(self):
        scaler = ShardAutoscaler(self.policy(max_shards=2))
        width = 2
        for _ in range(10):
            width = scaler.observe(width, queue_depth=10)
        assert width == 2
        scaler = ShardAutoscaler(self.policy(min_shards=2))
        width = 2
        for _ in range(10):
            width = scaler.observe(width, queue_depth=0)
        assert width == 2

    def test_latency_signal_grows(self):
        scaler = ShardAutoscaler(
            self.policy(target_p95_ms=10.0, grow_patience=2)
        )
        assert scaler.observe(1, queue_depth=0, p95_ms=50.0) == 1
        assert scaler.observe(1, queue_depth=0, p95_ms=50.0) == 2

    def test_latency_ignored_without_target(self):
        scaler = ShardAutoscaler(self.policy())
        assert scaler.observe(1, queue_depth=0, p95_ms=1e6) == 1
        assert scaler.observe(1, queue_depth=0, p95_ms=1e6) == 1

    def test_policy_validation(self):
        with pytest.raises(ToneMapError):
            AutoscalePolicy(min_shards=0)
        with pytest.raises(ToneMapError):
            AutoscalePolicy(min_shards=3, max_shards=2)
        with pytest.raises(ToneMapError):
            AutoscalePolicy(grow_patience=0)


class TestPoolAutoscaling:
    def test_observe_widens_and_narrows_active_set(self):
        policy = AutoscalePolicy(
            min_shards=1, max_shards=2, grow_patience=2, shrink_patience=2
        )
        with ShardPool(PARAMS, shards=1, autoscale=True, policy=policy) as pool:
            assert pool.active_shards == 1
            pool.observe(queue_depth=4)
            pool.observe(queue_depth=4)
            assert pool.active_shards == 2
            assert pool.scale_ups == 1
            # Results stay bit-identical at the new width.
            stack = np.stack([im.pixels for im in scenes(3, color=False)])
            want = (
                BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
            )
            np.testing.assert_array_equal(pool.run_stack(stack), want)
            pool.observe(queue_depth=0)
            pool.observe(queue_depth=0)
            assert pool.active_shards == 1
            assert pool.scale_downs == 1

    def test_observe_noop_without_autoscale(self):
        with ShardPool(PARAMS, shards=2) as pool:
            assert pool.observe(queue_depth=100) == 2
            assert pool.scale_ups == 0

    def test_max_shards_below_shards_rejected(self):
        with pytest.raises(ToneMapError):
            ShardPool(PARAMS, shards=3, autoscale=True, max_shards=2)


class TestServiceSharding:
    def test_sharded_service_matches_local(self):
        images = scenes(3, size=16) + scenes(3, size=24) + scenes(2, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=2) as sharded:
            got = sharded.map_many(images)
            stats = sharded.stats
        with ToneMapService(PARAMS, batch_size=2) as local:
            want = local.map_many(images)
        assert stats.images == len(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_sharded_fixed_service_matches_local(self):
        images = scenes(4, size=16)
        config = FixedBlurConfig()
        with ToneMapService(
            PARAMS, batch_size=2, shards=2, fixed_config=config
        ) as sharded:
            got = sharded.map_many(images)
        with ToneMapService(PARAMS, batch_size=2, fixed_config=config) as local:
            want = local.map_many(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_shards_with_blur_closure_rejected(self):
        params = ToneMapParams(blur_fn=make_fixed_blur_fn())
        with pytest.raises(ToneMapError):
            ToneMapService(params, shards=2)

    def test_fixed_config_and_blur_fn_conflict_rejected(self):
        params = ToneMapParams(blur_fn=make_fixed_blur_fn())
        with pytest.raises(ToneMapError):
            ToneMapService(params, fixed_config=FixedBlurConfig())
