"""Tests for repro.runtime.shard: process sharding over shared memory.

Every correctness assertion is bit-identity against the in-process path —
the sharded backend re-runs the same stack code, so "close" is never good
enough.  Pools are kept small (1–3 workers) to stay fast on CI runners.
"""

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import BatchToneMapper, ShardPool, ToneMapService
from repro.runtime.shard import _slab_bounds
from repro.tonemap.fixed_blur import FixedBlurConfig, make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams

PARAMS = ToneMapParams(sigma=2.0, radius=6)


def scenes(count, size=24, color=True, base=100):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=base + i, color=color),
        )
        for i in range(count)
    ]


class TestSlabBounds:
    def test_even_split(self):
        assert _slab_bounds(8, 2) == [(0, 4), (4, 8)]

    def test_remainder_spread_over_leading_slabs(self):
        assert _slab_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_shards_than_images(self):
        assert _slab_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_bounds_partition_exactly(self):
        for count in (1, 5, 16):
            for shards in (1, 2, 3, 7):
                bounds = _slab_bounds(count, shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == count
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo


@pytest.fixture(scope="module")
def float_pool():
    with ShardPool(PARAMS, shards=2) as pool:
        yield pool


class TestShardPool:
    @pytest.mark.parametrize("color", [True, False], ids=["rgb", "gray"])
    def test_bit_identical_to_batch_mapper(self, float_pool, color):
        images = scenes(5, color=color)
        got = float_pool.run_batch(images)
        want = BatchToneMapper(PARAMS).map(images)
        assert [o.name for o in got] == [o.name for o in want]
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_fixed_config_bit_identical(self):
        images = scenes(4)
        config = FixedBlurConfig()
        with ShardPool(PARAMS, shards=3, fixed_config=config) as pool:
            got = pool.run_batch(images)
        reference = BatchToneMapper(
            ToneMapParams(
                sigma=PARAMS.sigma,
                radius=PARAMS.radius,
                blur_fn=make_fixed_blur_fn(config),
            )
        ).map(images)
        for g, w in zip(got, reference):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_more_shards_than_images(self, float_pool):
        # 1 image across a 2-worker pool: one slab, one worker idle.
        images = scenes(1)
        got = float_pool.run_batch(images)
        want = BatchToneMapper(PARAMS).map(images)
        np.testing.assert_array_equal(got[0].pixels, want[0].pixels)

    def test_run_stack_roundtrip(self, float_pool):
        stack = np.stack([im.pixels for im in scenes(3, color=False)])
        got = float_pool.run_stack(stack)
        assert got.dtype == np.float32
        want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
        np.testing.assert_array_equal(got, want)

    def test_blur_closure_rejected(self):
        params = ToneMapParams(blur_fn=make_fixed_blur_fn())
        with pytest.raises(ToneMapError):
            ShardPool(params, shards=2)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ToneMapError):
            ShardPool(PARAMS, shards=0)

    def test_empty_batch_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_batch([])

    def test_mixed_shapes_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_batch(scenes(1, size=16) + scenes(1, size=32))

    def test_non_image_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_batch([np.zeros((8, 8))])

    def test_bad_stack_rank_rejected(self, float_pool):
        with pytest.raises(ToneMapError):
            float_pool.run_stack(np.zeros((8, 8)))


class TestServiceSharding:
    def test_sharded_service_matches_local(self):
        images = scenes(3, size=16) + scenes(3, size=24) + scenes(2, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=2) as sharded:
            got = sharded.map_many(images)
            stats = sharded.stats
        with ToneMapService(PARAMS, batch_size=2) as local:
            want = local.map_many(images)
        assert stats.images == len(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_sharded_fixed_service_matches_local(self):
        images = scenes(4, size=16)
        config = FixedBlurConfig()
        with ToneMapService(
            PARAMS, batch_size=2, shards=2, fixed_config=config
        ) as sharded:
            got = sharded.map_many(images)
        with ToneMapService(PARAMS, batch_size=2, fixed_config=config) as local:
            want = local.map_many(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_shards_with_blur_closure_rejected(self):
        params = ToneMapParams(blur_fn=make_fixed_blur_fn())
        with pytest.raises(ToneMapError):
            ToneMapService(params, shards=2)

    def test_fixed_config_and_blur_fn_conflict_rejected(self):
        params = ToneMapParams(blur_fn=make_fixed_blur_fn())
        with pytest.raises(ToneMapError):
            ToneMapService(params, fixed_config=FixedBlurConfig())
