"""Tests for repro.runtime (BatchToneMapper + ToneMapService)."""

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.image.hdr import HDRImage
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import BatchToneMapper, ServiceStats, ToneMapService
from repro.tonemap.fixed_blur import make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams, ToneMapper

PARAMS = ToneMapParams(sigma=2.0, radius=6)


def scenes(count, size=32, color=True):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=100 + i, color=color),
        )
        for i in range(count)
    ]


class TestBatchToneMapper:
    @pytest.mark.parametrize("color", [True, False], ids=["rgb", "gray"])
    def test_matches_per_image_pipeline(self, color):
        images = scenes(3, color=color)
        batch = BatchToneMapper(PARAMS).run(images)
        single = ToneMapper(PARAMS)
        for image, output, mask in zip(images, batch.outputs, batch.masks):
            reference = single.run(image)
            np.testing.assert_allclose(mask, reference.mask, atol=1e-6)
            np.testing.assert_allclose(
                output.pixels, reference.output.pixels, atol=1e-5
            )

    def test_fixed_point_blur_fn_matches_per_image(self):
        params = ToneMapParams(
            sigma=2.0, radius=6, blur_fn=make_fixed_blur_fn()
        )
        images = scenes(2)
        batch = BatchToneMapper(params).run(images)
        single = ToneMapper(params)
        for image, output in zip(images, batch.outputs):
            np.testing.assert_allclose(
                output.pixels, single.run(image).output.pixels, atol=1e-5
            )

    def test_output_metadata(self):
        images = scenes(2, size=16)
        result = BatchToneMapper(PARAMS).run(images)
        assert result.pixels == 2 * 16 * 16
        assert result.masks.shape == (2, 16, 16)
        assert [o.name for o in result.outputs] == [
            f"{img.name}:tonemapped" for img in images
        ]

    def test_map_convenience(self):
        images = scenes(2, size=16)
        outputs = BatchToneMapper(PARAMS).map(images)
        assert len(outputs) == 2
        assert all(isinstance(o, HDRImage) for o in outputs)

    def test_empty_batch_rejected(self):
        with pytest.raises(ToneMapError):
            BatchToneMapper(PARAMS).run([])

    def test_mixed_shapes_rejected(self):
        images = scenes(1, size=16) + scenes(1, size=32)
        with pytest.raises(ToneMapError):
            BatchToneMapper(PARAMS).run(images)

    def test_non_image_rejected(self):
        with pytest.raises(ToneMapError):
            BatchToneMapper(PARAMS).run([np.zeros((8, 8))])

    def test_black_image_passes_through(self):
        black = HDRImage(np.zeros((16, 16)), name="black")
        result = BatchToneMapper(PARAMS).run([black])
        np.testing.assert_array_equal(result.outputs[0].pixels, 0.0)

    def test_untrusted_blur_fn_nan_is_caught(self):
        # A user-supplied blur_fn is outside the internal finiteness
        # proof, so its outputs keep full HDRImage validation: NaN must
        # surface as ImageError, not silently adopted garbage.
        from repro.errors import ImageError

        def nan_blur(plane, kernel):
            out = np.array(plane, dtype=np.float64)
            out[0, 0] = np.nan
            return out

        params = ToneMapParams(sigma=2.0, radius=6, blur_fn=nan_blur)
        with pytest.raises(ImageError):
            BatchToneMapper(params).run(scenes(1))

    def test_trusted_fixed_blur_fn_keeps_adopt_fast_path(self):
        # The internal fixed-point closure is marked trusted_finite, so
        # its outputs are adopted (views, read-only) rather than
        # re-validated — and stay correct.
        params = ToneMapParams(sigma=2.0, radius=6,
                               blur_fn=make_fixed_blur_fn())
        outputs = BatchToneMapper(params).run(scenes(2)).outputs
        for image in outputs:
            assert image.pixels.dtype == np.float32
            assert not image.pixels.flags.writeable
            assert np.isfinite(image.pixels).all()


class TestToneMapService:
    def test_map_many_matches_batch(self):
        images = scenes(5, size=16)
        with ToneMapService(PARAMS, batch_size=2) as service:
            outputs = service.map_many(images)
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_mixed_shapes_grouped(self):
        images = scenes(2, size=16) + scenes(2, size=24) + scenes(1, size=16)
        with ToneMapService(PARAMS, batch_size=2) as service:
            outputs = service.map_many(images)
        single = ToneMapper(PARAMS)
        assert len(outputs) == len(images)
        for image, output in zip(images, outputs):
            assert output.pixels.shape == image.pixels.shape
            np.testing.assert_allclose(
                output.pixels, single.run(image).output.pixels, atol=1e-5
            )

    def test_submit_single(self):
        image = scenes(1, size=16)[0]
        with ToneMapService(PARAMS) as service:
            future = service.submit(image)
            output = future.result(timeout=30)
        np.testing.assert_array_equal(
            output.pixels, BatchToneMapper(PARAMS).map([image])[0].pixels
        )

    def test_submit_propagates_errors(self):
        with ToneMapService(PARAMS) as service:
            future = service.submit("not an image")
            with pytest.raises(ToneMapError):
                future.result(timeout=30)

    def test_stats_accumulate(self):
        images = scenes(4, size=16)
        with ToneMapService(PARAMS, batch_size=2) as service:
            assert service.stats == ServiceStats()
            assert service.stats.pixels_per_sec == 0.0
            service.map_many(images)
            stats = service.stats
        assert stats.images == 4
        assert stats.pixels == 4 * 16 * 16
        assert stats.seconds > 0.0
        assert stats.pixels_per_sec > 0.0

    def test_empty_input(self):
        with ToneMapService(PARAMS) as service:
            assert service.map_many([]) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ToneMapError):
            ToneMapService(PARAMS, batch_size=0)

    def test_non_image_rejected_before_submit(self):
        with ToneMapService(PARAMS) as service:
            with pytest.raises(ToneMapError):
                service.map_many([np.zeros((4, 4))])

    def test_run_batch_public_api(self):
        images = scenes(3, size=16)
        with ToneMapService(PARAMS) as service:
            outputs = service.run_batch(images)
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_submit_batch_future(self):
        images = scenes(2, size=16)
        with ToneMapService(PARAMS) as service:
            outputs = service.submit_batch(images).result(timeout=30)
        assert len(outputs) == 2

    def test_stats_batches_and_latency(self):
        images = scenes(4, size=16)
        with ToneMapService(PARAMS, batch_size=2) as service:
            service.map_many(images)
            stats = service.stats
        assert stats.batches == 2
        assert stats.queue_depth == 0
        assert stats.queue_peak >= 1
        assert stats.latency_p50_ms > 0.0
        assert stats.latency_p95_ms >= stats.latency_p50_ms
        assert stats.latency_p99_ms >= stats.latency_p95_ms

    def test_queue_depth_counts_queued_batches(self):
        # Batches waiting behind the thread pool are "admitted but not
        # finished" and must show up in queue_depth, not just the ones a
        # worker has started executing.
        import threading

        gate = threading.Event()

        def slow_blur(plane, kernel):
            gate.wait(timeout=30)
            from repro.tonemap.gaussian import separable_blur

            return separable_blur(plane, kernel)

        params = ToneMapParams(sigma=2.0, radius=6, blur_fn=slow_blur)
        with ToneMapService(params, max_workers=1) as service:
            futures = [
                service.submit_batch(scenes(1, size=16)) for _ in range(3)
            ]
            assert service.stats.queue_depth == 3
            assert service.stats.queue_peak == 3
            gate.set()
            for future in futures:
                future.result(timeout=30)
            assert service.stats.queue_depth == 0

    def test_failed_batch_releases_queue_slot(self):
        with ToneMapService(PARAMS) as service:
            with pytest.raises(ToneMapError):
                service.run_batch([])
            assert service.stats.queue_depth == 0

    def test_fixed_config_matches_blur_fn_closure(self):
        from repro.tonemap.fixed_blur import FixedBlurConfig

        images = scenes(3, size=16)
        with ToneMapService(
            PARAMS, fixed_config=FixedBlurConfig()
        ) as service:
            got = service.map_many(images)
        closure_params = ToneMapParams(
            sigma=2.0, radius=6, blur_fn=make_fixed_blur_fn()
        )
        want = BatchToneMapper(closure_params).map(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)


class TestRunStack:
    def test_matches_run_on_wrapped_images(self):
        images = scenes(3, size=16)
        stack = np.stack([image.pixels for image in images])
        mapper = BatchToneMapper(PARAMS)
        got = mapper.run_stack(stack)
        want = mapper.run(images)
        for plane, output in zip(got, want.outputs):
            np.testing.assert_array_equal(
                plane.astype(np.float32), output.pixels
            )

    def test_out_parameter_is_filled_and_returned(self):
        stack = np.stack([im.pixels for im in scenes(2, size=16, color=False)])
        out = np.empty(stack.shape, dtype=np.float32)
        mapper = BatchToneMapper(PARAMS)
        returned = mapper.run_stack(stack, out=out)
        assert returned is out
        np.testing.assert_array_equal(
            out, mapper.run_stack(stack).astype(np.float32)
        )

    def test_bad_shapes_rejected(self):
        mapper = BatchToneMapper(PARAMS)
        with pytest.raises(ToneMapError):
            mapper.run_stack(np.zeros((8, 8)))
        with pytest.raises(ToneMapError):
            mapper.run_stack(np.zeros((2, 8, 8, 4)))
        with pytest.raises(ToneMapError):
            mapper.run_stack(
                np.zeros((2, 8, 8)), out=np.zeros((3, 8, 8), dtype=np.float32)
            )

    def test_batched_blur_fn_protocol_used(self):
        # A blur_fn exposing .blur_batch must be called once per stack,
        # not once per plane.
        calls = {"batch": 0, "plane": 0}

        def plane_fn(plane, kernel):
            calls["plane"] += 1
            from repro.tonemap.gaussian import separable_blur

            return separable_blur(plane, kernel)

        def batch_fn(planes, kernel):
            calls["batch"] += 1
            from repro.tonemap.gaussian import blur_batch

            return blur_batch(planes, kernel)

        plane_fn.blur_batch = batch_fn
        params = ToneMapParams(sigma=2.0, radius=6, blur_fn=plane_fn)
        BatchToneMapper(params).run(scenes(3, size=16))
        assert calls["batch"] == 1
        assert calls["plane"] == 0
