"""Tests for repro.runtime (BatchToneMapper + ToneMapService)."""

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.image.hdr import HDRImage
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import BatchToneMapper, ServiceStats, ToneMapService
from repro.tonemap.fixed_blur import make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams, ToneMapper

PARAMS = ToneMapParams(sigma=2.0, radius=6)


def scenes(count, size=32, color=True):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=100 + i, color=color),
        )
        for i in range(count)
    ]


class TestBatchToneMapper:
    @pytest.mark.parametrize("color", [True, False], ids=["rgb", "gray"])
    def test_matches_per_image_pipeline(self, color):
        images = scenes(3, color=color)
        batch = BatchToneMapper(PARAMS).run(images)
        single = ToneMapper(PARAMS)
        for image, output, mask in zip(images, batch.outputs, batch.masks):
            reference = single.run(image)
            np.testing.assert_allclose(mask, reference.mask, atol=1e-6)
            np.testing.assert_allclose(
                output.pixels, reference.output.pixels, atol=1e-5
            )

    def test_fixed_point_blur_fn_matches_per_image(self):
        params = ToneMapParams(
            sigma=2.0, radius=6, blur_fn=make_fixed_blur_fn()
        )
        images = scenes(2)
        batch = BatchToneMapper(params).run(images)
        single = ToneMapper(params)
        for image, output in zip(images, batch.outputs):
            np.testing.assert_allclose(
                output.pixels, single.run(image).output.pixels, atol=1e-5
            )

    def test_output_metadata(self):
        images = scenes(2, size=16)
        result = BatchToneMapper(PARAMS).run(images)
        assert result.pixels == 2 * 16 * 16
        assert result.masks.shape == (2, 16, 16)
        assert [o.name for o in result.outputs] == [
            f"{img.name}:tonemapped" for img in images
        ]

    def test_map_convenience(self):
        images = scenes(2, size=16)
        outputs = BatchToneMapper(PARAMS).map(images)
        assert len(outputs) == 2
        assert all(isinstance(o, HDRImage) for o in outputs)

    def test_empty_batch_rejected(self):
        with pytest.raises(ToneMapError):
            BatchToneMapper(PARAMS).run([])

    def test_mixed_shapes_rejected(self):
        images = scenes(1, size=16) + scenes(1, size=32)
        with pytest.raises(ToneMapError):
            BatchToneMapper(PARAMS).run(images)

    def test_non_image_rejected(self):
        with pytest.raises(ToneMapError):
            BatchToneMapper(PARAMS).run([np.zeros((8, 8))])

    def test_black_image_passes_through(self):
        black = HDRImage(np.zeros((16, 16)), name="black")
        result = BatchToneMapper(PARAMS).run([black])
        np.testing.assert_array_equal(result.outputs[0].pixels, 0.0)


class TestToneMapService:
    def test_map_many_matches_batch(self):
        images = scenes(5, size=16)
        with ToneMapService(PARAMS, batch_size=2) as service:
            outputs = service.map_many(images)
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_mixed_shapes_grouped(self):
        images = scenes(2, size=16) + scenes(2, size=24) + scenes(1, size=16)
        with ToneMapService(PARAMS, batch_size=2) as service:
            outputs = service.map_many(images)
        single = ToneMapper(PARAMS)
        assert len(outputs) == len(images)
        for image, output in zip(images, outputs):
            assert output.pixels.shape == image.pixels.shape
            np.testing.assert_allclose(
                output.pixels, single.run(image).output.pixels, atol=1e-5
            )

    def test_submit_single(self):
        image = scenes(1, size=16)[0]
        with ToneMapService(PARAMS) as service:
            future = service.submit(image)
            output = future.result(timeout=30)
        np.testing.assert_array_equal(
            output.pixels, BatchToneMapper(PARAMS).map([image])[0].pixels
        )

    def test_submit_propagates_errors(self):
        with ToneMapService(PARAMS) as service:
            future = service.submit("not an image")
            with pytest.raises(ToneMapError):
                future.result(timeout=30)

    def test_stats_accumulate(self):
        images = scenes(4, size=16)
        with ToneMapService(PARAMS, batch_size=2) as service:
            assert service.stats == ServiceStats()
            assert service.stats.pixels_per_sec == 0.0
            service.map_many(images)
            stats = service.stats
        assert stats.images == 4
        assert stats.pixels == 4 * 16 * 16
        assert stats.seconds > 0.0
        assert stats.pixels_per_sec > 0.0

    def test_empty_input(self):
        with ToneMapService(PARAMS) as service:
            assert service.map_many([]) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ToneMapError):
            ToneMapService(PARAMS, batch_size=0)

    def test_non_image_rejected_before_submit(self):
        with ToneMapService(PARAMS) as service:
            with pytest.raises(ToneMapError):
                service.map_many([np.zeros((4, 4))])
