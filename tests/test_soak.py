"""Concurrency soak: hammer the multi-tenant runtime and hold invariants.

Marked ``slow``: the default CI test job deselects it (``-m "not
slow"``) and the nightly job runs it with a longer duration via
``SOAK_SECONDS``.  The tier-1 local run keeps the default short soak so
the invariants stay continuously exercised.

Invariants held under sustained mixed-shape multi-tenant load:

* weighted fairness — saturating tenants are served in proportion to
  their DRR weights (ratio band + Jain index floor);
* zero steady-state SHM allocations — the arena stops creating
  segments once warm, storms and all;
* clean shutdown — every future resolves, nothing stays leased, and
  ``/dev/shm`` ends exactly as it started.
"""

import os
import threading
import time

import pytest

from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import TenantConfig, ToneMapIngestor, ToneMapService
from repro.tonemap.pipeline import ToneMapParams

pytestmark = pytest.mark.slow

PARAMS = ToneMapParams(sigma=2.0, radius=6)
SHM_DIR = "/dev/shm"

#: Soak duration; the nightly CI job raises it (e.g. SOAK_SECONDS=20).
SOAK_SECONDS = float(os.environ.get("SOAK_SECONDS", "3.0"))


def shm_names():
    if not os.path.isdir(SHM_DIR):
        pytest.skip("no /dev/shm to scan on this platform")
    return set(os.listdir(SHM_DIR))


def test_multi_tenant_soak_fairness_and_zero_allocs():
    baseline_shm = shm_names()
    # Pre-built frames so submitter threads measure the runtime, not the
    # synthetic-scene generator.
    frame_a = [
        make_scene(
            "window_interior", SceneParams(height=24, width=24, seed=i)
        )
        for i in range(4)
    ]
    frame_b = [
        make_scene(
            "window_interior", SceneParams(height=32, width=32, seed=50 + i)
        )
        for i in range(4)
    ]
    deadline = time.perf_counter() + SOAK_SECONDS
    stop = threading.Event()
    futures_by_tenant = {"heavy": [], "light": [], "bursty": []}
    errors = []

    with ToneMapService(
        PARAMS, batch_size=4, max_workers=4, shards=2, arena_slots=8
    ) as service:
        ingestor = ToneMapIngestor(
            service,
            max_delay_ms=2,
            queue_limit=48,
            per_tenant_queue_limit=16,
            policy="block",
            tenants={
                "heavy": TenantConfig(weight=2.0),
                "light": TenantConfig(weight=1.0),
                "bursty": TenantConfig(weight=1.0),
            },
        )

        def submitter(tenant, frames):
            index = 0
            try:
                while not stop.is_set():
                    future = ingestor.submit(frames[index % 4], tenant)
                    futures_by_tenant[tenant].append(future)
                    index += 1
            except Exception as exc:  # pragma: no cover - should not happen
                errors.append((tenant, exc))

        # heavy and light fight over the *same* shape (the direct DRR
        # contention the weights must resolve); bursty stresses the
        # mixed-shape path with start/stop pulses of a second shape.
        threads = [
            threading.Thread(target=submitter, args=("heavy", frame_a)),
            threading.Thread(target=submitter, args=("light", frame_a)),
        ]

        def bursty():
            try:
                while not stop.is_set():
                    for _ in range(8):
                        if stop.is_set():
                            return
                        futures_by_tenant["bursty"].append(
                            ingestor.submit(
                                frame_b[len(futures_by_tenant["bursty"]) % 4],
                                "bursty",
                            )
                        )
                    time.sleep(0.01)
            except Exception as exc:  # pragma: no cover
                errors.append(("bursty", exc))

        threads.append(threading.Thread(target=bursty))
        for thread in threads:
            thread.start()

        while time.perf_counter() < deadline:
            time.sleep(0.05)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "submitter thread hung"

        assert not errors, errors
        # --- every soak future resolves (nothing hung, nothing lost) --
        for tenant, futures in futures_by_tenant.items():
            assert futures, f"tenant {tenant} never submitted"
            for future in futures:
                assert future.result(timeout=60) is not None
        # --- zero steady-state SHM allocations ------------------------
        # The soak drove the arena to its full working-set depth; an
        # echo round of the very same traffic over the warm pool must
        # not create a single further segment (and the soak itself must
        # never have overflowed into transient ones).
        warm = service.pool.data_plane_stats
        assert warm.batches > 0, "soak produced no load"
        assert warm.arena.overflow == 0, "soak overflowed the slab ring"
        for tenant, frames in (
            ("heavy", frame_a), ("light", frame_a), ("bursty", frame_b)
        ):
            # Two waves of two batches each: echo concurrency stays at
            # or below what the soak already drove per shape, so any new
            # segment here is a genuine steady-state allocation.
            for _ in range(2):
                ingestor.map_many(frames * 2, tenant)
        echo = service.pool.data_plane_stats
        assert (
            echo.arena.segments_created == warm.arena.segments_created
        ), "steady-state serving allocated shared memory"
        assert echo.arena.overflow == warm.arena.overflow
        ingestor.close()
        stats = ingestor.stats
        assert stats.queue_depth == 0
        assert stats.shed == 0 and stats.rejected == 0  # block policy
        # --- weighted fairness ----------------------------------------
        by_name = {t.tenant: t for t in stats.tenants}
        heavy, light = by_name["heavy"], by_name["light"]
        soak_submitted = sum(len(f) for f in futures_by_tenant.values())
        served_total = sum(t.served for t in stats.tenants)
        assert served_total == soak_submitted + 3 * 16  # echo rounds
        ratio = heavy.served / max(1, light.served)
        assert 1.3 <= ratio <= 3.0, (
            f"heavy/light served ratio {ratio:.2f} strayed from the 2:1 "
            f"weights (heavy {heavy.served}, light {light.served})"
        )
        # Jain's index over the *saturating* tenants (DRR promises
        # weight-proportional service only to backlogged queues; bursty
        # under-demands on purpose and legitimately gets less).
        from dataclasses import replace

        saturated = replace(stats, tenants=(heavy, light))
        assert saturated.fairness_index > 0.9, saturated.fairness_index
        # Nobody starved: the light tenant's p95 stayed in the same
        # regime as the heavy tenant's (not unboundedly behind it).
        assert light.latency_p95_ms <= 4 * max(1.0, heavy.latency_p95_ms)
        # --- data plane ends clean ------------------------------------
        assert service.pool.arena.stats.leases_active == 0
    assert shm_names() <= baseline_shm
