"""Unit tests for the reliability layer: clock, fault plans, breaker,
deadline shedding, and brownout routing.

Everything time-dependent runs against :class:`repro.runtime.FakeClock`
— no sleeps, no wall-clock flakiness.  Integration-grade chaos (real
SIGKILLs, real watchdog timeouts) lives in ``test_chaos.py``.
"""

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    ShardCrashError,
    ToneMapError,
)
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    BatchToneMapper,
    BreakerPolicy,
    CircuitBreaker,
    FakeClock,
    FaultInjector,
    FaultPlan,
    ToneMapIngestor,
    ToneMapService,
)
from repro.runtime.faults import NETWORK_FAULT_KINDS, resolve_injector
from repro.runtime.reliability import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.tonemap.pipeline import ToneMapParams

PARAMS = ToneMapParams(sigma=2.0, radius=6)


class TestFakeClock:
    def test_now_advance_and_sleep(self):
        clock = FakeClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5
        clock.sleep(0.5)  # sleep is just advance: no real waiting
        assert clock.now() == 13.0

    def test_negative_advance_rejected(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestFaultPlan:
    def test_spec_round_trip(self):
        spec = "kill@4:5,hang@1,slow%0.2,seed=7,hang_ms=500"
        plan = FaultPlan.from_spec(spec)
        assert plan.kill_batches == (4, 5)
        assert plan.hang_batches == (1,)
        assert plan.slow_probability == 0.2
        assert plan.seed == 7
        assert plan.hang_ms == 500
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(kill_batches=(0,)).empty
        assert FaultPlan.from_spec("") == FaultPlan()

    def test_kinds_for_is_deterministic(self):
        plan = FaultPlan(seed=11, hang_probability=0.5, kill_batches=(3,))
        first = [plan.kinds_for(i) for i in range(64)]
        second = [plan.kinds_for(i) for i in range(64)]
        assert first == second
        assert "kill" in plan.kinds_for(3)
        # A different seed draws a different probabilistic pattern.
        other = FaultPlan(seed=12, hang_probability=0.5)
        assert [plan.kinds_for(i) - {"kill"} for i in range(64)] != [
            other.kinds_for(i) for i in range(64)
        ]

    def test_validation(self):
        with pytest.raises(ToneMapError):
            FaultPlan(kill_probability=1.5)
        with pytest.raises(ToneMapError):
            FaultPlan(kill_batches=(-1,))
        with pytest.raises(ToneMapError):
            FaultPlan(hang_ms=0)
        with pytest.raises(ToneMapError):
            FaultPlan.from_spec("explode@3")
        with pytest.raises(ToneMapError):
            FaultPlan.from_spec("kill@notanumber")

    def test_injector_streams_are_independent_and_counted(self):
        plan = FaultPlan(kill_batches=(0,), slow_batches=(0, 1))
        injector = FaultInjector(plan)
        index, kinds = injector.next_attempt()
        assert index == 0 and kinds == {"kill", "slow"}
        # The in-process stream only ever reports slow-jitter: brownout
        # execution must not "crash" the parent process.
        index, kinds = injector.next_inproc()
        assert kinds <= {"slow"}
        assert injector.attempts == 1
        assert injector.injected["kill"] == 1

    def test_worker_directive_kill_outranks_hang(self):
        injector = FaultInjector(FaultPlan(hang_ms=100))
        assert injector.worker_directive({"kill", "hang"}) == ("kill", 0.0)
        kind, value = injector.worker_directive({"hang"})
        assert kind == "hang" and value == pytest.approx(0.1)
        assert injector.worker_directive({"slow", "exhaust"}) is None

    def test_resolve_injector_forms(self):
        injector = FaultInjector(FaultPlan())
        assert resolve_injector(injector) is injector
        assert isinstance(resolve_injector("kill@1"), FaultInjector)
        assert isinstance(resolve_injector(FaultPlan()), FaultInjector)
        with pytest.raises(ToneMapError):
            resolve_injector(123)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "hang@2,seed=5")
        plan = FaultPlan.from_env()
        assert plan.hang_batches == (2,) and plan.seed == 5
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert FaultPlan.from_env() is None

    def test_network_kind_spec_round_trip(self):
        spec = "host-loss@1,partition@3,slow-link%0.25,jitter_ms=4"
        plan = FaultPlan.from_spec(spec)
        assert plan.host_loss_batches == (1,)
        assert plan.partition_batches == (3,)
        assert plan.slow_link_probability == 0.25
        # Hyphen and underscore spellings parse identically; to_spec
        # emits the hyphen display form and round-trips.
        underscored = "host_loss@1,partition@3,slow_link%0.25,jitter_ms=4"
        assert FaultPlan.from_spec(underscored) == plan
        assert "slow-link" in plan.to_spec()
        assert FaultPlan.from_spec(plan.to_spec()) == plan
        assert set(NETWORK_FAULT_KINDS) == {
            "partition", "slow_link", "host_loss"
        }

    def test_slow_link_jitter_stream_is_independent(self):
        plan = FaultPlan(jitter_ms=10.0, seed=3)
        slow = [plan.jitter_s(i) for i in range(8)]
        link = [plan.jitter_s(i, kind="slow_link") for i in range(8)]
        # Same seed, distinct streams: a plan jittering both the shard
        # dispatch and the wire draws different (but replayable) delays.
        assert slow != link
        assert link == [plan.jitter_s(i, kind="slow_link") for i in range(8)]
        assert all(0.005 <= delay <= 0.010 for delay in slow + link)

    def test_network_kinds_are_not_worker_directives(self):
        # Network faults execute in the *client* pool (hostpool dispatch
        # loop); a worker handed one must do nothing with it.
        injector = FaultInjector(FaultPlan(host_loss_batches=(0,)))
        assert injector.worker_directive(frozenset(NETWORK_FAULT_KINDS)) is None


class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        policy = BreakerPolicy(
            failure_threshold=overrides.pop("failure_threshold", 2),
            window_s=overrides.pop("window_s", 10.0),
            cooldown_s=overrides.pop("cooldown_s", 5.0),
            probe_batches=overrides.pop("probe_batches", 2),
        )
        assert not overrides
        return CircuitBreaker(policy, clock=clock)

    def test_opens_after_threshold_in_window(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # one strike is not enough
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow_shard()
        assert breaker.transitions == 1

    def test_stale_failures_age_out_of_the_window(self):
        clock = FakeClock()
        breaker = self._breaker(clock, window_s=10.0)
        breaker.record_failure()
        clock.advance(11.0)  # first strike is now outside the window
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock, probe_batches=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow_shard()  # cooldown not elapsed
        clock.advance(5.0)
        assert breaker.allow_shard()  # probe token
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success()
        assert breaker.state == BREAKER_HALF_OPEN  # one probe of two
        assert breaker.allow_shard()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.transitions == 3  # closed→open→half_open→closed

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow_shard()
        breaker.record_failure()  # the probe failed
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow_shard()  # a fresh cooldown has started
        clock.advance(5.0)
        assert breaker.allow_shard()

    def test_policy_validation(self):
        with pytest.raises(ToneMapError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ToneMapError):
            BreakerPolicy(window_s=0)
        with pytest.raises(ToneMapError):
            BreakerPolicy(cooldown_s=-1)
        with pytest.raises(ToneMapError):
            BreakerPolicy(probe_batches=0)


class TestDeadlineShedding:
    def _image(self, seed=0, size=24):
        return make_scene(
            "window_interior", SceneParams(height=size, width=size, seed=seed)
        )

    def test_expired_frame_sheds_with_deadline_error(self):
        clock = FakeClock()
        with ToneMapService(PARAMS, batch_size=8) as service:
            with ToneMapIngestor(
                service, max_delay_ms=3_600_000, queue_limit=8, clock=clock
            ) as ingestor:
                doomed = ingestor.submit(self._image(0), deadline_ms=50.0)
                clock.advance(0.2)  # fake time blows through the budget
                # A second arrival wakes the coalescer, whose expiry
                # sweep runs before any scheduling decision.
                survivor = ingestor.submit(self._image(1))
                with pytest.raises(DeadlineExceededError) as excinfo:
                    doomed.result(timeout=30)
                assert excinfo.value.deadline_ms == 50.0
                assert excinfo.value.elapsed_ms >= 50.0
                assert excinfo.value.tenant == "default"
                # Fake time must pass max_delay before the coalescer will
                # flush the survivor; a third arrival wakes it to notice.
                clock.advance(3_700.0)
                ingestor.submit(self._image(2))
                assert survivor.result(timeout=30) is not None
                stats = ingestor.stats
                assert stats.reliability.deadline_shed == 1

    def test_default_deadline_applies_to_every_frame(self):
        clock = FakeClock()
        with ToneMapService(PARAMS, batch_size=8) as service:
            with ToneMapIngestor(
                service,
                max_delay_ms=3_600_000,
                queue_limit=8,
                clock=clock,
                default_deadline_ms=100.0,
            ) as ingestor:
                doomed = ingestor.submit(self._image(2))
                clock.advance(1.0)
                ingestor.submit(self._image(3), deadline_ms=5_000.0)
                with pytest.raises(DeadlineExceededError):
                    doomed.result(timeout=30)

    def test_deadline_validation(self):
        with ToneMapService(PARAMS, batch_size=4) as service:
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, default_deadline_ms=0)
            with ToneMapIngestor(service, max_delay_ms=1) as ingestor:
                with pytest.raises(ToneMapError):
                    ingestor.submit(self._image(4), deadline_ms=-5)


class TestBrownoutRouting:
    def test_persistent_shard_failure_browns_out_bit_identically(self):
        rng = np.random.default_rng(17)
        stack = rng.random((4, 24, 24), dtype=np.float32)
        want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
        policy = BreakerPolicy(
            failure_threshold=1, window_s=60.0, cooldown_s=600.0,
            probe_batches=1,
        )
        with ToneMapService(
            PARAMS, batch_size=4, shards=1, breaker=policy
        ) as service:
            pool = service.pool

            def always_crashing(in_lease, count=None, retries=1, **kwargs):
                raise ShardCrashError("injected: persistent shard failure")

            pool.run_leased = always_crashing
            for round_index in range(2):
                lease = service.lease_input((24, 24))
                lease.array[:4] = stack
                outputs = service.submit_stack(
                    lease, 4, [f"r{round_index}f{i}" for i in range(4)]
                ).result(timeout=60)
                got = np.stack([o.pixels for o in outputs]).astype(np.float32)
                np.testing.assert_array_equal(got, want)
            stats = service.stats
            assert stats.reliability.breaker_state == BREAKER_OPEN
            # Round 1 tripped the breaker and brown out; round 2 never
            # touched the (still-broken) pool.
            assert stats.reliability.brownout_batches == 2
            assert stats.reliability.breaker_transitions == 1

    def test_no_breaker_means_shard_errors_surface(self):
        with ToneMapService(PARAMS, batch_size=4, shards=1) as service:
            pool = service.pool

            def always_crashing(in_lease, count=None, retries=1, **kwargs):
                raise ShardCrashError("injected: persistent shard failure")

            pool.run_leased = always_crashing
            lease = service.lease_input((24, 24))
            lease.array[:2] = np.random.default_rng(0).random(
                (2, 24, 24), dtype=np.float32
            )
            with pytest.raises(ShardCrashError):
                service.submit_stack(lease, 2, ["a", "b"]).result(timeout=60)

    def test_reliability_knobs_require_a_pool(self):
        with pytest.raises(ToneMapError):
            ToneMapService(PARAMS, shard_timeout_ms=100.0)
        with pytest.raises(ToneMapError):
            ToneMapService(PARAMS, breaker=True)


class TestInjectableServiceClock:
    """Regression: every service timing read goes through the clock.

    Three batch-completion paths formerly read ``time.perf_counter()``
    directly, so their durations mixed wall time into ``FakeClock``
    epochs — deadline math drifted and fake-clock tests saw nonzero
    latencies.  With a never-advanced ``FakeClock`` a correctly routed
    service must measure every batch as **exactly** 0.0 seconds; any
    other value means a wall-clock read leaked back in.
    """

    def _images(self, count, size=24):
        return [
            make_scene(
                "window_interior",
                SceneParams(height=size, width=size, seed=40 + i),
            )
            for i in range(count)
        ]

    def test_in_process_batches_measure_fake_zero(self):
        clock = FakeClock(start=123.0)
        with ToneMapService(PARAMS, batch_size=4, clock=clock) as service:
            service.run_batch(self._images(4))
            service.map_many(self._images(3))
            stats = service.stats
        assert stats.batches >= 2 and stats.images == 7
        assert stats.seconds == 0.0
        assert stats.latency_p95_ms == 0.0

    def test_sharded_submit_stack_measures_fake_zero(self):
        # The zero-copy admission path (the former direct perf_counter
        # read in the leased-batch runner) with real workers: wall time
        # passes in the pool, but the *service* clock never moves.
        clock = FakeClock()
        stack = np.random.default_rng(5).random(
            (4, 24, 24), dtype=np.float32
        )
        with ToneMapService(
            PARAMS, batch_size=4, shards=1, clock=clock
        ) as service:
            lease = service.lease_input((24, 24))
            lease.array[:4] = stack
            outputs = service.submit_stack(
                lease, 4, [f"f{i}" for i in range(4)]
            ).result(timeout=60)
            assert len(outputs) == 4
            stats = service.stats
        assert stats.batches == 1
        assert stats.seconds == 0.0
        assert stats.latency_p95_ms == 0.0
