"""Property-based tests for the HLS scheduler and cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hls import (
    AccessKind,
    ArrayDecl,
    ArrayPartitionPragma,
    CarriedDependence,
    Kernel,
    KernelArg,
    Loop,
    MemAccess,
    OpKind,
    PartitionKind,
    PipelinePragma,
    Statement,
    apply_pragmas,
    schedule_kernel,
)
from repro.platform.cache import CacheConfig, CacheSim


def build_mac_kernel(trip, reads, fixed, carried):
    add = OpKind.ADD if fixed else OpKind.FADD
    mul = OpKind.MUL if fixed else OpKind.FMUL
    stmt = Statement(
        "mac",
        chain=(OpKind.LOAD, mul, add),
        ops={OpKind.LOAD: reads, mul: 1, add: 1},
        accesses=(MemAccess("buf", AccessKind.READ, count=reads),),
        carried=CarriedDependence(1, (add,)) if carried else None,
    )
    return Kernel(
        name="k",
        args=[KernelArg("buf", AccessKind.READ, max(trip, 64), 32)],
        arrays=[ArrayDecl("buf", max(trip, 64), 32)],
        loops=[Loop("loop", trip_count=trip, statements=[stmt])],
    )


class TestSchedulerInvariants:
    @given(
        trip=st.integers(min_value=1, max_value=10_000),
        reads=st.integers(min_value=1, max_value=32),
        fixed=st.booleans(),
        carried=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_ii_at_least_one_and_latency_positive(
        self, trip, reads, fixed, carried
    ):
        kernel = apply_pragmas(
            build_mac_kernel(trip, reads, fixed, carried),
            [PipelinePragma("loop")],
        )
        sched = schedule_kernel(kernel).find("loop")
        assert sched.ii >= 1
        assert sched.latency_cycles >= trip  # cannot beat 1 cycle/iter

    @given(
        trip=st.integers(min_value=64, max_value=10_000),
        reads=st.integers(min_value=1, max_value=32),
        fixed=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_pipelining_never_slower_at_scale(self, trip, reads, fixed):
        # At tiny trip counts pipeline fill/flush can lose (a real HLS
        # effect); from a few dozen iterations up it must always win or
        # tie, because II <= non-pipelined iteration latency.
        base = build_mac_kernel(trip, reads, fixed, carried=True)
        piped = apply_pragmas(base, [PipelinePragma("loop")])
        plain = schedule_kernel(base).find("loop").latency_cycles
        fast = schedule_kernel(piped).find("loop").latency_cycles
        assert fast <= plain

    @given(
        reads=st.integers(min_value=2, max_value=32),
        factor=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=100, deadline=None)
    def test_partitioning_never_raises_ii(self, reads, factor):
        base = apply_pragmas(
            build_mac_kernel(100, reads, fixed=True, carried=False),
            [PipelinePragma("loop")],
        )
        parted = apply_pragmas(
            build_mac_kernel(100, reads, fixed=True, carried=False),
            [
                PipelinePragma("loop"),
                ArrayPartitionPragma("buf", PartitionKind.CYCLIC, factor),
            ],
        )
        ii_base = schedule_kernel(base).find("loop").ii
        ii_part = schedule_kernel(parted).find("loop").ii
        assert ii_part <= ii_base

    @given(
        trip=st.integers(min_value=1, max_value=1000),
        fixed=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_recurrence_lower_bound(self, trip, fixed):
        # II >= RecMII always.
        kernel = apply_pragmas(
            build_mac_kernel(trip, 1, fixed, carried=True),
            [PipelinePragma("loop")],
        )
        sched = schedule_kernel(kernel).find("loop")
        assert sched.ii >= sched.ii_breakdown.rec_mii

    @given(trip=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_latency_monotone_in_trip_count(self, trip):
        a = schedule_kernel(
            build_mac_kernel(trip, 1, True, False)
        ).total_cycles
        b = schedule_kernel(
            build_mac_kernel(trip + 1, 1, True, False)
        ).total_cycles
        assert b >= a


class TestCacheProperties:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_counters_consistent(self, addresses):
        sim = CacheSim(CacheConfig(size_bytes=1024, line_bytes=32, ways=2))
        stats = sim.run_trace(addresses)
        assert stats.hits + stats.misses == stats.accesses == len(addresses)
        assert 0.0 <= stats.miss_rate <= 1.0

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 16), min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_immediate_repeat_hits(self, addresses):
        sim = CacheSim(CacheConfig(size_bytes=1024, line_bytes=32, ways=2))
        for addr in addresses:
            sim.access(addr)
            assert sim.access(addr) is True

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_larger_cache_never_worse_on_repeated_scan(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        trace = list(rng.integers(0, 1 << 14, 400)) * 2
        small = CacheSim(CacheConfig(size_bytes=512, line_bytes=32, ways=2))
        large = CacheSim(CacheConfig(size_bytes=8192, line_bytes=32, ways=2))
        small_stats = small.run_trace(trace)
        large_stats = large.run_trace(trace)
        assert large_stats.misses <= small_stats.misses + 4
