"""Tests for repro.sdsoc: profiler, datamover, stubs, project."""

import pytest

from repro.errors import DataMoverError, FlowError
from repro.hls.ir import AccessKind, AccessPattern, KernelArg
from repro.platform import ArmCortexA9Model, DataMoverKind, ZynqSoC
from repro.platform.cpu import SwKernelTrace
from repro.sdsoc import (
    SdsocProject,
    StubCosts,
    choose_data_mover,
    profile_application,
    stub_overhead_cycles,
)
from repro.sdsoc.datamover import validate_mover
from repro.sdsoc.stubs import invocation_cost
from repro.accel import BlurGeometry, get_variant, sw_blur_trace, sw_pipeline_traces

GEOM = BlurGeometry(height=128, width=128, radius=8, sigma=8 / 3.0)


class TestProfiler:
    def test_blur_is_the_hotspot(self):
        # Flow step 1: "the Gaussian blur function identified as the most
        # computationally-intensive"... on a per-call basis the masking
        # pow dominates in our workload split, so profile the blur's own
        # sub-functions realistically: blur vs normalization vs adjust.
        cpu = ArmCortexA9Model()
        traces = {
            "gaussian_blur": sw_blur_trace(BlurGeometry()),
            "normalization": sw_pipeline_traces(BlurGeometry())["normalization"],
            "adjust": sw_pipeline_traces(BlurGeometry())["adjust"],
        }
        report = profile_application(traces, cpu)
        assert report.hotspot.name == "gaussian_blur"
        assert report.hotspot.fraction > 0.5

    def test_libm_time_split_out(self):
        # Time inside libm pow/exp2 is attributed to a library row, so
        # the pow-heavy masking stage does NOT become the hotspot — the
        # blur does, exactly as the paper's profiling step found.
        cpu = ArmCortexA9Model()
        geom = BlurGeometry()
        traces = dict(sw_pipeline_traces(geom))
        traces["gaussian_blur"] = sw_blur_trace(geom)
        report = profile_application(traces, cpu)
        assert report.hotspot.name == "gaussian_blur"
        libm = report.function("libm (pow/exp2)")
        assert libm.is_library
        assert libm.cycles > report.hotspot.cycles  # libm is hot but unmarkable

    def test_fractions_sum_to_one(self):
        cpu = ArmCortexA9Model()
        traces = {
            "a": SwKernelTrace(flops=1000),
            "b": SwKernelTrace(flops=3000),
        }
        report = profile_application(traces, cpu)
        assert sum(f.fraction for f in report.functions) == pytest.approx(1.0)
        assert report.functions[0].name == "b"

    def test_render(self):
        cpu = ArmCortexA9Model()
        report = profile_application({"f": SwKernelTrace(flops=10)}, cpu)
        text = report.render()
        assert "%time" in text
        assert "f" in text

    def test_unknown_function(self):
        cpu = ArmCortexA9Model()
        report = profile_application({"f": SwKernelTrace(flops=10)}, cpu)
        with pytest.raises(FlowError):
            report.function("ghost")

    def test_empty_rejected(self):
        with pytest.raises(FlowError):
            profile_application({}, ArmCortexA9Model())


class TestDataMoverSelection:
    def test_scalar_gets_axi_lite(self):
        arg = KernelArg("n", AccessKind.READ, 1, 32)
        assert choose_data_mover(arg).kind is DataMoverKind.AXI_LITE

    def test_sequential_image_gets_dma(self):
        arg = KernelArg("img", AccessKind.READ, 1 << 20, 32)
        assert choose_data_mover(arg).kind is DataMoverKind.AXI_DMA_SIMPLE

    def test_huge_buffer_gets_sg(self):
        arg = KernelArg("img", AccessKind.READ, 4 << 20, 32)  # 16 MB
        assert choose_data_mover(arg).kind is DataMoverKind.AXI_DMA_SG

    def test_random_pattern_gets_zero_copy(self):
        arg = KernelArg("img", AccessKind.READ, 1 << 20, 32,
                        AccessPattern.RANDOM)
        assert choose_data_mover(arg).kind is DataMoverKind.ZERO_COPY

    def test_non_cacheable_uses_acp(self):
        from repro.platform import AxiPort

        arg = KernelArg("img", AccessKind.READ, 1 << 20, 32)
        mover = choose_data_mover(arg, cacheable=False)
        assert mover.port is AxiPort.ACP
        assert mover.coherent

    def test_validate_mover_rejects_oversized_simple_dma(self):
        from repro.platform import DataMover

        arg = KernelArg("img", AccessKind.READ, 4 << 20, 32)
        with pytest.raises(DataMoverError):
            validate_mover(arg, DataMover(DataMoverKind.AXI_DMA_SIMPLE))


class TestStubs:
    def test_overhead_scales_with_args(self):
        assert stub_overhead_cycles(4) > stub_overhead_cycles(1)

    def test_invocation_cost_includes_transfers(self):
        soc = ZynqSoC()
        variant = get_variant("sequential", GEOM)
        cost = invocation_cost(
            variant.kernel.args,
            variant.data_movers,
            ddr=soc.ddr,
            pl_clock=soc.pl_clock,
            cpu_freq_mhz=soc.cpu.freq_mhz,
        )
        assert cost.ps_seconds > 0
        assert cost.transfer_seconds > 0
        assert cost.total_seconds == pytest.approx(
            cost.ps_seconds + cost.transfer_seconds
        )

    def test_missing_mover_rejected(self):
        soc = ZynqSoC()
        variant = get_variant("sequential", GEOM)
        with pytest.raises(FlowError, match="no data mover"):
            invocation_cost(
                variant.kernel.args, {}, soc.ddr, soc.pl_clock, soc.cpu.freq_mhz
            )

    def test_costs_validation(self):
        with pytest.raises(FlowError):
            StubCosts(start_cycles=-1)
        with pytest.raises(FlowError):
            StubCosts().invocation_cycles(-1)


class TestSdsocProject:
    def _project(self):
        soc = ZynqSoC()
        traces = dict(sw_pipeline_traces(GEOM))
        traces["gaussian_blur"] = sw_blur_trace(GEOM)
        return SdsocProject("p", soc, traces)

    def test_mark_and_build(self):
        project = self._project()
        variant = get_variant("sequential", GEOM)
        project.mark_for_hardware(
            "gaussian_blur", variant.kernel, variant.pragmas, variant.data_movers
        )
        artifacts = project.build()
        assert "gaussian_blur" in artifacts.designs
        design = artifacts.design("gaussian_blur")
        assert design.total_cycles > 0

    def test_mover_inference_fills_gaps(self):
        project = self._project()
        variant = get_variant("sequential", GEOM)
        project.mark_for_hardware("gaussian_blur", variant.kernel)  # no movers
        artifacts = project.build()
        movers = artifacts.movers["gaussian_blur"]
        assert set(movers) == {"in_stream", "out_stream"}

    def test_mark_unknown_function_rejected(self):
        project = self._project()
        variant = get_variant("sequential", GEOM)
        with pytest.raises(FlowError, match="unknown function"):
            project.mark_for_hardware("ghost", variant.kernel)

    def test_unmark(self):
        project = self._project()
        variant = get_variant("sequential", GEOM)
        project.mark_for_hardware("gaussian_blur", variant.kernel)
        project.unmark("gaussian_blur")
        assert project.marked_functions == []

    def test_profile_available(self):
        report = self._project().profile()
        assert report.total_seconds > 0

    def test_unknown_design_lookup(self):
        artifacts = self._project().build()
        with pytest.raises(FlowError):
            artifacts.design("nope")

    def test_empty_project_rejected(self):
        with pytest.raises(FlowError):
            SdsocProject("p", ZynqSoC(), {})
