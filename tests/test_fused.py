"""Fused-vs-staged equivalence and the fused engine's contracts.

The tolerance contract under test (documented in
``src/repro/runtime/fused.py`` and ``docs/architecture.md``):

* where the staged blur resolves to the folded/tiled row convolution
  (``taps < FFT_CROSSOVER_TAPS``), fused masks and outputs are
  **bit-identical** to the staged path, for every shape, thread count,
  and band size;
* where it resolves to the FFT, outputs agree within the blur module's
  1e-9 absolute band.

Plus the steady-state allocation contract (``intermediate_bytes`` stops
growing once per-thread scratch is warm), the row partitioner's
exactly-once coverage, and the shared-mutable-default fix on the mapper
constructors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ToneMapError
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    BatchToneMapper,
    FusedExecutor,
    FusedToneMapPlan,
    ShardPool,
    ToneMapService,
)
from repro.runtime.fused import _partition_spans
from repro.tonemap.gaussian import FFT_CROSSOVER_TAPS
from repro.tonemap.masking import MaskingParams
from repro.tonemap.pipeline import ToneMapParams, ToneMapper

#: Narrow kernels resolve to folded/tiled -> bit-identical contract;
#: wide ones to the FFT -> 1e-9 band.  (taps = 2 * radius + 1.)
FOLDED_PARAMS = [
    ToneMapParams(sigma=2.0, radius=6),
    ToneMapParams(sigma=3.0, radius=11),
]
FFT_PARAMS = [
    ToneMapParams(sigma=4.0),   # taps 25, at the crossover
    ToneMapParams(sigma=16.0),  # the paper default, taps 97
]
SHAPES = [
    (3, 40, 56),        # gray, several images
    (2, 33, 47),        # odd geometry
    (2, 30, 24, 3),     # RGB
    (1, 16, 16),        # radius can exceed height
]
THREADS = [1, 2, 3]


def _stack(shape, seed=0):
    rng = np.random.default_rng(seed)
    stack = rng.uniform(0.0, 2.0, shape).astype(np.float32)
    stack[0].flat[0] = 0.0  # exercise the epsilon floor
    return stack


def _staged(params, stack):
    mapper = BatchToneMapper(params)
    masks = np.empty(stack.shape[:3], dtype=np.float64)
    out = mapper._run_stack(stack, masks)
    return out, masks


def _fused(params, stack, threads, band_bytes=None):
    plan = FusedToneMapPlan(params, band_bytes=band_bytes)
    out = np.empty(stack.shape, dtype=np.float64)
    masks = np.empty(stack.shape[:3], dtype=np.float64)
    with FusedExecutor(threads=threads) as executor:
        executor.run(plan, stack, out, masks)
        stats = executor.stats
    return out, masks, stats


class TestToleranceContract:
    @pytest.mark.parametrize("threads", THREADS)
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize(
        "params", FOLDED_PARAMS,
        ids=[f"taps{p.kernel().taps}" for p in FOLDED_PARAMS],
    )
    def test_folded_paths_bit_identical(self, params, shape, threads):
        assert params.kernel().taps < FFT_CROSSOVER_TAPS  # suite invariant
        stack = _stack(shape)
        want, want_masks = _staged(params, stack)
        got, got_masks, _ = _fused(params, stack, threads)
        np.testing.assert_array_equal(got_masks, want_masks)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("threads", THREADS)
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize(
        "params", FFT_PARAMS,
        ids=[f"taps{p.kernel().taps}" for p in FFT_PARAMS],
    )
    def test_fft_paths_within_band(self, params, shape, threads):
        assert params.kernel().taps >= FFT_CROSSOVER_TAPS
        stack = _stack(shape)
        want, want_masks = _staged(params, stack)
        got, got_masks, _ = _fused(params, stack, threads)
        np.testing.assert_allclose(got_masks, want_masks, atol=1e-9)
        np.testing.assert_allclose(got, want, atol=1e-9)

    @pytest.mark.parametrize("threads", [1, 2])
    def test_ring_reuse_stays_bit_identical(self, threads):
        # A tiny band budget forces many bands per span, so the halo
        # ring actually carries rows between bands.
        params = FOLDED_PARAMS[0]
        stack = _stack((2, 300, 64), seed=3)
        want, want_masks = _staged(params, stack)
        got, got_masks, stats = _fused(
            params, stack, threads, band_bytes=1 << 14
        )
        assert stats.halo_rows_reused > 0
        np.testing.assert_array_equal(got_masks, want_masks)
        np.testing.assert_array_equal(got, want)

    def test_black_image_passes_through(self):
        params = FOLDED_PARAMS[0]
        stack = np.zeros((1, 24, 24), dtype=np.float32)
        got, _, _ = _fused(params, stack, threads=1)
        want, _ = _staged(params, stack)
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=20, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=3),
        height=st.integers(min_value=8, max_value=64),
        width=st.integers(min_value=8, max_value=64),
        radius=st.integers(min_value=2, max_value=9),
        threads=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_stacks_bit_identical(
        self, count, height, width, radius, threads, seed
    ):
        params = ToneMapParams(sigma=max(radius / 3.0, 0.5), radius=radius)
        rng = np.random.default_rng(seed)
        stack = rng.uniform(
            0.0, 4.0, (count, height, width)
        ).astype(np.float32)
        want, want_masks = _staged(params, stack)
        got, got_masks, _ = _fused(
            params, stack, threads, band_bytes=1 << 14
        )
        np.testing.assert_array_equal(got_masks, want_masks)
        np.testing.assert_array_equal(got, want)


class TestSteadyStateAllocation:
    @pytest.mark.parametrize("threads", [1, 2])
    def test_intermediate_bytes_stop_growing(self, threads):
        params = ToneMapParams(sigma=2.0, radius=6)
        plan = FusedToneMapPlan(params, band_bytes=1 << 14)
        stack = _stack((2, 96, 64), seed=5)
        out = np.empty(stack.shape, dtype=np.float32)
        with FusedExecutor(threads=threads) as executor:
            executor.run(plan, stack, out)  # warm-up allocates scratch
            warm = executor.stats
            assert warm.intermediate_bytes > 0  # the counter is live
            for _ in range(3):
                executor.run(plan, stack, out)
            steady = executor.stats
        assert steady.intermediate_bytes == warm.intermediate_bytes
        assert steady.bands_executed > warm.bands_executed
        assert steady.scratch_bytes == warm.scratch_bytes

    def test_geometry_pool_is_bounded_lru(self):
        # Arbitrary shape diversity must not grow resident scratch
        # without bound: beyond FUSED_POOLED_GEOMETRIES distinct
        # geometries the LRU geometry's workspaces are evicted, and the
        # cumulative allocation counter stays monotonic across that.
        from repro.runtime.fused import FUSED_POOLED_GEOMETRIES

        params = ToneMapParams(sigma=2.0, radius=6)
        plan = FusedToneMapPlan(params)
        with FusedExecutor(threads=2) as executor:
            for step in range(FUSED_POOLED_GEOMETRIES + 4):
                width = 16 + 2 * step
                stack = _stack((1, 24, width), seed=step)
                executor.run(plan, stack, np.empty_like(stack))
            assert len(executor._free) <= FUSED_POOLED_GEOMETRIES
            assert (
                len(executor._workspaces)
                <= 2 * FUSED_POOLED_GEOMETRIES
            )
            before = executor.stats.intermediate_bytes
            stack = _stack((1, 24, 16))  # evicted geometry: re-warms
            executor.run(plan, stack, np.empty_like(stack))
            assert executor.stats.intermediate_bytes >= before

    def test_concurrent_mixed_geometry_eviction_safe(self):
        # Regression: a geometry whose free-list entry is LRU-evicted
        # while its run is in flight must re-seed the pool on release,
        # not raise KeyError and leak the workspaces.
        from concurrent.futures import ThreadPoolExecutor as TPE

        from repro.runtime.fused import FUSED_POOLED_GEOMETRIES

        params = ToneMapParams(sigma=2.0, radius=6)
        plan = FusedToneMapPlan(params)
        shapes = [
            (1, 24, 16 + 2 * i) for i in range(FUSED_POOLED_GEOMETRIES + 4)
        ]
        stacks = [_stack(s, seed=i) for i, s in enumerate(shapes)]
        with FusedExecutor(threads=2) as executor:
            def run_one(stack):
                executor.run(plan, stack, np.empty_like(stack))
            with TPE(max_workers=len(stacks)) as pool:
                for _ in range(4):
                    list(pool.map(run_one, stacks))
            assert len(executor._free) <= FUSED_POOLED_GEOMETRIES

    def test_fft_scratch_counted_separately(self):
        # Folded regime: zero FFT scratch.  FFT-horizontal regime: the
        # un-poolable transform buffers are counted, not hidden — and
        # the workspace counter still settles.
        narrow = FusedToneMapPlan(ToneMapParams(sigma=2.0, radius=6))
        wide = FusedToneMapPlan(ToneMapParams(sigma=16.0))
        stack = _stack((1, 48, 48))
        with FusedExecutor(threads=1) as executor:
            executor.run(narrow, stack, np.empty_like(stack))
            assert executor.stats.fft_scratch_bytes == 0
        with FusedExecutor(threads=1) as executor:
            executor.run(wide, stack, np.empty_like(stack))
            first = executor.stats
            assert first.fft_scratch_bytes > 0
            executor.run(wide, stack, np.empty_like(stack))
            second = executor.stats
            # workspace scratch settles; FFT buffers churn per run
            assert second.intermediate_bytes == first.intermediate_bytes
            assert second.fft_scratch_bytes == 2 * first.fft_scratch_bytes

    def test_shape_change_reallocates_then_settles(self):
        params = ToneMapParams(sigma=2.0, radius=6)
        plan = FusedToneMapPlan(params)
        with FusedExecutor(threads=1) as executor:
            small = _stack((1, 32, 32))
            big = _stack((1, 32, 64), seed=1)
            executor.run(plan, small, np.empty_like(small))
            first = executor.stats.intermediate_bytes
            executor.run(plan, big, np.empty_like(big))
            grown = executor.stats.intermediate_bytes
            assert grown > first  # wider rows need new scratch
            executor.run(plan, big, np.empty_like(big))
            assert executor.stats.intermediate_bytes == grown

    def test_mixed_shape_traffic_reuses_per_shape_scratch(self):
        # Workspaces are pooled per scratch geometry: alternating two
        # frame shapes through one executor must warm one scratch set
        # per shape and then stop allocating — not re-size the same
        # buffers on every alternation.
        params = ToneMapParams(sigma=2.0, radius=6)
        plan = FusedToneMapPlan(params)
        small = _stack((1, 32, 32))
        big = _stack((2, 48, 64), seed=1)
        with FusedExecutor(threads=2) as executor:
            for stack in (small, big):  # warm both geometries
                executor.run(plan, stack, np.empty_like(stack))
            warm = executor.stats.intermediate_bytes
            for _ in range(3):  # steady-state alternation
                executor.run(plan, small, np.empty_like(small))
                executor.run(plan, big, np.empty_like(big))
            assert executor.stats.intermediate_bytes == warm

    def test_service_close_retires_fused_threads(self):
        import threading

        service = ToneMapService(
            ToneMapParams(sigma=2.0, radius=6), fused=True, fused_threads=2
        )
        images = [
            make_scene(
                "window_interior",
                SceneParams(height=24, width=24, seed=i),
            )
            for i in range(2)
        ]
        service.map_many(images)
        assert any(
            t.name.startswith("fused") for t in threading.enumerate()
        )
        service.close()
        assert not any(
            t.name.startswith("fused") for t in threading.enumerate()
        )

    def test_mapper_counters_exposed(self):
        mapper = BatchToneMapper(
            ToneMapParams(sigma=2.0, radius=6), fused=True, threads=2
        )
        assert mapper.fused
        stack = _stack((2, 32, 32))
        mapper.run_stack(stack)
        stats = mapper.fused_stats
        assert stats.runs == 1
        assert stats.frames == 2
        assert stats.bands_executed >= 2
        assert BatchToneMapper(ToneMapParams()).fused_stats is None


class TestPartition:
    @pytest.mark.parametrize(
        "count,height,parts",
        [(1, 10, 1), (1, 10, 3), (3, 7, 2), (4, 4, 16), (2, 5, 100)],
    )
    def test_rows_covered_exactly_once(self, count, height, parts):
        chunks = _partition_spans(count, height, parts)
        seen = np.zeros((count, height), dtype=int)
        for spans in chunks:
            for image, lo, hi in spans:
                assert 0 <= lo < hi <= height
                seen[image, lo:hi] += 1
        assert (seen == 1).all()
        assert len(chunks) <= max(1, min(parts, count * height))
        # balance: chunk sizes differ by at most one row
        sizes = [
            sum(hi - lo for _, lo, hi in spans) for spans in chunks
        ]
        assert max(sizes) - min(sizes) <= 1


class TestValidationAndDefaults:
    def test_fused_rejects_custom_blur_fn(self):
        params = ToneMapParams(
            sigma=2.0, radius=6, blur_fn=lambda plane, kernel: plane
        )
        with pytest.raises(ToneMapError):
            BatchToneMapper(params, fused=True)
        with pytest.raises(ToneMapError):
            FusedToneMapPlan(params)

    def test_executor_rejects_bad_inputs(self):
        plan = FusedToneMapPlan(ToneMapParams(sigma=2.0, radius=6))
        with FusedExecutor(threads=1) as executor:
            f64 = np.zeros((1, 8, 8))
            with pytest.raises(ToneMapError):
                executor.run(plan, f64, np.empty_like(f64))
            f32 = f64.astype(np.float32)
            with pytest.raises(ToneMapError):
                executor.run(plan, f32, np.empty((1, 8, 9)))
            with pytest.raises(ToneMapError):
                executor.run(plan, np.zeros((8, 8), np.float32),
                             np.empty((8, 8)))
            with pytest.raises(ToneMapError):
                executor.run(plan, f32, np.empty_like(f64),
                             masks_out=np.empty((1, 8, 8), np.float32))
        with pytest.raises(ToneMapError):
            FusedExecutor(threads=0)

    def test_threads_default_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_THREADS", "3")
        assert FusedExecutor().threads == 3
        monkeypatch.setenv("REPRO_FUSED_THREADS", "not-a-number")
        import os

        assert FusedExecutor().threads == (os.cpu_count() or 1)

    def test_default_params_not_shared_between_mappers(self):
        # The old `params: ToneMapParams = ToneMapParams()` default was
        # evaluated once at class definition: every default-constructed
        # mapper shared one module-level instance.
        assert BatchToneMapper().params is not BatchToneMapper().params
        assert ToneMapper().params is not ToneMapper().params
        # And the nested mutable-prone members are per-instance too.
        a, b = BatchToneMapper().params, BatchToneMapper().params
        assert a.masking is not b.masking
        assert a.adjust is not b.adjust

    def test_masking_params_still_default_correctly(self):
        assert BatchToneMapper().params.masking == MaskingParams()


class TestRuntimeWiring:
    def _scenes(self, count, size=32):
        return [
            make_scene(
                "window_interior",
                SceneParams(height=size, width=size, seed=100 + i),
            )
            for i in range(count)
        ]

    PARAMS = ToneMapParams(sigma=2.0, radius=6)

    def test_mapper_run_matches_staged(self):
        images = self._scenes(3)
        want = BatchToneMapper(self.PARAMS).run(images)
        got = BatchToneMapper(self.PARAMS, fused=True, threads=2).run(images)
        np.testing.assert_array_equal(got.masks, want.masks)
        for g, w in zip(got.outputs, want.outputs):
            np.testing.assert_array_equal(g.pixels, w.pixels)
            assert g.name == w.name
        assert got.pixels == want.pixels

    def test_shard_workers_fused_bit_identical(self):
        images = self._scenes(4, size=24)
        want = BatchToneMapper(self.PARAMS).map(images)
        with ShardPool(
            self.PARAMS, shards=2, fused=True, fused_threads=1
        ) as pool:
            got = pool.run_batch(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_shard_fused_threads_default_to_one(self):
        # Each worker process defaulting to cpu_count() fused threads
        # would oversubscribe the host shards-fold; the sharded default
        # is 1 thread per worker.
        with ShardPool(self.PARAMS, shards=2, fused=True) as pool:
            assert pool.fused_threads == 1
        mapper = BatchToneMapper(self.PARAMS, fused=True)
        try:
            import os

            assert mapper._engine.threads == (os.cpu_count() or 1)
        finally:
            mapper.close()

    def test_shard_rejects_fused_fixed_point(self):
        from repro.tonemap.fixed_blur import FixedBlurConfig

        with pytest.raises(ToneMapError):
            ShardPool(self.PARAMS, fused=True,
                      fixed_config=FixedBlurConfig())
        with pytest.raises(ToneMapError):
            ToneMapService(self.PARAMS, fused=True,
                           fixed_config=FixedBlurConfig())

    def test_service_fused_matches_staged(self):
        images = self._scenes(5, size=24)
        with ToneMapService(self.PARAMS, batch_size=2) as service:
            want = service.map_many(images)
        with ToneMapService(
            self.PARAMS, batch_size=2, fused=True, fused_threads=2
        ) as service:
            got = service.map_many(images)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)

    def test_ingestor_over_fused_sharded_service(self):
        from repro.runtime import ToneMapIngestor

        images = self._scenes(6, size=24)
        want = BatchToneMapper(self.PARAMS).map(images)
        with ToneMapService(
            self.PARAMS, batch_size=3, shards=2, fused=True,
            fused_threads=1,
        ) as service:
            with ToneMapIngestor(service, max_delay_ms=5.0) as ingestor:
                futures = [ingestor.submit(image) for image in images]
                got = [future.result(timeout=60) for future in futures]
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g.pixels, w.pixels)
