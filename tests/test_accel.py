"""Tests for repro.accel: geometry, line buffer, specs, variants."""

import numpy as np
import pytest

from repro.accel import (
    VARIANT_KEYS,
    BlurGeometry,
    LineBuffer,
    ShiftWindow,
    get_variant,
    make_variants,
    naive_offload_kernel,
    streaming_blur_kernel,
    streaming_blur_plane,
    streaming_pragmas,
)
from repro.errors import FlowError, ToneMapError
from repro.hls import synthesize
from repro.hls.ir import Storage
from repro.tonemap.gaussian import GaussianKernel, separable_blur

GEOM = BlurGeometry(height=64, width=64, radius=4, sigma=4 / 3.0)


class TestGeometry:
    def test_defaults_match_paper(self):
        geom = BlurGeometry()
        assert geom.pixels == 1024 * 1024
        assert geom.taps == 57
        assert geom.plane_bytes == 4 << 20

    def test_element_width_change(self):
        fxp = BlurGeometry().with_element_bits(16)
        assert fxp.plane_bytes == 2 << 20

    def test_kernel_derivation(self):
        k = GEOM.kernel()
        assert k.radius == 4
        assert k.taps == 9

    def test_validation(self):
        with pytest.raises(FlowError):
            BlurGeometry(height=4, width=64)
        with pytest.raises(FlowError):
            BlurGeometry(radius=0)
        with pytest.raises(FlowError):
            BlurGeometry(element_bits=24)
        with pytest.raises(FlowError):
            BlurGeometry(height=16, width=16, radius=10)


class TestLineBuffer:
    def test_column_returns_recent_rows(self):
        lb = LineBuffer(rows=3, width=4)
        for value in (1.0, 2.0, 3.0):
            lb.fill_row(np.full(4, value))
        np.testing.assert_array_equal(lb.column(0), [1.0, 2.0, 3.0])

    def test_rotation_drops_oldest(self):
        lb = LineBuffer(rows=2, width=2)
        lb.fill_row(np.array([1.0, 1.0]))
        lb.fill_row(np.array([2.0, 2.0]))
        lb.fill_row(np.array([3.0, 3.0]))
        np.testing.assert_array_equal(lb.column(0), [2.0, 3.0])

    def test_insert_single_pixel(self):
        lb = LineBuffer(rows=2, width=3)
        lb.start_row()
        lb.insert(1, 9.0)
        assert lb.column(1)[-1] == 9.0

    def test_bounds_checked(self):
        lb = LineBuffer(rows=2, width=3)
        with pytest.raises(ToneMapError):
            lb.column(3)
        with pytest.raises(ToneMapError):
            lb.insert(-1, 0.0)
        with pytest.raises(ToneMapError):
            lb.fill_row(np.zeros(5))

    def test_invalid_shape(self):
        with pytest.raises(ToneMapError):
            LineBuffer(rows=0, width=4)


class TestShiftWindow:
    def test_shift_order(self):
        w = ShiftWindow(3)
        for value in (1.0, 2.0, 3.0, 4.0):
            w.shift_in(value)
        np.testing.assert_array_equal(w.values, [2.0, 3.0, 4.0])

    def test_dot(self):
        w = ShiftWindow(3)
        for value in (1.0, 2.0, 3.0):
            w.shift_in(value)
        assert w.dot(np.array([1.0, 1.0, 1.0])) == 6.0

    def test_dot_shape_checked(self):
        w = ShiftWindow(3)
        with pytest.raises(ToneMapError):
            w.dot(np.ones(4))

    def test_values_read_only(self):
        w = ShiftWindow(3)
        with pytest.raises(ValueError):
            w.values[0] = 1.0


class TestStreamingBlur:
    def test_matches_batch_reference(self):
        rng = np.random.default_rng(8)
        plane = rng.uniform(0, 1, (20, 26))
        kernel = GaussianKernel(sigma=1.5, radius=3)
        streamed = streaming_blur_plane(plane, kernel)
        batch = separable_blur(plane, kernel)
        np.testing.assert_allclose(streamed, batch, atol=1e-12)

    def test_asymmetric_image(self):
        rng = np.random.default_rng(9)
        plane = rng.uniform(0, 1, (12, 33))
        kernel = GaussianKernel(sigma=1.0, radius=2)
        np.testing.assert_allclose(
            streaming_blur_plane(plane, kernel),
            separable_blur(plane, kernel),
            atol=1e-12,
        )

    def test_requires_2d(self):
        with pytest.raises(ToneMapError):
            streaming_blur_plane(np.zeros(8), GaussianKernel(sigma=1.0))


class TestKernelSpecs:
    def test_naive_kernel_structure(self):
        kernel = naive_offload_kernel(GEOM)
        assert kernel.array("src").storage is Storage.EXTERNAL
        names = [l.name for l in kernel.walk()]
        assert "hpass_taps" in names and "vpass_taps" in names

    def test_streaming_kernel_structure(self):
        kernel = streaming_blur_kernel(GEOM)
        assert kernel.array("linebuf").storage is Storage.BRAM
        assert kernel.array("linebuf").depth == GEOM.taps * GEOM.width
        assert kernel.array("in_stream").storage is Storage.STREAM

    def test_fixed_kernel_is_16bit_and_packed(self):
        kernel = streaming_blur_kernel(GEOM, fixed=True)
        assert kernel.array("linebuf").width_bits == 16
        assert kernel.array("linebuf").packing_factor == 2
        assert kernel.args[0].width_bits == 16

    def test_pragma_set(self):
        assert streaming_pragmas(False) == []
        names = {type(p).__name__ for p in streaming_pragmas(True)}
        assert names == {"PipelinePragma", "ArrayPartitionPragma"}


class TestVariants:
    def test_registry_complete_and_ordered(self):
        variants = make_variants(GEOM)
        assert tuple(variants) == VARIANT_KEYS

    def test_sw_variant_has_no_kernel(self):
        assert get_variant("sw", GEOM).kernel is None

    def test_hw_variants_synthesize(self):
        for key in ("marked_hw", "sequential", "pragmas", "fxp"):
            variant = get_variant(key, GEOM)
            design = synthesize(variant.kernel, pragmas=variant.pragmas)
            assert design.total_cycles > 0, key

    def test_fxp_ii_beats_float_ii(self):
        flt = get_variant("pragmas", GEOM)
        fxp = get_variant("fxp", GEOM)
        d_flt = synthesize(flt.kernel, pragmas=flt.pragmas)
        d_fxp = synthesize(fxp.kernel, pragmas=fxp.pragmas)
        assert d_fxp.loop_ii("pixels") < d_flt.loop_ii("pixels")

    def test_functional_outputs_close_across_variants(self):
        rng = np.random.default_rng(10)
        plane = rng.uniform(0, 1, (32, 32))
        kernel = GEOM.kernel()
        reference = separable_blur(plane, kernel)
        for key in VARIANT_KEYS:
            out = get_variant(key, GEOM).functional(plane, kernel)
            # FxP truncates at 10 fraction bits (ap_fixed<16,6>): allow a
            # few LSB of accumulated truncation bias across two passes.
            tolerance = 1e-9 if key != "fxp" else 4 * 2.0**-10
            assert np.max(np.abs(out - reference)) < tolerance, key

    def test_unknown_variant(self):
        with pytest.raises(FlowError):
            get_variant("ghost", GEOM)
