"""Multi-tenant fair scheduling + lease-native delivery tests.

Covers the deficit-round-robin seat allocator (pure, driven grant by
grant), per-tenant admission limits and policies, cross-tenant batch
coalescing, the coalesced shed-storm error contract, per-tenant stats /
fairness index, and the zero-copy ``ResultHandle`` result path.
"""

import os
import threading

import numpy as np
import pytest

from repro.errors import ServiceOverloadedError, ToneMapError
from repro.image.synthetic import SceneParams, make_scene
from repro.runtime import (
    BatchToneMapper,
    DeficitRoundRobin,
    ResultHandle,
    ServiceStats,
    TenantConfig,
    TenantStats,
    ToneMapIngestor,
    ToneMapService,
)
from repro.tonemap.gaussian import separable_blur
from repro.tonemap.pipeline import ToneMapParams

PARAMS = ToneMapParams(sigma=2.0, radius=6)
SHM_DIR = "/dev/shm"


def scenes(count, size=24, base=100):
    return [
        make_scene(
            "window_interior",
            SceneParams(height=size, width=size, seed=base + i),
        )
        for i in range(count)
    ]


def gated_params():
    gate = threading.Event()

    def slow_blur(plane, kernel):
        gate.wait(timeout=30)
        return separable_blur(plane, kernel)

    return ToneMapParams(sigma=2.0, radius=6, blur_fn=slow_blur), gate


def shm_names():
    if not os.path.isdir(SHM_DIR):
        pytest.skip("no /dev/shm to scan on this platform")
    return set(os.listdir(SHM_DIR))


class TestDeficitRoundRobin:
    def test_equal_weights_split_evenly(self):
        drr = DeficitRoundRobin()
        grants = drr.allocate({"a": 10, "b": 10}, {"a": 1, "b": 1}, 8)
        assert grants == {"a": 4, "b": 4}

    def test_weights_split_proportionally(self):
        drr = DeficitRoundRobin()
        grants = drr.allocate({"a": 100, "b": 100}, {"a": 3, "b": 1}, 8)
        assert grants == {"a": 6, "b": 2}

    def test_light_tenant_always_gets_a_seat(self):
        # The tentpole property: a huge backlog cannot squeeze out a
        # tenant with one queued frame.
        drr = DeficitRoundRobin()
        grants = drr.allocate({"heavy": 1000, "light": 1}, {}, 8)
        assert grants["light"] == 1
        assert grants["heavy"] == 7

    def test_fractional_weight_served_every_other_round(self):
        drr = DeficitRoundRobin()
        # weight 0.5 accrues one seat every two allocations while the
        # tenant stays backlogged.
        seats = [
            drr.allocate({"a": 10, "b": 10}, {"a": 1, "b": 0.5}, 3)
            for _ in range(2)
        ]
        total_b = sum(grant.get("b", 0) for grant in seats)
        total_a = sum(grant.get("a", 0) for grant in seats)
        assert total_a == 2 * total_b

    def test_grants_sum_to_available(self):
        drr = DeficitRoundRobin()
        grants = drr.allocate({"a": 2, "b": 1}, {"a": 1, "b": 1}, 8)
        assert sum(grants.values()) == 3
        assert grants == {"a": 2, "b": 1}

    def test_drained_queue_forfeits_deficit(self):
        drr = DeficitRoundRobin()
        # b drains in round 1; its deficit must not bank credit it can
        # spend in round 2 after sitting idle.
        drr.allocate({"a": 10, "b": 1}, {"a": 1, "b": 5}, 4)
        grants = drr.allocate({"a": 10, "b": 10}, {"a": 1, "b": 1}, 8)
        assert grants == {"a": 4, "b": 4}

    def test_empty_input_returns_nothing(self):
        drr = DeficitRoundRobin()
        assert drr.allocate({}, {}, 8) == {}
        assert drr.allocate({"a": 0}, {"a": 1}, 8) == {}

    def test_tiny_weights_allocate_without_spinning(self):
        # Weights are only required to be > 0; a microscopic one must
        # not make allocate() spin millions of rotations under the
        # ingestor lock.  Increments are normalized per rotation, so
        # this completes in O(seats) and the share ratios still hold.
        import time as _time

        drr = DeficitRoundRobin()
        start = _time.perf_counter()
        grants = drr.allocate({"a": 8}, {"a": 1e-8}, 8)
        assert _time.perf_counter() - start < 0.5
        assert grants == {"a": 8}
        drr = DeficitRoundRobin()
        totals = {"big": 0, "tiny": 0}
        for _ in range(2_000_000 // 100_000):
            grant = drr.allocate(
                {"big": 100, "tiny": 100},
                {"big": 1.0, "tiny": 1e-6},
                4,
            )
            for name, n in grant.items():
                totals[name] += n
        # The heavy tenant dominates in proportion; the tiny one is not
        # starved forever but accrues (almost) nothing at this horizon.
        assert totals["big"] >= 0.9 * (totals["big"] + totals["tiny"])

    def test_deterministic_across_instances(self):
        a = DeficitRoundRobin()
        b = DeficitRoundRobin()
        queued = {"x": 7, "y": 3, "z": 5}
        weights = {"x": 2, "y": 1, "z": 1}
        for _ in range(4):
            assert a.allocate(dict(queued), weights, 4) == b.allocate(
                dict(queued), weights, 4
            )


class TestTenantConfig:
    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ToneMapError):
            TenantConfig(weight=0.0)
        with pytest.raises(ToneMapError):
            TenantConfig(weight=-1.0)

    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ToneMapError):
            TenantConfig(queue_limit=0)

    def test_policy_string_normalized(self):
        from repro.runtime import BackpressurePolicy

        config = TenantConfig(policy="reject")
        assert config.policy is BackpressurePolicy.REJECT

    def test_weight_shorthand_in_ingestor(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            with ToneMapIngestor(
                service, tenants={"heavy": 3, "light": TenantConfig()}
            ) as ingestor:
                ingestor.map_many(scenes(2), tenant="heavy")
                stats = ingestor.stats
        by_name = {t.tenant: t for t in stats.tenants}
        assert by_name["heavy"].weight == 3.0
        assert by_name["light"].weight == 1.0

    def test_bad_tenant_config_type_rejected(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, tenants={"a": "fast"})


class TestPerTenantAdmission:
    def test_tenant_limit_does_not_block_other_tenants(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=8, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=64,
                per_tenant_queue_limit=2,
                policy="reject",
            )
            heavy = [
                ingestor.submit(img, tenant="heavy")
                for img in scenes(2, base=0)
            ]
            # heavy is at its own limit; its third frame is refused ...
            with pytest.raises(ServiceOverloadedError) as info:
                ingestor.submit(scenes(1, base=9)[0], tenant="heavy")
            assert info.value.tenant == "heavy"
            # ... but light admits freely.
            light = ingestor.submit(scenes(1, base=5)[0], tenant="light")
            gate.set()
            ingestor.close()
            for future in heavy + [light]:
                assert future.result(timeout=30) is not None
            stats = ingestor.stats
        by_name = {t.tenant: t for t in stats.tenants}
        assert by_name["heavy"].rejected == 1
        assert by_name["light"].rejected == 0
        assert by_name["light"].served == 1

    def test_tenant_policy_overrides_default(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=8, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=64,
                policy="block",
                tenants={
                    "spiky": TenantConfig(queue_limit=1, policy="shed-oldest")
                },
            )
            first = ingestor.submit(scenes(1, base=0)[0], tenant="spiky")
            second = ingestor.submit(scenes(1, base=1)[0], tenant="spiky")
            with pytest.raises(ServiceOverloadedError):
                first.result(timeout=5)
            gate.set()
            ingestor.close()
            assert second.result(timeout=30) is not None

    def test_global_shed_takes_globally_oldest(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=8, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=2,
                policy="shed-oldest",
            )
            oldest = ingestor.submit(scenes(1, base=0)[0], tenant="heavy")
            kept = ingestor.submit(scenes(1, base=1)[0], tenant="heavy")
            newcomer = ingestor.submit(scenes(1, base=2)[0], tenant="light")
            with pytest.raises(ServiceOverloadedError):
                oldest.result(timeout=5)
            gate.set()
            ingestor.close()
            assert kept.result(timeout=30) is not None
            assert newcomer.result(timeout=30) is not None


class TestCrossTenantCoalescing:
    def test_one_batch_serves_two_tenants(self):
        # Two same-shape frames from different tenants must coalesce
        # into a single batch, not one batch per tenant.
        with ToneMapService(PARAMS, batch_size=2) as service:
            with ToneMapIngestor(service, max_delay_ms=60_000) as ingestor:
                a = ingestor.submit(scenes(1, base=0)[0], tenant="a")
                b = ingestor.submit(scenes(1, base=1)[0], tenant="b")
                assert a.result(timeout=30) is not None
                assert b.result(timeout=30) is not None
        assert service.stats.batches == 1

    def test_outputs_identical_across_tenants(self):
        images = scenes(6)
        with ToneMapService(PARAMS, batch_size=3, shards=1) as service:
            with ToneMapIngestor(service, max_delay_ms=10) as ingestor:
                futures = [
                    ingestor.submit(img, tenant=("a" if i % 2 else "b"))
                    for i, img in enumerate(images)
                ]
                outputs = [f.result(timeout=30) for f in futures]
        expected = BatchToneMapper(PARAMS).map(images)
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(got.pixels, want.pixels)

    def test_light_tenant_not_starved_by_heavy_backlog(self):
        # The tentpole behavior, end to end: a light frame arriving
        # behind a heavy backlog rides the *next* scheduled batch.
        params, gate = gated_params()
        done_at = {}
        with ToneMapService(params, batch_size=2, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service, max_delay_ms=60_000, max_inflight_batches=1
            )
            futures = {}
            # Two heavies dispatch immediately (and block on the gate);
            # four more park in heavy's queue.
            for i, img in enumerate(scenes(6, base=0)):
                futures[f"h{i}"] = ingestor.submit(img, tenant="heavy")
            futures["light"] = ingestor.submit(
                scenes(1, base=50)[0], tenant="light"
            )
            import time as _time

            for key, future in futures.items():
                future.add_done_callback(
                    lambda f, key=key: done_at.setdefault(
                        key, _time.perf_counter()
                    )
                )
            gate.set()
            ingestor.close()
        # The light frame must complete before heavy's tail: it gets a
        # DRR seat in the first post-backlog batch, so at least two
        # parked heavies finish after it.
        later = [k for k in ("h2", "h3", "h4", "h5")
                 if done_at[k] > done_at["light"]]
        assert len(later) >= 2, (done_at, later)

    def test_expired_shape_outranks_permanently_full_shape(self):
        # A tenant flooding one frame shape keeps that shape full
        # forever; a different-shape frame that passed max_delay_ms
        # must flush in age order — before every flood frame *younger*
        # than it — instead of waiting out the whole flood (which is
        # what full-shape-first selection would do: the odd partial
        # batch can never fill and would always lose to a full one).
        params, gate = gated_params()
        done_at = {}
        with ToneMapService(params, batch_size=2, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service, max_delay_ms=5, max_inflight_batches=1
            )
            futures = {}
            for i, img in enumerate(scenes(4, size=24, base=0)):
                futures[f"h{i}"] = ingestor.submit(img, tenant="flood")
            # Different shape, single frame: can never fill a batch.
            futures["odd"] = ingestor.submit(
                scenes(1, size=16, base=77)[0], tenant="rare"
            )
            for i, img in enumerate(scenes(4, size=24, base=30)):
                futures[f"h{4 + i}"] = ingestor.submit(img, tenant="flood")
            import time as _time

            _time.sleep(0.02)  # every queued deadline expires
            for key, future in futures.items():
                future.add_done_callback(
                    lambda f, key=key: done_at.setdefault(
                        key, _time.perf_counter()
                    )
                )
            gate.set()
            ingestor.close()
        # Age order: the odd frame waits only for flood frames older
        # than itself — every younger flood frame finishes after it.
        later = [k for k in done_at if k != "odd"
                 and done_at[k] > done_at["odd"]]
        assert set(later) >= {"h4", "h5", "h6", "h7"}, done_at

    def test_fairness_index_near_one_for_weighted_service(self):
        stats = ServiceStats(
            tenants=(
                TenantStats(tenant="a", weight=2.0, submitted=20, served=20),
                TenantStats(tenant="b", weight=1.0, submitted=10, served=10),
            )
        )
        assert stats.fairness_index == pytest.approx(1.0)

    def test_fairness_index_detects_monopoly(self):
        stats = ServiceStats(
            tenants=(
                TenantStats(tenant="a", weight=1.0, submitted=90, served=90),
                TenantStats(tenant="b", weight=1.0, submitted=90, served=0),
            )
        )
        assert stats.fairness_index == pytest.approx(0.5)

    def test_fairness_index_vacuous_for_single_tenant(self):
        assert ServiceStats().fairness_index == 1.0
        stats = ServiceStats(
            tenants=(TenantStats(tenant="a", submitted=5, served=5),)
        )
        assert stats.fairness_index == 1.0


class TestShedStormCoalescing:
    def test_storm_victims_share_one_error_context(self):
        params, gate = gated_params()
        with ToneMapService(params, batch_size=8, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=2,
                policy="shed-oldest",
            )
            victims = [ingestor.submit(img) for img in scenes(2, base=0)]
            # Each newcomer sheds one victim; all sheds belong to one
            # storm (no dispatch in between), so the victims must share
            # a single coalesced exception instance.
            survivors = [
                ingestor.submit(img) for img in scenes(2, base=10)
            ]
            errors = [future.exception(timeout=5) for future in victims]
            assert all(isinstance(e, ServiceOverloadedError) for e in errors)
            assert errors[0] is errors[1], "storm must coalesce contexts"
            assert errors[0].shed_count == 2
            # The *global* limit bound, so the storm is not attributed
            # to any single tenant.
            assert errors[0].tenant is None
            assert ingestor.stats.shed == 2
            gate.set()
            ingestor.close()
            for future in survivors:
                assert future.result(timeout=30) is not None

    def test_new_storm_gets_fresh_context_after_dispatch(self):
        import time as _time

        def wait_until(predicate, timeout=10.0):
            deadline = _time.perf_counter() + timeout
            while not predicate():
                assert _time.perf_counter() < deadline, "condition timed out"
                _time.sleep(0.002)

        params, gate = gated_params()
        with ToneMapService(params, batch_size=1, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=2,
                policy="shed-oldest",
                max_inflight_batches=1,
            )
            # First frame dispatches (batch_size=1) and blocks on the
            # gate; the next one parks where a newcomer can shed it.
            running = ingestor.submit(scenes(1, base=0)[0])
            wait_until(lambda: ingestor._dispatched == 1)
            victim1 = ingestor.submit(scenes(1, base=1)[0])
            kept1 = ingestor.submit(scenes(1, base=2)[0])  # storm 1
            storm1 = victim1.exception(timeout=5)
            assert isinstance(storm1, ServiceOverloadedError)
            # Drain: the dispatch of `kept1` ends storm 1.
            gate.set()
            assert running.result(timeout=30) is not None
            assert kept1.result(timeout=30) is not None
            wait_until(lambda: ingestor._dispatched == 0)
            # Rebuild the same overload shape for storm 2.
            gate.clear()
            running2 = ingestor.submit(scenes(1, base=3)[0])
            wait_until(lambda: ingestor._dispatched == 1)
            victim2 = ingestor.submit(scenes(1, base=4)[0])
            kept2 = ingestor.submit(scenes(1, base=5)[0])  # storm 2
            storm2 = victim2.exception(timeout=5)
            assert isinstance(storm2, ServiceOverloadedError)
            assert storm2 is not storm1, "dispatch must end a storm"
            assert storm1.shed_count == 1
            assert storm2.shed_count == 1
            gate.set()
            ingestor.close()
            assert running2.result(timeout=30) is not None
            assert kept2.result(timeout=30) is not None

    def test_concurrent_storms_keep_separate_scopes(self):
        # Two tenants hitting their own limits (no dispatch between)
        # must each get their own coalesced context with their own
        # tenant attribution — not share the first storm's metadata.
        params, gate = gated_params()
        with ToneMapService(params, batch_size=8, max_workers=1) as service:
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=64,
                per_tenant_queue_limit=2,
                policy="shed-oldest",
            )
            a_victim = ingestor.submit(scenes(1, base=0)[0], tenant="a")
            ingestor.submit(scenes(1, base=1)[0], tenant="a")
            ingestor.submit(scenes(1, base=2)[0], tenant="a")  # sheds in a
            b_victim = ingestor.submit(scenes(1, base=3)[0], tenant="b")
            ingestor.submit(scenes(1, base=4)[0], tenant="b")
            ingestor.submit(scenes(1, base=5)[0], tenant="b")  # sheds in b
            storm_a = a_victim.exception(timeout=5)
            storm_b = b_victim.exception(timeout=5)
            assert storm_a is not storm_b
            assert storm_a.tenant == "a" and storm_a.shed_count == 1
            assert storm_b.tenant == "b" and storm_b.shed_count == 1
            gate.set()
            ingestor.close()

    def test_shed_storm_holds_no_arena_slots(self):
        # Slot accounting: queued frames own no arena leases, so a shed
        # storm leaves the data plane untouched — nothing to release,
        # nothing leaked, no staged bytes.
        with ToneMapService(PARAMS, batch_size=8, shards=1) as service:
            before = service.pool.data_plane_stats
            ingestor = ToneMapIngestor(
                service,
                max_delay_ms=60_000,
                queue_limit=2,
                policy="shed-oldest",
            )
            victims = [ingestor.submit(img) for img in scenes(2, base=0)]
            survivors = [
                ingestor.submit(img) for img in scenes(4, base=10)
            ]
            during = service.pool.data_plane_stats
            assert during.arena.leases_active == 0
            assert during.arena.acquisitions == before.arena.acquisitions
            for victim in victims[:2]:
                assert isinstance(
                    victim.exception(timeout=5), ServiceOverloadedError
                )
            ingestor.close()
            after = service.pool.data_plane_stats
            assert after.arena.leases_active == 0
            assert after.arena.bytes_copied_in == 0
            for future in survivors[-2:]:
                assert future.result(timeout=30) is not None


class TestLeaseNativeResults:
    def test_handles_bit_identical_to_materialized(self):
        images = scenes(4, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=10, lease_results=True
            ) as ingestor:
                futures = [ingestor.submit(img) for img in images]
                handles = [f.result(timeout=30) for f in futures]
                assert all(isinstance(h, ResultHandle) for h in handles)
                expected = BatchToneMapper(PARAMS).map(images)
                for handle, want in zip(handles, expected):
                    np.testing.assert_array_equal(handle.pixels, want.pixels)
                for handle in handles:
                    handle.release()
            assert service.pool.arena.stats.leases_active == 0

    def test_lease_results_stage_zero_bytes(self):
        images = scenes(4, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=10, lease_results=True
            ) as ingestor:
                for future in [ingestor.submit(img) for img in images]:
                    future.result(timeout=30).release()
            stats = service.pool.data_plane_stats
        # Neither ingest nor delivery copied a byte: frames entered SHM
        # once (the producer write) and results were read in place.
        assert stats.arena.bytes_copied_in == 0
        assert stats.arena.bytes_materialized == 0

    def test_slab_recycles_after_last_handle(self):
        images = scenes(2, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=10, lease_results=True
            ) as ingestor:
                first, second = [
                    f.result(timeout=30)
                    for f in [ingestor.submit(img) for img in images]
                ]
                arena = service.pool.arena
                assert arena.stats.leases_active == 1  # both share the slab
                first.release()
                assert arena.stats.leases_active == 1
                second.release()
                assert arena.stats.leases_active == 0
                first.release()  # idempotent

    def test_released_handle_refuses_reads(self):
        images = scenes(2, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=10, lease_results=True
            ) as ingestor:
                handle = ingestor.submit(images[0]).result(timeout=30)
                with handle:
                    assert handle.shape == (16, 16, 3)
                assert handle.released
                with pytest.raises(ToneMapError):
                    handle.pixels

    def test_materialize_escapes_the_lease(self):
        images = scenes(2, size=16)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=10, lease_results=True
            ) as ingestor:
                handle = ingestor.submit(images[0]).result(timeout=30)
                view = handle.pixels.copy()
                image = handle.materialize()
            assert handle.released
            assert image.name.endswith(":tonemapped")
            np.testing.assert_array_equal(image.pixels, view)
            assert service.pool.arena.stats.leases_active == 0

    def test_no_shm_leak_across_lease_serving(self):
        baseline = shm_names()
        images = scenes(6, size=16)
        with ToneMapService(PARAMS, batch_size=3, shards=1) as service:
            with ToneMapIngestor(
                service, max_delay_ms=5, lease_results=True
            ) as ingestor:
                for future in [ingestor.submit(img) for img in images]:
                    future.result(timeout=30).release()
        assert shm_names() <= baseline

    def test_lease_results_require_sharded_service(self):
        with ToneMapService(PARAMS, batch_size=2) as service:
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, lease_results=True)
        with ToneMapService(PARAMS, batch_size=2, shards=1) as service:
            with pytest.raises(ToneMapError):
                ToneMapIngestor(
                    service, lease_results=True, zero_copy=False
                )

    def test_submit_stack_lease_results_direct(self):
        # The service-level API underneath the ingestor flag.
        stack = np.random.default_rng(5).uniform(
            0.0, 1.0, (3, 16, 16)
        ).astype(np.float32)
        with ToneMapService(PARAMS, batch_size=4, shards=1) as service:
            lease = service.lease_input((16, 16))
            lease.array[:3] = stack
            future = service.submit_stack(
                lease, 3, ["a", "b", "c"], lease_results=True
            )
            handles = future.result(timeout=30)
            want = BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)
            for i, handle in enumerate(handles):
                np.testing.assert_array_equal(handle.pixels, want[i])
                handle.release()
            assert service.pool.arena.stats.leases_active == 0


class TestIngestorValidation:
    def test_bad_knobs_rejected(self):
        with ToneMapService(PARAMS) as service:
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, per_tenant_queue_limit=0)
            with pytest.raises(ToneMapError):
                ToneMapIngestor(service, max_inflight_batches=0)

    def test_async_submit_carries_tenant(self):
        import asyncio

        async def main():
            with ToneMapService(PARAMS, batch_size=2) as service:
                with ToneMapIngestor(service, max_delay_ms=5) as ingestor:
                    out = await ingestor.submit_async(
                        scenes(1)[0], tenant="vip"
                    )
                stats = ingestor.stats  # closed: all bookkeeping settled
                return out, stats

        output, stats = asyncio.run(main())
        assert output is not None
        assert any(t.tenant == "vip" and t.served == 1 for t in stats.tenants)
