"""Multi-host data plane: :class:`HostServer` / :class:`HostPool`.

The single-host suite proves batches move between processes as
pointers; this suite proves the same batches cross a *socket* — the
repo's model of the paper's CPU→FPGA AXI hop — bit-identically and
with every staging byte counted.  The non-fault classes run a real
2-host localhost fleet end-to-end (leased path, ``run_stack`` /
``run_batch``, the service + ingestor front end, an externally-served
host).  The ``fault``-marked chaos class then injects the network
fault kinds — ``host-loss``, ``slow-link``, ``partition`` — and
asserts the PR 9 recovery contract: zero frames lost, dead hosts
respawned, outputs unchanged.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.image import HDRImage
from repro.runtime import (
    BatchToneMapper,
    FaultPlan,
    HostPool,
    HostServer,
    ToneMapIngestor,
    ToneMapService,
)
from repro.runtime.hostpool import parse_address
from repro.tonemap.pipeline import ToneMapParams

PARAMS = ToneMapParams(sigma=2.0, radius=6)

FRAMES = 4
SIZE = 32


def _stack(frames=FRAMES, size=SIZE, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((frames, size, size), dtype=np.float32)


def _want(stack):
    return BatchToneMapper(PARAMS).run_stack(stack).astype(np.float32)


def _wait_for(predicate, timeout_s=60.0, interval_s=0.05):
    """Poll ``predicate`` until true; background revival is asynchronous."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestParseAddress:
    def test_accepts_string_and_tuple_forms(self):
        assert parse_address("127.0.0.1:8421") == ("127.0.0.1", 8421)
        assert parse_address(("localhost", "9000")) == ("localhost", 9000)
        assert parse_address(("10.0.0.7", 80)) == ("10.0.0.7", 80)

    @pytest.mark.parametrize(
        "bad", ["localhost", ":80", "host:", "host:http", 8421, None]
    )
    def test_rejects_malformed_addresses(self, bad):
        with pytest.raises(ToneMapError, match="host address"):
            parse_address(bad)


class TestHostPoolEndToEnd:
    """One spawned 2-host fleet shared across the happy-path cases."""

    @pytest.fixture(scope="class")
    def pool(self):
        with HostPool.spawn_local(
            2, PARAMS, shards_per_host=1, arena_slots=4
        ) as pool:
            yield pool

    def test_leased_path_is_bit_identical_and_zero_copy(self, pool):
        stack = _stack()
        before = pool.data_plane_stats
        lease = pool.lease_input(stack.shape)
        lease.array[:] = stack
        out = pool.run_leased(lease)
        np.testing.assert_array_equal(np.asarray(out.array), _want(stack))
        out.release()
        lease.release()
        after = pool.data_plane_stats
        # The batch crossed a real socket both ways ...
        assert after.net.messages_sent - before.net.messages_sent == 1
        assert (
            after.net.payload_bytes_sent - before.net.payload_bytes_sent
            == stack.nbytes
        )
        assert (
            after.net.payload_bytes_received
            - before.net.payload_bytes_received
            == stack.nbytes
        )
        # ... without a single userspace staging byte on this endpoint:
        # sendmsg read the input slot, recv_into filled the output slab.
        assert after.bytes_staged - before.bytes_staged == 0
        assert after.frames - before.frames == FRAMES
        assert pool.arena.stats.leases_active == 0

    def test_run_stack_counts_its_one_staging_copy(self, pool):
        stack = _stack(seed=1)
        before = pool.data_plane_stats
        got = pool.run_stack(stack)
        np.testing.assert_array_equal(got, _want(stack))
        after = pool.data_plane_stats
        # One copy-in (caller array → arena stack) and one materialize
        # (output slab → caller array), both counted, nothing hidden.
        staged = after.bytes_staged - before.bytes_staged
        assert staged == 2 * stack.nbytes

    def test_run_batch_round_trips_hdr_images(self, pool):
        stack = _stack(frames=3, seed=2)
        images = [
            HDRImage.adopt(stack[i], name=f"frame{i}")
            for i in range(len(stack))
        ]
        outputs = pool.run_batch(images)
        assert [o.name for o in outputs] == [
            "frame0:tonemapped", "frame1:tonemapped", "frame2:tonemapped"
        ]
        got = np.stack([o.pixels for o in outputs]).astype(np.float32)
        np.testing.assert_array_equal(got, _want(stack))

    def test_shard_pool_compatible_surface(self, pool):
        assert pool.autoscaling is False
        assert pool.active_shards == 2
        assert pool.scale_ups == 0 and pool.scale_downs == 0
        assert pool.observe(10, p95_ms=500.0) == 2  # no host autoscaler
        assert len(pool.host_addresses()) == 2
        assert pool.hosts_lost == 0
        assert pool.data_plane_stats.worker_respawns == pool.worker_respawns

    def test_rejects_bad_counts_and_released_leases(self, pool):
        stack = _stack(frames=2, seed=3)
        lease = pool.lease_input(stack.shape)
        lease.array[:] = stack
        with pytest.raises(ToneMapError, match="count"):
            pool.run_leased(lease, count=3)
        lease.release()
        with pytest.raises(ToneMapError, match="released"):
            pool.run_leased(lease)


class TestExternallyServedHost:
    """A pool routing to a host it does not own (the ``serve-host`` shape)."""

    def test_in_process_server_serves_a_pool(self):
        stack = _stack(seed=4)
        server = HostServer(PARAMS, shards=1, arena_slots=4)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with HostPool([server.address]) as pool:
                got = pool.run_stack(stack)
                np.testing.assert_array_equal(got, _want(stack))
                assert pool.host_addresses() == [server.address]
            # The serving endpoint counted the mirror-image traffic, and
            # its receive landed straight in a leased arena slot.
            assert server.net_stats.messages_received == 1
            assert server.net_stats.payload_bytes_received == stack.nbytes
            assert server.net_stats.bytes_staged == 0
            assert server.pool.arena.stats.leases_active == 0
        finally:
            server.close()
            thread.join(timeout=10)

    def test_spawn_local_validates_count(self):
        with pytest.raises(ToneMapError, match="hosts must be >= 1"):
            HostPool.spawn_local(0, PARAMS)


class TestHostedService:
    def test_service_and_ingestor_over_two_hosts(self):
        stack = _stack(frames=8, seed=5)
        want = _want(stack)
        with ToneMapService(PARAMS, batch_size=4, hosts=2) as service:
            ingestor = ToneMapIngestor(service, max_delay_ms=5.0)
            futures = [
                ingestor.submit(HDRImage.adopt(stack[i], name=f"f{i}"))
                for i in range(len(stack))
            ]
            outputs = [f.result(timeout=120) for f in futures]
            ingestor.close()
            got = np.stack([o.pixels for o in outputs]).astype(np.float32)
            np.testing.assert_array_equal(got, want)
            assert service.stats.reliability.hosts_lost == 0


@pytest.mark.fault
class TestHostChaos:
    """Seeded network faults against a real 2-host fleet.

    Every scenario asserts the same contract the single-host chaos
    suite holds workers to, one level up: no frame is ever lost, every
    recovered batch is bit-identical, and the failure is visible in the
    honest counters (``hosts_lost``, ``worker_respawns``) rather than
    silently absorbed.
    """

    def _serve_batches(self, pool, batches):
        for index, stack in enumerate(batches):
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            out = pool.run_leased(lease, timeout=30.0)
            np.testing.assert_array_equal(
                np.asarray(out.array), _want(stack)
            )
            out.release()
            lease.release()

    def test_host_loss_is_replayed_and_respawned(self):
        batches = [_stack(seed=10 + i) for i in range(4)]
        plan = FaultPlan(host_loss_batches=(1,))
        with HostPool.spawn_local(
            2, PARAMS, shards_per_host=1, faults=plan
        ) as pool:
            self._serve_batches(pool, batches)  # zero frames lost
            assert pool.hosts_lost >= 1
            # The SIGKILLed host comes back: the revive thread respawns
            # the process and the fleet returns to full strength.
            assert _wait_for(lambda: pool.active_shards == 2)
            assert pool.worker_respawns >= 1
            assert pool.faults.injected["host_loss"] == 1
            # The healed fleet still serves with zero staging bytes.
            assert pool.data_plane_stats.net.bytes_staged == 0

    def test_partition_fails_over_to_the_peer(self):
        batches = [_stack(seed=20 + i) for i in range(3)]
        plan = FaultPlan(partition_batches=(0,))
        with HostPool.spawn_local(
            2, PARAMS, shards_per_host=1, faults=plan
        ) as pool:
            self._serve_batches(pool, batches)
            assert pool.hosts_lost >= 1
            # A partitioned (but healthy) host needs no respawn — the
            # revive thread reconnects and it rejoins the rotation.
            assert _wait_for(lambda: pool.active_shards == 2)

    def test_slow_link_jitters_without_losing_frames(self):
        batches = [_stack(seed=30 + i) for i in range(3)]
        plan = FaultPlan(slow_link_batches=(0, 1), jitter_ms=5.0)
        with HostPool.spawn_local(
            2, PARAMS, shards_per_host=1, faults=plan
        ) as pool:
            self._serve_batches(pool, batches)
            assert pool.hosts_lost == 0
            assert pool.faults.injected["slow_link"] == 2
            assert pool.data_plane_stats.frames == sum(
                len(stack) for stack in batches
            )

    def test_worker_faults_ship_to_the_hosts(self):
        # A worker-kind fault (in-worker SIGKILL) in the plan must
        # execute on the serving host's own pool — the client sees a
        # clean result, the failure shows in the *host's* replay
        # machinery, not the client's host-level counters.
        stack = _stack(seed=40)
        plan = FaultPlan(kill_batches=(0,))
        with HostPool.spawn_local(
            1, PARAMS, shards_per_host=2, faults=plan
        ) as pool:
            lease = pool.lease_input(stack.shape)
            lease.array[:] = stack
            out = pool.run_leased(lease, timeout=30.0)
            np.testing.assert_array_equal(
                np.asarray(out.array), _want(stack)
            )
            out.release()
            lease.release()
            assert pool.hosts_lost == 0
