"""Tests for repro.fixedpoint.format."""

import pytest

from repro.errors import BusAlignmentError, FixedPointError
from repro.fixedpoint import (
    BUS_ALIGNED_WIDTHS,
    FixedFormat,
    Overflow,
    Quant,
    check_bus_alignment,
)


class TestFixedFormatConstruction:
    def test_basic_signed(self):
        fmt = FixedFormat(16, 2)
        assert fmt.word_length == 16
        assert fmt.int_length == 2
        assert fmt.signed is True
        assert fmt.frac_length == 14

    def test_default_modes_match_hls_defaults(self):
        fmt = FixedFormat(16, 2)
        assert fmt.quant is Quant.TRN
        assert fmt.overflow is Overflow.WRAP

    def test_zero_word_length_rejected(self):
        with pytest.raises(FixedPointError):
            FixedFormat(0, 0)

    def test_negative_word_length_rejected(self):
        with pytest.raises(FixedPointError):
            FixedFormat(-4, 0)

    def test_word_length_above_63_rejected(self):
        with pytest.raises(FixedPointError):
            FixedFormat(64, 8)

    def test_non_int_word_length_rejected(self):
        with pytest.raises(FixedPointError):
            FixedFormat(16.0, 2)

    def test_bool_rejected(self):
        with pytest.raises(FixedPointError):
            FixedFormat(True, 0)

    def test_int_length_may_exceed_word_length(self):
        # ap_fixed allows I > W (coarse formats with negative F).
        fmt = FixedFormat(8, 12)
        assert fmt.frac_length == -4
        assert fmt.resolution == 16.0

    def test_negative_int_length_allowed(self):
        fmt = FixedFormat(8, -2)
        assert fmt.frac_length == 10
        assert fmt.resolution == 2.0**-10


class TestRanges:
    def test_signed_range(self):
        fmt = FixedFormat(8, 8)  # pure integer, signed
        assert fmt.raw_min == -128
        assert fmt.raw_max == 127
        assert fmt.min_value == -128.0
        assert fmt.max_value == 127.0

    def test_unsigned_range(self):
        fmt = FixedFormat(8, 8, signed=False)
        assert fmt.raw_min == 0
        assert fmt.raw_max == 255

    def test_fractional_range(self):
        fmt = FixedFormat(16, 1, signed=False)  # [0, 2) at 2^-15
        assert fmt.max_value == pytest.approx(2.0 - 2.0**-15)
        assert fmt.resolution == 2.0**-15

    def test_sat_sym_narrows_min(self):
        plain = FixedFormat(8, 8)
        sym = FixedFormat(8, 8, overflow=Overflow.SAT_SYM)
        assert plain.raw_min == -128
        assert sym.raw_min == -127

    def test_representable(self):
        fmt = FixedFormat(16, 2, signed=True)
        assert fmt.representable(1.0)
        assert fmt.representable(-2.0)
        assert not fmt.representable(2.0)
        assert not fmt.representable(100.0)

    def test_range_span(self):
        fmt = FixedFormat(8, 8, signed=False)
        assert fmt.range_span == 255.0


class TestFormatAlgebra:
    def test_add_result_grows_one_int_bit(self):
        a = FixedFormat(16, 2)
        b = FixedFormat(16, 2)
        c = a.add_result(b)
        assert c.int_length == 3
        assert c.frac_length == 14
        assert c.word_length == 17

    def test_add_result_mixed_precision(self):
        a = FixedFormat(16, 2)
        b = FixedFormat(12, 6)
        c = a.add_result(b)
        assert c.int_length == 7
        assert c.frac_length == 14

    def test_mul_result_sums_widths(self):
        a = FixedFormat(16, 2)
        b = FixedFormat(16, 0, signed=False)
        c = a.mul_result(b)
        assert c.word_length == 32
        assert c.int_length == 2
        assert c.signed is True

    def test_unsigned_plus_signed_is_signed(self):
        a = FixedFormat(8, 1, signed=False)
        b = FixedFormat(8, 1, signed=True)
        assert a.add_result(b).signed is True

    def test_with_modes(self):
        fmt = FixedFormat(16, 2)
        updated = fmt.with_modes(quant=Quant.RND, overflow=Overflow.SAT)
        assert updated.quant is Quant.RND
        assert updated.overflow is Overflow.SAT
        assert updated.word_length == fmt.word_length
        # Original unchanged (frozen dataclass).
        assert fmt.quant is Quant.TRN


class TestBusAlignment:
    @pytest.mark.parametrize("width", BUS_ALIGNED_WIDTHS[:3] + (64 - 1,))
    def test_aligned_widths(self, width):
        fmt = FixedFormat(width, 1)
        if width in BUS_ALIGNED_WIDTHS:
            check_bus_alignment(fmt)  # no raise
            assert fmt.is_bus_aligned
        else:
            with pytest.raises(BusAlignmentError):
                check_bus_alignment(fmt)

    def test_paper_width_16_is_aligned(self):
        # Section III-C: the paper chose 16 bits, an SDSoC-legal width.
        check_bus_alignment(FixedFormat(16, 6))

    def test_unaligned_width_raises(self):
        with pytest.raises(BusAlignmentError):
            check_bus_alignment(FixedFormat(12, 2))

    def test_error_is_fixedpoint_error(self):
        with pytest.raises(FixedPointError):
            check_bus_alignment(FixedFormat(24, 2))


class TestStr:
    def test_signed_str(self):
        assert str(FixedFormat(16, 2)) == "ap_fixed<16,2,TRN,WRAP>"

    def test_unsigned_str(self):
        fmt = FixedFormat(16, 0, signed=False, quant=Quant.RND, overflow=Overflow.SAT)
        assert str(fmt) == "ap_ufixed<16,0,RND,SAT>"
