"""Tests for repro.tonemap.gaussian (kernels and reference blur)."""

import numpy as np
import pytest

from repro.errors import ToneMapError
from repro.tonemap import GaussianKernel, blur_2d_direct, blur_plane, separable_blur


class TestKernel:
    def test_default_radius_covers_three_sigma(self):
        k = GaussianKernel(sigma=4.0)
        assert k.radius == 12
        assert k.taps == 25

    def test_explicit_radius(self):
        k = GaussianKernel(sigma=2.0, radius=5)
        assert k.taps == 11

    def test_coefficients_normalized(self):
        k = GaussianKernel(sigma=3.0)
        assert k.coefficients.sum() == pytest.approx(1.0, abs=1e-12)

    def test_coefficients_symmetric(self):
        c = GaussianKernel(sigma=2.5).coefficients
        np.testing.assert_allclose(c, c[::-1])

    def test_coefficients_peak_at_centre(self):
        k = GaussianKernel(sigma=2.0)
        c = k.coefficients
        assert c.argmax() == k.radius

    def test_monotone_decay_from_centre(self):
        k = GaussianKernel(sigma=3.0)
        c = k.coefficients
        right = c[k.radius:]
        assert np.all(np.diff(right) < 0)

    def test_wider_sigma_flatter_kernel(self):
        narrow = GaussianKernel(sigma=1.0, radius=6).coefficients
        wide = GaussianKernel(sigma=4.0, radius=6).coefficients
        assert narrow.max() > wide.max()

    def test_invalid_sigma(self):
        with pytest.raises(ToneMapError):
            GaussianKernel(sigma=0.0)
        with pytest.raises(ToneMapError):
            GaussianKernel(sigma=-1.0)

    def test_invalid_radius(self):
        with pytest.raises(ToneMapError):
            GaussianKernel(sigma=1.0, radius=0)

    def test_str(self):
        assert "Gaussian" in str(GaussianKernel(sigma=2.0))


class TestSeparableBlur:
    def test_constant_plane_invariant(self):
        plane = np.full((16, 16), 0.7)
        out = separable_blur(plane, GaussianKernel(sigma=2.0))
        np.testing.assert_allclose(out, 0.7, atol=1e-12)

    def test_mean_preserved_on_interior(self):
        # With edge replication the global mean shifts slightly; an impulse
        # far from borders must conserve total mass.
        plane = np.zeros((64, 64))
        plane[32, 32] = 1.0
        out = separable_blur(plane, GaussianKernel(sigma=2.0))
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    def test_impulse_spreads_as_outer_product(self):
        k = GaussianKernel(sigma=1.5, radius=4)
        plane = np.zeros((32, 32))
        plane[16, 16] = 1.0
        out = separable_blur(plane, k)
        expected = np.outer(k.coefficients, k.coefficients)
        got = out[12:21, 12:21]
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_matches_direct_2d(self):
        rng = np.random.default_rng(11)
        plane = rng.uniform(0, 1, (24, 20))
        k = GaussianKernel(sigma=1.2, radius=3)
        np.testing.assert_allclose(
            separable_blur(plane, k), blur_2d_direct(plane, k), atol=1e-10
        )

    def test_linearity(self):
        rng = np.random.default_rng(12)
        a = rng.uniform(0, 1, (16, 16))
        b = rng.uniform(0, 1, (16, 16))
        k = GaussianKernel(sigma=2.0, radius=4)
        lhs = separable_blur(2.0 * a + 3.0 * b, k)
        rhs = 2.0 * separable_blur(a, k) + 3.0 * separable_blur(b, k)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_output_range_within_input_range(self):
        rng = np.random.default_rng(13)
        plane = rng.uniform(0.25, 0.75, (16, 16))
        out = separable_blur(plane, GaussianKernel(sigma=2.0))
        assert out.min() >= 0.25 - 1e-12
        assert out.max() <= 0.75 + 1e-12

    def test_smooths_variance(self):
        rng = np.random.default_rng(14)
        plane = rng.uniform(0, 1, (32, 32))
        out = separable_blur(plane, GaussianKernel(sigma=2.0))
        assert out.var() < plane.var()

    def test_separability_order_irrelevant(self):
        # Blur of transpose equals transpose of blur (symmetric kernel).
        rng = np.random.default_rng(15)
        plane = rng.uniform(0, 1, (20, 28))
        k = GaussianKernel(sigma=1.5)
        np.testing.assert_allclose(
            separable_blur(plane.T, k), separable_blur(plane, k).T, atol=1e-10
        )

    def test_requires_2d(self):
        with pytest.raises(ToneMapError):
            separable_blur(np.zeros((4, 4, 3)), GaussianKernel(sigma=1.0))
        with pytest.raises(ToneMapError):
            blur_2d_direct(np.zeros(16), GaussianKernel(sigma=1.0))

    def test_blur_plane_wrapper(self):
        plane = np.zeros((16, 16))
        plane[8, 8] = 1.0
        a = blur_plane(plane, sigma=2.0)
        b = separable_blur(plane, GaussianKernel(sigma=2.0))
        np.testing.assert_array_equal(a, b)

    def test_blur_plane_explicit_radius(self):
        plane = np.random.default_rng(16).uniform(0, 1, (16, 16))
        a = blur_plane(plane, sigma=2.0, radius=3)
        b = separable_blur(plane, GaussianKernel(sigma=2.0, radius=3))
        np.testing.assert_array_equal(a, b)

    def test_edge_replication_no_darkening(self):
        # A bright border must not fade: replicate padding keeps corners at
        # the constant value.
        plane = np.ones((16, 16))
        out = separable_blur(plane, GaussianKernel(sigma=3.0))
        assert out[0, 0] == pytest.approx(1.0, abs=1e-12)
