"""Unit tests for ``repro.planner``: profiles, workloads, plans.

Covers the contracts the equivalence and golden suites build on:

* :class:`Workload` validation and kernel-width semantics (must match
  :class:`repro.tonemap.gaussian.GaussianKernel` exactly);
* :class:`ExecutionPlan` serialization — JSON round-trip (golden
  snapshots) and pickling (ShardPool ships plans to workers);
* **call-time** threshold resolution: env vars exported *after* import
  move the very next dispatch — no ``importlib.reload`` — and
  ``planner.override`` re-pins per case (the regression tests for the
  import-time ``_env_positive_int`` reads this PR removed);
* calibration-profile round-trips: write → load → identical plans, in
  this process and across a process boundary, plus the deliberate
  fallback-to-defaults for missing/corrupt/stale profile files.
"""

import json
import math
import pickle
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro import planner
from repro.errors import ToneMapError
from repro.planner import (
    CalibrationProfile,
    ExecutionPlan,
    Planner,
    Workload,
    active_profile,
    load_or_default,
    pinned,
    plan_for,
    select_blur_method,
    select_engine,
    select_fused_h_method,
    set_active_profile,
)
from repro.planner.profile import PROFILE_VERSION
from repro.tonemap.gaussian import GaussianKernel

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _unpinned():
    """Each test starts and ends with no programmatically pinned profile."""
    set_active_profile(None)
    yield
    set_active_profile(None)


class TestWorkload:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(height=0, width=8),
            dict(height=8, width=-1),
            dict(height=8, width=8, batch=0),
            dict(height=8, width=8, sigma=0.0),
            dict(height=8, width=8, sigma=-2.0),
            dict(height=8, width=8, radius=0),
            dict(height=8, width=8, dtype="float16"),
            dict(height=8, width=8, threads=0),
        ],
    )
    def test_invalid_workloads_raise(self, kwargs):
        with pytest.raises(ToneMapError):
            Workload(**kwargs)

    @pytest.mark.parametrize("sigma", [0.5, 2.0, 3.7, 16.0])
    def test_default_radius_matches_gaussian_kernel(self, sigma):
        w = Workload(height=8, width=8, sigma=sigma)
        kernel = GaussianKernel(sigma=sigma)
        assert w.effective_radius == kernel.radius
        assert w.taps == kernel.coefficients.size

    def test_explicit_radius_wins(self):
        w = Workload(height=8, width=8, sigma=16.0, radius=3)
        assert w.effective_radius == 3
        assert w.taps == 7

    def test_derived_properties(self):
        w = Workload(height=10, width=20, dtype="fixed")
        assert w.plane_bytes == 10 * 20 * 8
        assert w.fixed
        assert not Workload(height=10, width=20).fixed

    def test_json_round_trip(self):
        w = Workload(
            height=9, width=7, batch=3, sigma=2.5, radius=4,
            dtype="float64", color=True, threads=2,
        )
        assert Workload.from_json_dict(w.to_json_dict()) == w


class TestDispatchFormulas:
    def test_blur_method_regimes(self):
        prof = CalibrationProfile(
            fft_crossover_taps=25, tiled_min_plane_bytes=1000
        )
        assert select_blur_method(25, 0, prof) == "fft"
        assert select_blur_method(24, 1000, prof) == "tiled"
        assert select_blur_method(24, 999, prof) == "folded"

    def test_fused_h_follows_staged_below_crossover(self):
        prof = CalibrationProfile(
            fft_crossover_taps=25, fused_fft_min_taps=33
        )
        # Staged non-fft => folded (the bit-identity contract).
        assert select_fused_h_method(23, 0, prof) == "folded"
        # Staged fft but below the band-FFT crossover => still folded.
        assert select_fused_h_method(25, 0, prof) == "folded"
        assert select_fused_h_method(33, 0, prof) == "fft"

    def test_engine_selection(self):
        prof = CalibrationProfile(fused_fft_min_taps=33)
        assert select_engine(32, prof) == "fused"
        assert select_engine(33, prof) == "staged"
        assert select_engine(5, prof, fixed=True) == "staged"


class TestExecutionPlan:
    def _plan(self, **kwargs):
        kwargs.setdefault("threads", 2)
        return plan_for(height=48, width=64, **kwargs)

    def test_narrow_kernel_plans_fused_folded(self):
        plan = self._plan(sigma=2.0, radius=5)
        assert plan.engine == "fused"
        assert plan.blur_method == "folded"
        assert plan.fused_h_method == "folded"
        assert plan.partitions <= plan.threads == 2

    def test_wide_kernel_plans_staged_fft(self):
        plan = self._plan(sigma=16.0)  # taps 97
        assert plan.engine == "staged"
        assert plan.blur_method == "fft"

    def test_fixed_dtype_is_staged_only(self):
        plan = self._plan(sigma=2.0, radius=5, dtype="fixed")
        assert plan.engine == "staged"
        assert "float-only" in "\n".join(plan.rationale)

    def test_describe_names_every_decision(self):
        plan = self._plan(sigma=2.0, radius=5)
        text = plan.describe()
        for needle in (
            "engine=fused", "blur=folded", "rationale:", "cost model",
            "fused_fft_min_taps", "model-ms",
        ):
            assert needle in text

    def test_cost_estimates_sorted_cheapest_first(self):
        plan = self._plan(sigma=16.0)
        seconds = [s for _, s in plan.cost_estimates]
        assert seconds == sorted(seconds)
        assert {name for name, _ in plan.cost_estimates} == {
            "staged-folded", "staged-tiled", "staged-fft", "fused-folded",
        }

    def test_json_round_trip(self):
        plan = self._plan(sigma=3.0, color=True)
        restored = ExecutionPlan.from_json_dict(
            json.loads(json.dumps(plan.to_json_dict()))
        )
        assert restored == plan

    def test_pickle_round_trip(self):
        plan = self._plan(sigma=3.0)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_pinned_overrides_and_notes(self):
        plan = self._plan(sigma=2.0, radius=5)
        p = pinned(plan, engine="staged", threads=1)
        assert p.engine == "staged" and p.threads == 1
        assert p.workload == plan.workload
        assert p.rationale[-1].startswith("pinned by caller:")

    def test_pinned_rejects_unknown_fields(self):
        with pytest.raises(ToneMapError):
            pinned(self._plan(), band_rows=3)


class TestCallTimeResolution:
    """The regression tests for the import-time env-read removal."""

    def test_env_export_after_import_moves_the_next_plan(self, monkeypatch):
        assert plan_for(height=8, width=8, radius=12, threads=1).engine == (
            "fused"
        )
        monkeypatch.setenv("REPRO_FUSED_FFT_MIN_TAPS", "25")
        plan = plan_for(height=8, width=8, radius=12, threads=1)  # taps 25
        assert plan.engine == "staged"
        assert plan.profile.source == "env-override"
        monkeypatch.delenv("REPRO_FUSED_FFT_MIN_TAPS")
        assert plan_for(height=8, width=8, radius=12, threads=1).engine == (
            "fused"
        )

    def test_gaussian_dispatch_sees_env_without_reload(self, monkeypatch):
        import numpy as np

        from repro.tonemap.gaussian import separable_blur

        plane = np.random.default_rng(3).random((16, 16))
        kernel = GaussianKernel(sigma=2.0, radius=6)  # taps 13: folded
        reference = separable_blur(plane, kernel, method="fft")
        monkeypatch.setenv("REPRO_FFT_CROSSOVER_TAPS", "13")
        auto = separable_blur(plane, kernel, method="auto")
        # Auto now routes through the FFT: identical to the explicit
        # fft call, not to the folded path.
        np.testing.assert_array_equal(auto, reference)

    def test_override_scopes_nest_and_unwind(self):
        base = active_profile().fft_crossover_taps
        with planner.override(fft_crossover_taps=5) as outer:
            assert active_profile() is outer
            with planner.override(tiled_min_plane_bytes=10) as inner:
                assert inner.fft_crossover_taps == 5
                assert active_profile() is inner
            assert active_profile() is outer
        assert active_profile().fft_crossover_taps == base

    def test_set_active_profile_pins_verbatim(self, monkeypatch):
        pinned_profile = CalibrationProfile(fft_crossover_taps=7)
        set_active_profile(pinned_profile)
        # Pinned profiles win outright — env overlay does not apply.
        monkeypatch.setenv("REPRO_FFT_CROSSOVER_TAPS", "99")
        assert active_profile() is pinned_profile
        set_active_profile(None)
        assert active_profile().fft_crossover_taps == 99

    def test_planner_profile_none_resolves_per_plan(self):
        p = Planner()
        with planner.override(fused_fft_min_taps=25):
            assert p.plan(
                Workload(height=8, width=8, radius=12, threads=1)
            ).engine == "staged"
        assert p.plan(
            Workload(height=8, width=8, radius=12, threads=1)
        ).engine == "fused"


class TestProfileRoundTrip:
    def test_save_load_identical_plans(self, tmp_path):
        profile = CalibrationProfile(
            fft_crossover_taps=19,
            tiled_min_plane_bytes=4096,
            fused_fft_min_taps=27,
            host="test host",
            source="calibration",
            calibrated=True,
        )
        path = profile.save(tmp_path / "profile.json")
        loaded = CalibrationProfile.load(path)
        # Provenance records where it came from; thresholds identical.
        assert loaded == replace(profile, source=str(path))
        workload = Workload(height=32, width=32, radius=9, threads=1)
        assert Planner(profile).plan(workload).decision() == (
            Planner(loaded).plan(workload).decision()
        )

    def test_profile_file_identical_plans_across_processes(self, tmp_path):
        profile = CalibrationProfile(
            fft_crossover_taps=19, fused_fft_min_taps=21, calibrated=True
        )
        path = profile.save(tmp_path / "profile.json")
        workload = dict(height=40, width=40, radius=10, threads=2)
        here = Planner(CalibrationProfile.load(path)).plan(
            Workload(**workload)
        )
        code = (
            "import json, sys\n"
            "from repro.planner import CalibrationProfile, Planner, Workload\n"
            "profile = CalibrationProfile.load(sys.argv[1])\n"
            "plan = Planner(profile).plan(Workload(**json.loads(sys.argv[2])))\n"
            "print(json.dumps(plan.to_json_dict()))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code, str(path), json.dumps(workload)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        there = ExecutionPlan.from_json_dict(json.loads(result.stdout))
        assert there == here

    def test_missing_profile_falls_back_to_defaults(self, tmp_path):
        assert load_or_default(tmp_path / "nope.json") == CalibrationProfile()
        assert load_or_default(None) == CalibrationProfile()

    def test_corrupt_profile_falls_back_to_defaults(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert load_or_default(path) == CalibrationProfile()

    def test_stale_version_falls_back_but_load_raises(self, tmp_path):
        path = tmp_path / "stale.json"
        payload = CalibrationProfile().to_json_dict()
        payload["version"] = PROFILE_VERSION + 1
        path.write_text(json.dumps(payload))
        assert load_or_default(path) == CalibrationProfile()
        with pytest.raises(ValueError, match="stale profile"):
            CalibrationProfile.load(path)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            CalibrationProfile(fft_crossover_taps=0)
        with pytest.raises(ValueError):
            CalibrationProfile.from_json_dict({"tiled_min_plane_bytes": -5})

    def test_env_profile_file_is_picked_up_at_call_time(
        self, tmp_path, monkeypatch
    ):
        path = CalibrationProfile(
            fft_crossover_taps=11, calibrated=True
        ).save(tmp_path / "env.json")
        monkeypatch.setenv("REPRO_PLANNER_PROFILE", str(path))
        prof = active_profile()
        assert prof.fft_crossover_taps == 11 and prof.calibrated
        # Per-threshold env vars overlay the file-loaded base profile.
        monkeypatch.setenv("REPRO_FFT_CROSSOVER_TAPS", "13")
        assert active_profile().fft_crossover_taps == 13
        monkeypatch.delenv("REPRO_FFT_CROSSOVER_TAPS")
        monkeypatch.delenv("REPRO_PLANNER_PROFILE")
        assert active_profile().fft_crossover_taps == (
            CalibrationProfile().fft_crossover_taps
        )


class TestLazyExports:
    def test_dir_lists_public_surface(self):
        names = dir(planner)
        for name in ("Planner", "Workload", "ExecutionPlan", "override"):
            assert name in names

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            planner.does_not_exist


def test_default_radius_formula_is_ceil_three_sigma():
    # Documented contract the Workload docstring promises.
    for sigma in (0.2, 1.0, 2.5, 16.0):
        assert Workload(height=4, width=4, sigma=sigma).effective_radius == (
            max(1, math.ceil(3.0 * sigma))
        )
