"""Equivalence suite for the blur fast paths.

Covers the contracts stated in ``repro.tonemap.gaussian``'s performance
notes and ``repro.tonemap.fixed_blur``:

* folded/FFT float paths agree with the naive direct path within 1e-9;
* the folded fixed-point pass is **bit-exact** against the per-tap loop
  (the seed implementation, reproduced here as the reference);
* the row-vectorized streaming blur equals the batch reference to
  reassociation tolerance;
* the pure-integer TRN/RND ``FixedArray.cast`` narrowing matches the
  float64 narrowing path bit for bit.
"""

import numpy as np
import pytest

from repro.accel.linebuffer import streaming_blur_plane, streaming_blur_plane_scalar
from repro.errors import ToneMapError
from repro.fixedpoint.array import (
    FixedArray,
    _overflow_array,
    _quantize_scaled_array,
)
from repro.fixedpoint.format import FixedFormat, Overflow, Quant
from repro.tonemap.fixed_blur import (
    FixedBlurConfig,
    fixed_point_blur_batch,
    fixed_point_blur_plane,
    make_fixed_blur_fn,
)
from repro.tonemap.gaussian import (
    BLUR_METHODS,
    FFT_CROSSOVER_TAPS,
    GaussianKernel,
    _select_method,
    blur_batch,
    separable_blur,
)

RNG = np.random.default_rng(99)
PLANE = RNG.uniform(0.0, 1.0, (48, 56))
KERNELS = [
    GaussianKernel(sigma=1.0, radius=2),
    GaussianKernel(sigma=4.0),          # 25 taps: at the FFT crossover
    GaussianKernel(sigma=7.0, radius=30),
]


class TestKernelCaching:
    def test_coefficients_computed_once(self):
        k = GaussianKernel(sigma=3.0)
        assert k.coefficients is k.coefficients

    def test_coefficients_read_only(self):
        k = GaussianKernel(sigma=3.0)
        with pytest.raises(ValueError):
            k.coefficients[0] = 1.0

    def test_equal_kernels_still_compare_equal(self):
        assert GaussianKernel(sigma=2.0) == GaussianKernel(sigma=2.0)
        assert hash(GaussianKernel(sigma=2.0)) == hash(GaussianKernel(sigma=2.0))


class TestFloatPathEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: f"taps{k.taps}")
    @pytest.mark.parametrize("method", ["folded", "fft", "auto"])
    def test_fast_paths_match_direct_within_contract(self, kernel, method):
        direct = separable_blur(PLANE, kernel, method="direct")
        fast = separable_blur(PLANE, kernel, method=method)
        assert np.max(np.abs(fast - direct)) < 1e-9

    def test_auto_dispatch_crosses_at_threshold(self):
        wide = GaussianKernel(sigma=16.0)
        narrow = GaussianKernel(sigma=1.0, radius=2)
        assert wide.taps >= FFT_CROSSOVER_TAPS
        assert _select_method("auto", wide.taps) == "fft"
        assert _select_method("auto", narrow.taps) == "folded"

    def test_explicit_methods_pass_through(self):
        for method in BLUR_METHODS[1:]:
            assert _select_method(method, 97) == method

    def test_unknown_method_rejected(self):
        with pytest.raises(ToneMapError):
            separable_blur(PLANE, KERNELS[0], method="winograd")

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: f"taps{k.taps}")
    def test_batch_matches_per_plane(self, kernel):
        planes = RNG.uniform(0.0, 1.0, (3, 24, 31))
        batched = blur_batch(planes, kernel)
        for i in range(planes.shape[0]):
            np.testing.assert_array_equal(
                batched[i], separable_blur(planes[i], kernel)
            )

    def test_batch_requires_3d(self):
        with pytest.raises(ToneMapError):
            blur_batch(PLANE, KERNELS[0])

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: f"taps{k.taps}")
    def test_tiled_bit_identical_to_folded(self, kernel):
        folded = separable_blur(PLANE, kernel, method="folded")
        tiled = separable_blur(PLANE, kernel, method="tiled")
        np.testing.assert_array_equal(tiled, folded)

    def test_tiled_handles_fortran_ordered_stacks(self):
        # Regression: an F-ordered stack must not defeat the reshape-view
        # output trick (np.empty_like would have preserved F order, the
        # block writes would have landed in a throwaway copy, and the
        # result would have been uninitialized memory).
        planes = np.asfortranarray(RNG.uniform(0.0, 1.0, (3, 24, 31)))
        want = blur_batch(np.ascontiguousarray(planes), KERNELS[0],
                          method="folded")
        got = blur_batch(planes, KERNELS[0], method="tiled")
        np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# Fixed point: the seed per-tap implementation, kept verbatim as the
# bit-exactness oracle for the folded integer pass and the integer cast.
# ----------------------------------------------------------------------


def _seed_cast(arr: FixedArray, fmt: FixedFormat) -> np.ndarray:
    shift = fmt.frac_length - arr.fmt.frac_length
    assert shift < 0, "oracle only narrows"
    scaled = arr.raw.astype(np.float64) * (2.0**shift)
    return _overflow_array(_quantize_scaled_array(scaled, fmt.quant), fmt)


def _seed_fixed_blur(
    plane: np.ndarray, kernel: GaussianKernel, config: FixedBlurConfig
) -> np.ndarray:
    coeff_raws = config.quantized_coefficients(kernel)
    data = FixedArray.from_float(plane, config.data_fmt)

    def one_pass(raw: np.ndarray) -> np.ndarray:
        taps = coeff_raws.size
        radius = (taps - 1) // 2
        padded = np.pad(raw, ((0, 0), (radius, radius)), mode="edge")
        width = raw.shape[1]
        acc = np.zeros_like(raw, dtype=np.int64)
        for k in range(taps):
            acc += np.int64(coeff_raws[k]) * padded[:, k : k + width]
        return _seed_cast(
            FixedArray(acc, config.accumulator_fmt(taps)), config.data_fmt
        )

    horizontal = one_pass(data.raw)
    vertical = one_pass(np.ascontiguousarray(horizontal.T)).T
    return FixedArray(np.ascontiguousarray(vertical), config.data_fmt).to_float()


FIXED_CONFIGS = [
    FixedBlurConfig(),
    FixedBlurConfig(
        data_fmt=FixedFormat(16, 6, quant=Quant.TRN, overflow=Overflow.SAT),
        coeff_fmt=FixedFormat(
            16, 0, signed=False, quant=Quant.TRN, overflow=Overflow.SAT
        ),
        renormalize_coefficients=False,
    ),
    FixedBlurConfig(
        data_fmt=FixedFormat(8, 2, quant=Quant.RND, overflow=Overflow.SAT),
        coeff_fmt=FixedFormat(
            8, 0, signed=False, quant=Quant.RND, overflow=Overflow.SAT
        ),
    ),
    FixedBlurConfig(
        data_fmt=FixedFormat(32, 2, quant=Quant.RND, overflow=Overflow.SAT),
        coeff_fmt=FixedFormat(
            16, 0, signed=False, quant=Quant.RND, overflow=Overflow.SAT
        ),
    ),
]


class TestFixedPointBitExactness:
    @pytest.mark.parametrize(
        "config", FIXED_CONFIGS, ids=lambda c: str(c.data_fmt)
    )
    def test_folded_pass_bit_exact_vs_tap_loop(self, config):
        plane = RNG.uniform(0.0, 1.0, (40, 44))
        kernel = GaussianKernel(sigma=2.0, radius=6)
        np.testing.assert_array_equal(
            fixed_point_blur_plane(plane, kernel, config),
            _seed_fixed_blur(plane, kernel, config),
        )

    def test_wide_kernel_bit_exact(self):
        plane = RNG.uniform(0.0, 1.0, (32, 32))
        kernel = GaussianKernel(sigma=8.0)  # 49 taps
        np.testing.assert_array_equal(
            fixed_point_blur_plane(plane, kernel),
            _seed_fixed_blur(plane, kernel, FixedBlurConfig()),
        )

    def test_even_symmetric_taps_fail_loudly(self):
        # The pass geometry (radius on both sides) assumes odd taps, as
        # every GaussianKernel guarantees.  An even symmetric coefficient
        # array must not slip into the centre-fold and silently drop its
        # last tap; it falls through to the per-tap loop, whose padding
        # arithmetic rejects the shape.
        from repro.tonemap.fixed_blur import _fixed_pass_rows

        raw = np.arange(12, dtype=np.int64).reshape(2, 6)
        coeffs = np.array([3, 5, 5, 3], dtype=np.int64)
        with pytest.raises(ValueError):
            _fixed_pass_rows(raw, coeffs, FixedBlurConfig())

    def test_quantized_coefficients_cached_and_read_only(self):
        cfg = FixedBlurConfig()
        kernel = GaussianKernel(sigma=2.0, radius=6)
        a = cfg.quantized_coefficients(kernel)
        b = cfg.quantized_coefficients(kernel)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = 1


class TestBatchedFixedPoint:
    """The (N, H, W) fixed-point path: bit-exact, never merely close."""

    @pytest.mark.parametrize(
        "config", FIXED_CONFIGS, ids=lambda c: str(c.data_fmt)
    )
    def test_batch_bit_exact_vs_per_plane(self, config):
        stack = RNG.uniform(0.0, 1.0, (4, 26, 31))
        kernel = GaussianKernel(sigma=2.0, radius=6)
        np.testing.assert_array_equal(
            fixed_point_blur_batch(stack, kernel, config),
            np.stack(
                [fixed_point_blur_plane(p, kernel, config) for p in stack]
            ),
        )

    def test_batch_bit_exact_vs_seed_tap_loop(self):
        stack = RNG.uniform(0.0, 1.0, (3, 22, 27))
        kernel = GaussianKernel(sigma=1.5, radius=4)
        config = FixedBlurConfig()
        np.testing.assert_array_equal(
            fixed_point_blur_batch(stack, kernel, config),
            np.stack([_seed_fixed_blur(p, kernel, config) for p in stack]),
        )

    def test_batch_vs_streaming_scalar_within_quantization(self):
        # The streaming scalar model is the float dataflow; the fixed-point
        # batch differs from it by exactly the quantization error the
        # hardware would exhibit (the paper's 66 dB PSNR regime), well
        # under 1e-3 on unit-range planes for the 16-bit formats.
        stack = RNG.uniform(0.0, 1.0, (2, 18, 21))
        kernel = GaussianKernel(sigma=1.5, radius=4)
        batched = fixed_point_blur_batch(stack, kernel)
        for plane, fixed in zip(stack, batched):
            reference = streaming_blur_plane_scalar(plane, kernel)
            assert np.max(np.abs(fixed - reference)) < 1e-3

    def test_single_image_batch_matches_plane(self):
        plane = RNG.uniform(0.0, 1.0, (17, 23))
        kernel = GaussianKernel(sigma=2.0, radius=5)
        np.testing.assert_array_equal(
            fixed_point_blur_batch(plane[np.newaxis], kernel)[0],
            fixed_point_blur_plane(plane, kernel),
        )

    def test_batch_requires_3d(self):
        with pytest.raises(ToneMapError):
            fixed_point_blur_batch(PLANE, KERNELS[0])

    def test_make_fixed_blur_fn_exposes_batch_path(self):
        config = FixedBlurConfig()
        fn = make_fixed_blur_fn(config)
        assert fn.config is config
        stack = RNG.uniform(0.0, 1.0, (2, 12, 15))
        kernel = GaussianKernel(sigma=1.0, radius=3)
        np.testing.assert_array_equal(
            fn.blur_batch(stack, kernel),
            fixed_point_blur_batch(stack, kernel, config),
        )


class TestIntegerCastEquivalence:
    @pytest.mark.parametrize("quant", [Quant.TRN, Quant.RND])
    @pytest.mark.parametrize("word_length", [20, 40, 50])
    def test_integer_narrowing_matches_float_path(self, quant, word_length):
        src = FixedFormat(word_length, word_length // 2)
        dst = FixedFormat(12, 4, quant=quant, overflow=Overflow.SAT)
        raws = RNG.integers(src.raw_min, src.raw_max, 4096, dtype=np.int64)
        arr = FixedArray(raws, src)
        np.testing.assert_array_equal(
            arr.cast(dst).raw, _seed_cast(arr, dst)
        )

    def test_negative_values_round_like_float_path(self):
        src = FixedFormat(24, 8)
        for quant in (Quant.TRN, Quant.RND):
            dst = FixedFormat(8, 4, quant=quant, overflow=Overflow.SAT)
            raws = np.arange(-5000, 5000, 7, dtype=np.int64)
            arr = FixedArray(raws, src)
            np.testing.assert_array_equal(
                arr.cast(dst).raw, _seed_cast(arr, dst)
            )


class TestStreamingVectorized:
    @pytest.mark.parametrize("shape", [(20, 26), (12, 33), (33, 12)])
    def test_matches_batch_reference(self, shape):
        plane = RNG.uniform(0.0, 1.0, shape)
        kernel = GaussianKernel(sigma=1.5, radius=3)
        np.testing.assert_allclose(
            streaming_blur_plane(plane, kernel),
            separable_blur(plane, kernel, method="direct"),
            atol=1e-9,
        )

    def test_wide_kernel_exceeding_plane(self):
        plane = RNG.uniform(0.0, 1.0, (16, 16))
        kernel = GaussianKernel(sigma=8.0)  # radius 24 > plane
        np.testing.assert_allclose(
            streaming_blur_plane(plane, kernel),
            separable_blur(plane, kernel, method="direct"),
            atol=1e-9,
        )

    def test_scalar_and_vectorized_agree(self):
        plane = RNG.uniform(0.0, 1.0, (14, 18))
        kernel = GaussianKernel(sigma=1.2, radius=4)
        np.testing.assert_allclose(
            streaming_blur_plane(plane, kernel),
            streaming_blur_plane_scalar(plane, kernel),
            atol=1e-12,
        )

    def test_vectorized_handles_512_quickly(self):
        import time

        plane = RNG.uniform(0.0, 1.0, (512, 512))
        kernel = GaussianKernel(sigma=16.0)
        start = time.perf_counter()
        out = streaming_blur_plane(plane, kernel)
        elapsed = time.perf_counter() - start
        assert out.shape == plane.shape
        assert elapsed < 1.0, f"512^2 streaming blur took {elapsed:.2f}s"
