"""Tests for repro.platform: device, clock, memory, axi, soc."""

import pytest

from repro.errors import DataMoverError, PlatformError
from repro.platform import (
    ZYNQ_7010,
    ZYNQ_7020,
    ZYNQ_7045,
    ArmCortexA9Model,
    AxiPort,
    BramModel,
    ClockDomain,
    DataMover,
    DataMoverKind,
    DdrModel,
    ZynqSoC,
    transfer_cost,
)
from repro.platform.clock import PL_CLOCK_100


class TestDevice:
    def test_catalog_ordering(self):
        assert ZYNQ_7010.lut < ZYNQ_7020.lut < ZYNQ_7045.lut

    def test_limits_roundtrip(self):
        limits = ZYNQ_7020.limits
        assert limits.lut == 53200
        assert limits.dsp == 220
        assert limits.bram18 == 280

    def test_bram_capacity(self):
        # Z-7020: 280 x 18Kb = 630 KB.
        assert ZYNQ_7020.bram_kbytes == pytest.approx(630.0)


class TestClock:
    def test_period(self):
        clk = ClockDomain("pl", 100.0)
        assert clk.period_ns == pytest.approx(10.0)

    def test_cycles_to_seconds(self):
        clk = ClockDomain("pl", 100.0)
        assert clk.cycles_to_seconds(1_000_000) == pytest.approx(0.01)

    def test_seconds_to_cycles_rounds_up(self):
        clk = ClockDomain("pl", 100.0)
        assert clk.seconds_to_cycles(1.5e-8) == 2

    def test_invalid_frequency(self):
        with pytest.raises(PlatformError):
            ClockDomain("bad", 0.0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(PlatformError):
            PL_CLOCK_100.cycles_to_seconds(-1)


class TestDdrModel:
    def test_burst_faster_than_beats(self):
        ddr = DdrModel()
        num_bytes = 1 << 20
        burst = ddr.burst_transfer_seconds(num_bytes)
        beats = ddr.single_beat_seconds(num_bytes // 4)
        assert burst < beats / 10

    def test_zero_bytes_free(self):
        assert DdrModel().burst_transfer_seconds(0) == 0.0

    def test_effective_bandwidth(self):
        ddr = DdrModel(peak_bandwidth_bytes_per_s=4e9, burst_efficiency=0.5)
        assert ddr.effective_bandwidth == pytest.approx(2e9)

    def test_validation(self):
        with pytest.raises(PlatformError):
            DdrModel(peak_bandwidth_bytes_per_s=0)
        with pytest.raises(PlatformError):
            DdrModel(burst_efficiency=1.5)


class TestBramModel:
    def test_brams_for(self):
        bram = BramModel()
        assert bram.brams_for(depth=512, width_bits=36) == 1
        assert bram.brams_for(depth=2048, width_bits=32) == 4

    def test_lines_fit(self):
        bram = BramModel(total_bram18=280)
        # 1024-pixel 32-bit lines: 32 Kb each; 280*18Kb*0.75 usable.
        lines = bram.lines_fit(1024, 32)
        assert 100 <= lines <= 130

    def test_paper_line_buffer_fits(self):
        # 57 lines of 1024 32-bit pixels must fit the Z-7020 (the
        # feasibility condition of the Fig. 4 restructuring).
        assert BramModel().lines_fit(1024, 32) >= 57

    def test_validation(self):
        with pytest.raises(PlatformError):
            BramModel().brams_for(0, 32)
        with pytest.raises(PlatformError):
            BramModel().lines_fit(1024, 32, reserve_fraction=1.0)


class TestDataMovers:
    def test_dma_burst_cost_scales_with_size(self):
        ddr = DdrModel()
        mover = DataMover(DataMoverKind.AXI_DMA_SIMPLE)
        small = transfer_cost(1 << 12, mover, ddr, PL_CLOCK_100)
        large = transfer_cost(1 << 22, mover, ddr, PL_CLOCK_100)
        assert large.bus_seconds > small.bus_seconds

    def test_simple_dma_size_limit(self):
        ddr = DdrModel()
        mover = DataMover(DataMoverKind.AXI_DMA_SIMPLE)
        with pytest.raises(DataMoverError, match="at most"):
            transfer_cost(16 << 20, mover, ddr, PL_CLOCK_100)

    def test_sg_dma_handles_large(self):
        ddr = DdrModel()
        mover = DataMover(DataMoverKind.AXI_DMA_SG)
        cost = transfer_cost(16 << 20, mover, ddr, PL_CLOCK_100)
        assert cost.bus_seconds > 0

    def test_coherent_mover_skips_cache_maintenance(self):
        ddr = DdrModel()
        hp = DataMover(DataMoverKind.AXI_DMA_SIMPLE, AxiPort.HP)
        acp = DataMover(DataMoverKind.AXI_DMA_SIMPLE, AxiPort.ACP)
        num_bytes = 1 << 20
        cost_hp = transfer_cost(num_bytes, hp, ddr, PL_CLOCK_100)
        cost_acp = transfer_cost(num_bytes, acp, ddr, PL_CLOCK_100)
        assert cost_acp.cpu_cycles < cost_hp.cpu_cycles

    def test_zero_copy_defers_to_kernel(self):
        ddr = DdrModel()
        cost = transfer_cost(
            1 << 20, DataMover(DataMoverKind.ZERO_COPY), ddr, PL_CLOCK_100
        )
        assert cost.bus_seconds == 0.0

    def test_axi_lite_per_word(self):
        ddr = DdrModel()
        mover = DataMover(DataMoverKind.AXI_LITE, AxiPort.GP)
        cost4 = transfer_cost(4, mover, ddr, PL_CLOCK_100)
        cost64 = transfer_cost(64, mover, ddr, PL_CLOCK_100)
        assert cost64.bus_seconds > cost4.bus_seconds

    def test_axi_lite_requires_gp(self):
        with pytest.raises(DataMoverError):
            DataMover(DataMoverKind.AXI_LITE, AxiPort.HP)

    def test_total_seconds(self):
        ddr = DdrModel()
        cost = transfer_cost(
            1 << 16, DataMover(DataMoverKind.AXI_DMA_SIMPLE), ddr, PL_CLOCK_100
        )
        total = cost.total_seconds(cpu_freq_mhz=666.7)
        assert total > cost.bus_seconds

    def test_negative_bytes_rejected(self):
        ddr = DdrModel()
        with pytest.raises(DataMoverError):
            transfer_cost(-1, DataMover(DataMoverKind.AXI_DMA_SIMPLE), ddr,
                          PL_CLOCK_100)


class TestZynqSoC:
    def test_defaults(self):
        soc = ZynqSoC()
        assert soc.device.name == "XC7Z020"
        assert soc.clock_ratio == pytest.approx(6.667, rel=1e-3)

    def test_cycle_conversions(self):
        soc = ZynqSoC()
        assert soc.pl_cycles_to_seconds(100e6) == pytest.approx(1.0)
        assert soc.ps_cycles_to_seconds(666.7e6) == pytest.approx(1.0)

    def test_with_pl_clock(self):
        soc = ZynqSoC().with_pl_clock(142.9)
        assert soc.pl_clock.freq_mhz == pytest.approx(142.9)

    def test_excessive_pl_clock_rejected(self):
        with pytest.raises(PlatformError):
            ZynqSoC().with_pl_clock(400.0)

    def test_cpu_overclock_rejected(self):
        cpu = ArmCortexA9Model(freq_mhz=900.0)
        with pytest.raises(PlatformError):
            ZynqSoC(cpu=cpu, ps_clock=ClockDomain("ps", 900.0))
