"""The runtime error taxonomy must survive a process boundary.

Shard workers, chaos harnesses, and multi-process callers all ship
runtime exceptions through pickles (``concurrent.futures`` marshals a
raised exception back to the submitting process).  An exception whose
``__init__`` takes extra arguments silently breaks that contract unless
its state round-trips — the classic failure mode is
``TypeError: __init__() missing 1 required positional argument`` at
*unpickle* time, which masks the real error.  Every runtime error is
therefore pickled, crossed through a real spawned process, re-raised
there, and checked attribute-for-attribute on the way back.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceOverloadedError,
    ShardCrashError,
    ShardTimeoutError,
    ToneMapError,
)

# One representative instance per runtime error, constructed the way the
# runtime actually constructs them (keyword attributes included).
RUNTIME_ERRORS = [
    ToneMapError("bad sigma"),
    ServiceOverloadedError("queue full", tenant="heavy", shed_count=3),
    ShardCrashError("workers died twice"),
    DeadlineExceededError(
        "frame expired", tenant="light", elapsed_ms=72.5, deadline_ms=50.0
    ),
    ShardTimeoutError(
        "batch hung past budget", tenant="heavy", elapsed_ms=2040.0, retries=1
    ),
]

_IDS = [type(err).__name__ for err in RUNTIME_ERRORS]


def _reraise(payload: bytes) -> bytes:
    """Runs in the child: unpickle, raise, catch, pickle back."""
    error = pickle.loads(payload)
    try:
        raise error
    except ReproError as caught:
        return pickle.dumps(caught)


def _assert_equivalent(original, restored):
    assert type(restored) is type(original)
    assert str(restored) == str(original)
    assert restored.args == original.args
    assert vars(restored) == vars(original)


@pytest.mark.parametrize("error", RUNTIME_ERRORS, ids=_IDS)
def test_round_trips_in_process(error):
    _assert_equivalent(error, pickle.loads(pickle.dumps(error)))


def test_every_error_crosses_a_real_process_boundary():
    # One executor for all errors: spawn start-up dominates, and the
    # point is the boundary, not per-error isolation.
    with ProcessPoolExecutor(max_workers=1) as pool:
        for error in RUNTIME_ERRORS:
            returned = pool.submit(_reraise, pickle.dumps(error)).result(
                timeout=120
            )
            _assert_equivalent(error, pickle.loads(returned))


def test_future_propagation_preserves_attributes():
    # The exact path the runtime uses: a child raises, concurrent.futures
    # pickles the exception into the parent's future.
    error = ShardTimeoutError("hung", tenant="t0", elapsed_ms=10.0, retries=2)

    with ProcessPoolExecutor(max_workers=1) as pool:
        future = pool.submit(_raise_directly, pickle.dumps(error))
        with pytest.raises(ShardTimeoutError) as excinfo:
            future.result(timeout=120)
    assert excinfo.value.tenant == "t0"
    assert excinfo.value.elapsed_ms == 10.0
    assert excinfo.value.retries == 2


def _raise_directly(payload: bytes) -> None:
    raise pickle.loads(payload)
