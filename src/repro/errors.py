"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FixedPointError(ReproError):
    """Invalid fixed-point format or conversion failure."""


class BusAlignmentError(FixedPointError):
    """A hardware-function argument width violates SDSoC bus alignment.

    SDSoC requires accelerator argument widths of 8, 16, 32 or 64 bits
    (paper section III-C); other widths cannot cross the PS/PL boundary.
    """


class ImageError(ReproError):
    """Invalid image shape, dtype, or file format."""


class ImageFormatError(ImageError):
    """A file could not be parsed as the expected image format."""


class ToneMapError(ReproError):
    """Invalid tone-mapping parameters."""


class ServiceOverloadedError(ReproError):
    """The serving queue is full and the admission policy refused the work.

    Raised by the runtime's backpressure layer (``repro.runtime``): under
    the ``reject`` policy the submitter gets this immediately; under
    ``shed-oldest`` the oldest queued submission's future fails with it
    when a newer arrival takes its slot.

    Attributes
    ----------
    tenant:
        The tenant whose admission limit triggered the refusal (``None``
        for the single-tenant / global limit).
    shed_count:
        How many frames share this exception context.  Under a shed
        storm the ingestor fails every victim of one storm with a single
        coalesced instance instead of constructing one per frame; the
        counter grows as victims join the storm.
    """

    def __init__(self, message: str, tenant: str | None = None,
                 shed_count: int = 0):
        super().__init__(message)
        self.tenant = tenant
        self.shed_count = shed_count


class ShardCrashError(ReproError):
    """A shard worker process died and the batch could not be replayed.

    The pool respawns its worker set after a crash and replays the
    failed batch once on the fresh workers; this error surfaces only
    when the replay itself also loses a worker (persistent crash —
    e.g. the workload reliably OOM-kills workers).
    """


class DeadlineExceededError(ReproError):
    """A frame's latency budget expired before it could be dispatched.

    Raised onto a frame's future by the ingestor when the deadline
    stamped at ``submit(..., deadline_ms=...)`` passes while the frame
    is still queued: computing a result nobody can use anymore would
    only steal batch seats from frames that can still make their
    budgets, so expired frames are shed at dispatch time instead.

    Attributes
    ----------
    tenant:
        The tenant the frame was submitted under.
    elapsed_ms:
        How long the frame actually waited before being shed.
    deadline_ms:
        The budget it was submitted with.
    """

    def __init__(self, message: str, tenant: str | None = None,
                 elapsed_ms: float = 0.0, deadline_ms: float | None = None):
        super().__init__(message)
        self.tenant = tenant
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms


class WireProtocolError(ReproError):
    """A multi-host wire frame could not be sent or decoded.

    Raised by :mod:`repro.runtime.net` when a peer speaks the wrong
    protocol (bad magic/version), a frame header is malformed or
    oversized, or the connection dies mid-frame.  The host pool treats
    it like a connection loss: the victim host is marked dead and the
    batch replays on another host.
    """


class HostUnavailableError(ShardCrashError):
    """No shard host is left to serve a batch.

    Raised by :class:`~repro.runtime.hostpool.HostPool` when every host
    is dead (or partitioned away) and the replay budget cannot buy a
    live one.  Subclasses :class:`ShardCrashError` on purpose: the
    service's circuit breaker already browns that error out to the
    in-process mapper, and total host loss deserves exactly the same
    fallback.
    """


class ShardTimeoutError(ReproError):
    """A sharded batch exceeded its execution budget and replay failed.

    The pool's watchdog SIGKILLs workers that hold a batch past its
    budget (an explicit ``timeout`` or the p95-derived hang threshold)
    and replays the batch once on a respawned worker set — a *hedged
    replay*.  This error surfaces only when the replay budget is
    exhausted too: the batch hung repeatedly, or the remaining deadline
    budget cannot fit another attempt.

    Attributes
    ----------
    tenant:
        The tenant whose budget drove the timeout (``None`` when the
        batch mixed tenants or the pool was called directly).
    elapsed_ms:
        Wall-clock spent across all attempts before giving up.
    retries:
        Hedged replays performed before this error.
    """

    def __init__(self, message: str, tenant: str | None = None,
                 elapsed_ms: float = 0.0, retries: int = 0):
        super().__init__(message)
        self.tenant = tenant
        self.elapsed_ms = elapsed_ms
        self.retries = retries


class HlsError(ReproError):
    """High-level-synthesis front-end or scheduling failure."""


class PragmaError(HlsError):
    """An HLS pragma is malformed or applied to a non-existent target."""


class ResourceError(HlsError):
    """A synthesized design does not fit the target device."""


class PlatformError(ReproError):
    """Invalid platform configuration (clocks, memories, ports)."""


class DataMoverError(PlatformError):
    """No data mover can implement the requested transfer."""


class PowerError(ReproError):
    """Invalid power-model configuration or query."""


class FlowError(ReproError):
    """The SDSoC co-design flow was driven with inconsistent inputs."""


class CalibrationError(ReproError):
    """A calibration constant is out of its documented validity range."""
