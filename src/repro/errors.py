"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FixedPointError(ReproError):
    """Invalid fixed-point format or conversion failure."""


class BusAlignmentError(FixedPointError):
    """A hardware-function argument width violates SDSoC bus alignment.

    SDSoC requires accelerator argument widths of 8, 16, 32 or 64 bits
    (paper section III-C); other widths cannot cross the PS/PL boundary.
    """


class ImageError(ReproError):
    """Invalid image shape, dtype, or file format."""


class ImageFormatError(ImageError):
    """A file could not be parsed as the expected image format."""


class ToneMapError(ReproError):
    """Invalid tone-mapping parameters."""


class ServiceOverloadedError(ReproError):
    """The serving queue is full and the admission policy refused the work.

    Raised by the runtime's backpressure layer (``repro.runtime``): under
    the ``reject`` policy the submitter gets this immediately; under
    ``shed-oldest`` the oldest queued submission's future fails with it
    when a newer arrival takes its slot.
    """


class HlsError(ReproError):
    """High-level-synthesis front-end or scheduling failure."""


class PragmaError(HlsError):
    """An HLS pragma is malformed or applied to a non-existent target."""


class ResourceError(HlsError):
    """A synthesized design does not fit the target device."""


class PlatformError(ReproError):
    """Invalid platform configuration (clocks, memories, ports)."""


class DataMoverError(PlatformError):
    """No data mover can implement the requested transfer."""


class PowerError(ReproError):
    """Invalid power-model configuration or query."""


class FlowError(ReproError):
    """The SDSoC co-design flow was driven with inconsistent inputs."""


class CalibrationError(ReproError):
    """A calibration constant is out of its documented validity range."""
