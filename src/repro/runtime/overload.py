"""SLO-driven overload control: an explicit, observable degradation ladder.

The admission layer (:mod:`repro.runtime.ingest`) treats overload as a
per-frame decision — block, reject, or shed one queued frame.  That is
the right *edge* behaviour, but a serving tier under sustained pressure
needs a *policy* answer too: what quality/latency trade does the whole
service make, and when does it make it back?  This module is that
policy.  An :class:`OverloadController` watches the signals the runtime
already produces (end-to-end p95 latency from the ingestor's window,
admitted-but-unfinished queue depth) against a declared
:class:`ServiceLevelObjective` and walks a four-rung ladder::

    full  ->  degraded_plan  ->  shed_best_effort  ->  brownout
     ^                                                    |
     +------------- (sustained recovery) -----------------+

``full``
    Serve everything at full quality.
``degraded_plan``
    The service swaps its in-process execution onto a planner-pinned
    cheaper :class:`~repro.planner.plan.ExecutionPlan` (a degraded blur
    regime via :func:`repro.planner.pinned` — bit-honest about what
    changed: the pin is recorded in the plan's rationale).
``shed_best_effort``
    The ingestor stops admitting :class:`~repro.runtime.ingest.
    ServiceClass` ``best_effort`` frames and drops the ones already
    queued — interactive and standard traffic keeps its seats.
``brownout``
    A pool-backed service stops offering batches to its shard/host pool
    and serves from the in-process mapper (the breaker's brownout path,
    entered deliberately); an in-process service simply stays maximally
    degraded.

Both directions are **hysteretic**: climbing one rung takes
``climb_patience`` consecutive SLO-breaching observations, descending
takes ``descend_patience`` consecutive observations *below* the recovery
band (``recover_fraction`` of the SLO), and observations between the two
bands reset both counters — a service hovering at its SLO holds its rung
instead of flapping.  ``min_dwell_s`` adds a time floor between
transitions on top of the counts (the injected clock makes it
fake-clock testable, like the circuit breaker).

Every transition is counted and the current rung is surfaced through
:class:`~repro.runtime.reliability.ReliabilityStats` (``ladder_rung`` /
``ladder_transitions`` / ``ladder_shed``) and the CLI report.  The same
queue-depth / p95 signals feed the host-level autoscaler
(:meth:`repro.runtime.hostpool.HostPool.observe`), so the ladder and the
scale-out policy read one truth.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import ToneMapError
from repro.runtime.clock import MONOTONIC, Clock

#: Ladder rungs, mildest first.  The index order is the climb order.
LADDER_FULL = "full"
LADDER_DEGRADED = "degraded_plan"
LADDER_SHED = "shed_best_effort"
LADDER_BROWNOUT = "brownout"

LADDER = (LADDER_FULL, LADDER_DEGRADED, LADDER_SHED, LADDER_BROWNOUT)


@dataclass(frozen=True)
class ServiceLevelObjective:
    """The declared healthy envelope the ladder defends.

    Parameters
    ----------
    p95_ms:
        End-to-end p95 latency bound (submit to result, as measured by
        the ingestor's sliding window).  ``None`` means latency does
        not drive the ladder.
    queue_depth:
        Most admitted-but-unfinished frames the service considers
        healthy.  ``None`` means depth does not drive the ladder.

    At least one bound must be declared — an SLO with no objective
    cannot be breached or met.
    """

    p95_ms: Optional[float] = None
    queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.p95_ms is None and self.queue_depth is None:
            raise ToneMapError(
                "a ServiceLevelObjective needs p95_ms and/or queue_depth"
            )
        if self.p95_ms is not None and self.p95_ms <= 0:
            raise ToneMapError(
                f"slo p95_ms must be > 0, got {self.p95_ms}"
            )
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ToneMapError(
                f"slo queue_depth must be >= 1, got {self.queue_depth}"
            )


@dataclass(frozen=True)
class OverloadPolicy:
    """Tuning knobs for :class:`OverloadController`.

    Parameters
    ----------
    slo:
        The objective being defended.
    climb_patience:
        Consecutive SLO-breaching observations required per rung up.
    descend_patience:
        Consecutive recovered observations required per rung down —
        deliberately larger than ``climb_patience`` by default, so the
        ladder reacts fast and relaxes slowly.
    recover_fraction:
        The recovery band: an observation only counts toward descending
        when every declared signal sits at or below
        ``recover_fraction x`` its SLO bound.  Observations between the
        recovery band and the SLO reset both patience counters (the
        hysteresis dead zone).
    min_dwell_s:
        Time floor between transitions, measured on the injected clock;
        0 disables it and the patience counts alone gate transitions.
    """

    slo: ServiceLevelObjective
    climb_patience: int = 2
    descend_patience: int = 6
    recover_fraction: float = 0.7
    min_dwell_s: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.slo, ServiceLevelObjective):
            raise ToneMapError(
                f"slo must be a ServiceLevelObjective, got {type(self.slo)!r}"
            )
        if self.climb_patience < 1 or self.descend_patience < 1:
            raise ToneMapError(
                "climb_patience and descend_patience must be >= 1, got "
                f"{self.climb_patience}/{self.descend_patience}"
            )
        if not 0.0 < self.recover_fraction <= 1.0:
            raise ToneMapError(
                f"recover_fraction must be in (0, 1], got "
                f"{self.recover_fraction}"
            )
        if self.min_dwell_s < 0:
            raise ToneMapError(
                f"min_dwell_s must be >= 0, got {self.min_dwell_s}"
            )


class OverloadController:
    """Walks the degradation ladder from (p95, queue-depth) observations.

    Thread-safe and clock-injected; the ingestor feeds
    :meth:`observe` once per completed batch (the same cadence the
    shard autoscaler observes at) and applies the returned rung.  The
    controller holds no references to the service — it is a pure policy
    object, so tests drive it observation by observation with a
    :class:`~repro.runtime.clock.FakeClock`.
    """

    def __init__(
        self,
        policy: OverloadPolicy,
        clock: Clock = MONOTONIC,
    ):
        if not isinstance(policy, OverloadPolicy):
            raise ToneMapError(
                f"expected an OverloadPolicy, got {type(policy)!r}"
            )
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._index = 0
        self._hot = 0
        self._cold = 0
        self._transitions = 0
        self._transitioned_at: Optional[float] = None

    def observe(self, p95_ms: Optional[float], queue_depth: int) -> str:
        """Feed one load observation; returns the (possibly new) rung.

        ``p95_ms`` may be ``None`` (or 0.0, the empty-window value)
        before any latency sample exists — only the declared,
        measurable signals participate in the breach/recovery decision.
        """
        slo = self.policy.slo
        if p95_ms is not None and p95_ms <= 0.0:
            p95_ms = None  # empty latency window: no signal yet
        with self._lock:
            breach = (
                slo.p95_ms is not None
                and p95_ms is not None
                and p95_ms > slo.p95_ms
            ) or (
                slo.queue_depth is not None
                and queue_depth > slo.queue_depth
            )
            recovered = not breach and (
                slo.p95_ms is None
                or p95_ms is None
                or p95_ms <= slo.p95_ms * self.policy.recover_fraction
            ) and (
                slo.queue_depth is None
                or queue_depth
                <= slo.queue_depth * self.policy.recover_fraction
            )
            if breach:
                self._hot += 1
                self._cold = 0
            elif recovered:
                self._cold += 1
                self._hot = 0
            else:
                # The dead zone between recovery band and SLO: hold the
                # rung, forget any streak — that is the hysteresis.
                self._hot = 0
                self._cold = 0
            if breach and self._hot >= self.policy.climb_patience:
                if self._index < len(LADDER) - 1 and self._dwelled():
                    self._index += 1
                    self._note_transition()
                self._hot = 0
            elif recovered and self._cold >= self.policy.descend_patience:
                if self._index > 0 and self._dwelled():
                    self._index -= 1
                    self._note_transition()
                self._cold = 0
            return LADDER[self._index]

    def _dwelled(self) -> bool:
        # caller holds the lock
        if self.policy.min_dwell_s <= 0 or self._transitioned_at is None:
            return True
        return (
            self._clock.now() - self._transitioned_at
            >= self.policy.min_dwell_s
        )

    def _note_transition(self) -> None:
        # caller holds the lock
        self._transitions += 1
        self._transitioned_at = self._clock.now()

    @property
    def rung(self) -> str:
        """The ladder rung currently in force."""
        with self._lock:
            return LADDER[self._index]

    @property
    def transitions(self) -> int:
        """Rung changes since construction (both directions)."""
        with self._lock:
            return self._transitions


def rung_index(rung: str) -> int:
    """Position of ``rung`` on the ladder (for severity comparisons)."""
    try:
        return LADDER.index(rung)
    except ValueError:
        raise ToneMapError(
            f"unknown ladder rung {rung!r}; expected one of {LADDER}"
        ) from None
