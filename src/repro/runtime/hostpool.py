"""Multi-host data plane: serving hosts and the routing host pool.

:class:`~repro.runtime.shard.ShardPool` scales the paper's accelerator
model across the *cores* of one machine; this module scales it across
*machines*.  The analogy stays the same one the single-host stack was
built on — the batch hop to a worker is the CPU→FPGA AXI transfer — but
across hosts the hop is a real network transfer, so it goes through the
length-prefixed scatter-gather protocol in :mod:`repro.runtime.net`:
one kernel-mediated copy per direction, zero userspace staging, and
every fallback byte counted in ``DataPlaneStats.net.bytes_staged``.

Two classes:

* :class:`HostServer` — the serving side.  One per host process: it
  owns a :class:`~repro.runtime.shard.ShardPool` (the host's workers),
  accepts client connections, and serves ``MSG_RUN`` frames.  Incoming
  payloads land **directly in an arena input slot** (the receive sink
  leases the slot before the payload bytes are read), the batch runs
  through ``run_leased``, and the result slab is sent back by
  reference — the wire hop adds zero staging copies on the host.
  ``repro-tonemap serve-host`` wraps it for the command line.
* :class:`HostPool` — the routing client.  It speaks the same
  duck-typed surface as ``ShardPool`` (``run_leased`` / ``run_stack`` /
  ``run_batch``, the arena, the reliability counters), so
  :class:`~repro.runtime.service.ToneMapService` and the ingestor run
  unchanged on top of it (``ToneMapService(hosts=2)``).  Batches
  round-robin across live hosts; each host serializes its in-flight
  request on one connection, so concurrency comes from the service's
  thread pool spreading batches over hosts.

**Host failure lifecycle** — PR 8's worker reliability machinery,
generalized one level up:

1. A connection failure (refused, reset, truncated frame, injected
   partition) marks the host **dead**: ``hosts_lost`` increments, the
   batch *replays on another live host* (its input frames still sit in
   the client arena — a replay is a pure re-dispatch), and a background
   revive thread starts.
2. The revive thread reconnects and health-checks (``MSG_PING``).  A
   pool-owned host whose process died is **respawned** first
   (``worker_respawns`` counts these, the host-level analogue of
   worker-set rebuilds); a merely partitioned host heals by
   reconnection alone.
3. A socket *timeout* is a budget signal, not a death: the connection
   is severed and the batch hedge-replays (``hedged_replays`` /
   ``watchdog_kills``) up to ``timeout_retries`` times — on another
   host when one is live.
4. When every host is dead, :class:`~repro.errors.HostUnavailableError`
   surfaces.  It subclasses ``ShardCrashError``, so a service breaker
   browns the batch out to the in-process mapper exactly as it does
   for a single-host pool failure — callers see latency, not errors.

**Fault injection.**  The pool consumes the *network* kinds of a
:class:`~repro.runtime.faults.FaultPlan` client-side: ``partition``
severs the victim's connection mid-flight, ``slow_link`` sleeps seeded
jitter before the send, ``host_loss`` SIGKILLs the serving host's
process group.  Worker kinds (``kill`` / ``hang`` / ``exhaust`` /
``slow``) are executed by each host's *own* pool — spawned hosts
receive the plan spec, so one chaos plan exercises both tiers (each
endpoint consumes its own attempt stream, so worker-kind indices are
host-local).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import socket
import sys
import threading
import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    HostUnavailableError,
    ShardCrashError,
    ShardTimeoutError,
    ToneMapError,
    WireProtocolError,
)
from repro.image.hdr import HDRImage
from repro.runtime.arena import ArenaLease, ShmArena
from repro.runtime.clock import MONOTONIC, Clock
from repro.runtime.faults import FaultInjector, resolve_injector
from repro.runtime.net import (
    MSG_ERR,
    MSG_OK,
    MSG_PING,
    MSG_PONG,
    MSG_RUN,
    NetCounters,
    NetStats,
    recv_message,
    send_message,
)
from repro.runtime.shard import (
    AutoscalePolicy,
    DataPlaneStats,
    ShardAutoscaler,
    ShardPool,
)
from repro.tonemap.fixed_blur import FixedBlurConfig
from repro.tonemap.pipeline import ToneMapParams

#: An address is ``(host, port)``; string form ``"host:port"`` accepted.
HostAddress = Tuple[str, int]

#: Wire dtypes a RUN frame may carry; a closed set so a corrupt frame
#: cannot make ``np.dtype`` evaluate arbitrary type strings.
_WIRE_DTYPES = frozenset(("float32",))


def parse_address(value: Union[str, Tuple[str, int]]) -> HostAddress:
    """Normalize ``"host:port"`` / ``(host, port)`` to a tuple."""
    if isinstance(value, tuple):
        host, port = value
        return str(host), int(port)
    if isinstance(value, str):
        host, sep, port = value.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ToneMapError(
                f"host address must look like 'host:port', got {value!r}"
            )
        return host, int(port)
    raise ToneMapError(
        f"host address must be 'host:port' or (host, port), got "
        f"{type(value)!r}"
    )


# ----------------------------------------------------------------------
# Serving side
# ----------------------------------------------------------------------
class HostServer:
    """Serve tone-map batches over the wire protocol from one host.

    Owns a :class:`~repro.runtime.shard.ShardPool` and a listening TCP
    socket; each accepted connection gets a serving thread that loops
    frames until the client hangs up.  Incoming ``MSG_RUN`` payloads
    are received straight into a leased arena input slot (zero staging
    copies), run through the pool, and answered with ``MSG_OK``
    carrying the output slab by reference — or ``MSG_ERR`` carrying the
    failure class and message, which the client re-raises on its side.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  Use :meth:`serve_forever` on a dedicated (main)
    thread and :meth:`close` to stop — or run it via the
    ``repro-tonemap serve-host`` CLI.
    """

    def __init__(
        self,
        params: Optional[ToneMapParams] = None,
        shards: int = 2,
        fixed_config: Optional[FixedBlurConfig] = None,
        fused: bool = False,
        fused_threads: Optional[int] = None,
        plan=None,
        arena_slots: int = 4,
        default_timeout_ms: Optional[float] = None,
        timeout_retries: int = 1,
        faults=None,
        bind: str = "127.0.0.1",
        port: int = 0,
        clock: Clock = MONOTONIC,
    ):
        self._pool = ShardPool(
            params=params,
            shards=shards,
            fixed_config=fixed_config,
            fused=fused,
            fused_threads=fused_threads,
            plan=plan,
            arena_slots=arena_slots,
            default_timeout_ms=default_timeout_ms,
            timeout_retries=timeout_retries,
            faults=faults,
            clock=clock,
        )
        self._net = NetCounters()
        self._closed = False
        self._conn_lock = threading.Lock()
        self._conns: set = set()
        self._threads: List[threading.Thread] = []
        # In-flight RUN requests; drain() waits for this to hit zero so
        # a SIGTERM never swallows a reply the client is owed.
        self._run_state = threading.Condition()
        self._active_runs = 0
        try:
            self._listener = socket.create_server((bind, port))
        except OSError:
            self._pool.close()
            raise
        # Short accept timeout so serve_forever notices close() (and a
        # SIGTERM-raised SystemExit) promptly without busy-waiting.
        self._listener.settimeout(0.2)
        self.address: HostAddress = self._listener.getsockname()[:2]

    @property
    def pool(self) -> ShardPool:
        """The host's worker pool (for tests and introspection)."""
        return self._pool

    @property
    def net_stats(self) -> NetStats:
        """Wire counters of this serving endpoint."""
        return self._net.stats

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`close`."""
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                if self._closed:
                    conn.close()
                    break
                self._conns.add(conn)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="repro-host-conn",
                    daemon=True,
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one client until clean close or a wire error."""
        try:
            while not self._closed:
                holder: dict = {}
                try:
                    frame = recv_message(
                        conn, sink=self._make_sink(holder), counters=self._net
                    )
                except (WireProtocolError, OSError):
                    self._release(holder)
                    return
                if frame is None:
                    self._release(holder)
                    return  # client hung up between frames
                msg_type, meta, _payload = frame
                try:
                    if msg_type == MSG_PING:
                        send_message(conn, MSG_PONG, {}, counters=self._net)
                    elif msg_type == MSG_RUN:
                        self._serve_run(conn, meta, holder)
                    else:
                        send_message(
                            conn,
                            MSG_ERR,
                            {
                                "error": "WireProtocolError",
                                "message": f"host cannot serve message "
                                f"type {msg_type}",
                            },
                            counters=self._net,
                        )
                except (WireProtocolError, OSError):
                    return  # reply failed: connection is gone
                finally:
                    self._release(holder)
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _make_sink(self, holder: dict):
        """A receive sink that leases an arena input slot for RUN payloads.

        The lease happens *before* the payload bytes are read, so the
        kernel copies them straight into shared memory — the slot the
        pool's workers will read.  Non-RUN payloads (there are none in
        the protocol today) fall back to staged buffers, counted.
        """

        def sink(msg_type: int, meta: dict):
            if msg_type != MSG_RUN:
                return None
            shape, dtype = self._run_geometry(meta)
            lease = self._pool.lease_input(shape, dtype)
            holder["lease"] = lease
            return lease.array

        return sink

    @staticmethod
    def _run_geometry(meta: dict) -> Tuple[tuple, np.dtype]:
        """Validate a RUN frame's shape/dtype before any allocation."""
        shape = meta.get("shape")
        if (
            not isinstance(shape, list)
            or not 3 <= len(shape) <= 4
            or not all(isinstance(s, int) and s > 0 for s in shape)
        ):
            raise WireProtocolError(
                f"RUN frame shape must be a list of 3-4 positive ints, "
                f"got {shape!r}"
            )
        dtype = meta.get("dtype", "float32")
        if dtype not in _WIRE_DTYPES:
            raise WireProtocolError(
                f"RUN frame dtype must be one of {sorted(_WIRE_DTYPES)}, "
                f"got {dtype!r}"
            )
        return tuple(shape), np.dtype(dtype)

    def _serve_run(self, conn: socket.socket, meta: dict, holder: dict) -> None:
        """Execute one received batch and send the reply frame."""
        with self._run_state:
            self._active_runs += 1
        try:
            self._serve_run_counted(conn, meta, holder)
        finally:
            with self._run_state:
                self._active_runs -= 1
                self._run_state.notify_all()

    def _serve_run_counted(
        self, conn: socket.socket, meta: dict, holder: dict
    ) -> None:
        in_lease: ArenaLease = holder["lease"]
        timeout = meta.get("timeout")
        try:
            out_lease = self._pool.run_leased(
                in_lease,
                timeout=None if timeout is None else float(timeout),
            )
        except ShardTimeoutError as exc:
            send_message(
                conn,
                MSG_ERR,
                {
                    "error": "ShardTimeoutError",
                    "message": str(exc),
                    "elapsed_ms": exc.elapsed_ms,
                    "retries": exc.retries,
                },
                counters=self._net,
            )
            return
        except Exception as exc:  # noqa: BLE001 - becomes a typed reply
            send_message(
                conn,
                MSG_ERR,
                {"error": type(exc).__name__, "message": str(exc)},
                counters=self._net,
            )
            return
        try:
            send_message(
                conn,
                MSG_OK,
                {
                    "shape": list(out_lease.array.shape),
                    "dtype": "float32",
                },
                payload=out_lease.array,
                counters=self._net,
            )
        finally:
            out_lease.release()

    @staticmethod
    def _release(holder: dict) -> None:
        lease = holder.pop("lease", None)
        if lease is not None:
            lease.release()

    def drain(self, timeout_s: float = 30.0) -> None:
        """Graceful stop: refuse new connections, answer in-flight
        requests, then :meth:`close`.

        The difference from a bare :meth:`close`: the listener goes
        down first (new clients are refused), but a RUN request already
        executing gets to send its reply before the connection is torn
        — so a host stopped this way (the ``serve-host`` SIGTERM /
        SIGINT handlers call it) loses zero frames.  ``timeout_s``
        bounds the wait so a hung worker cannot hold shutdown hostage;
        :meth:`close` (which this ends in) still releases the pool's
        ``/dev/shm`` arena segments either way.
        """
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + timeout_s
        with self._run_state:
            while self._active_runs > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._run_state.wait(timeout=min(remaining, 0.5))
        self.close()

    def close(self) -> None:
        """Stop accepting, drop live connections, shut the pool down."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5.0)
        self._pool.close()

    def __enter__(self) -> "HostServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _host_main(pipe, kwargs: dict) -> None:
    """Entry point of a spawned host process.

    Builds the server, reports the bound address back through ``pipe``,
    and serves until SIGTERM (mapped to a clean ``SystemExit`` so the
    ``finally`` joins the host's worker processes — a host that dies
    *un*gracefully is what ``os.killpg`` on our own process group is
    for, see :meth:`HostPool._inject_host_loss`).
    """
    # Own process group: the host's ShardPool workers join it, so a
    # chaos SIGKILL of the group takes the whole host down at once
    # instead of orphaning workers.
    try:
        os.setpgrp()
    except OSError:  # pragma: no cover - already a group leader
        pass
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
    server = HostServer(**kwargs)
    try:
        pipe.send(server.address)
        pipe.close()
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        # Drain, not close: a SIGTERM mid-batch still answers the
        # client before the pool (and its shm segments) go away.
        server.drain()


# ----------------------------------------------------------------------
# Routing side
# ----------------------------------------------------------------------
class _Host:
    """Client-side record of one serving host."""

    __slots__ = (
        "index",
        "address",
        "process",
        "sock",
        "lock",
        "alive",
        "reviving",
        "draining",
        "partitioned",
    )

    def __init__(self, index: int, address: HostAddress, process=None):
        self.index = index
        self.address = address
        self.process = process  # mp.Process for pool-owned hosts
        self.sock: Optional[socket.socket] = None
        self.lock = threading.Lock()  # serializes this host's wire I/O
        self.alive = True
        self.reviving = False
        self.draining = False  # excluded from routing (rolling restart)
        self.partitioned = False  # armed by the partition fault

    @property
    def label(self) -> str:
        return f"host[{self.index}]@{self.address[0]}:{self.address[1]}"


class HostPool:
    """Route batches across N shard hosts; a ``ShardPool`` drop-in.

    Construct with a list of addresses of already-running
    :class:`HostServer` processes (``["10.0.0.1:7070", ...]``), or let
    :meth:`spawn_local` start ``count`` localhost host processes and
    own their lifecycle — ``ToneMapService(hosts=2)`` does the latter.

    The pool owns a client-side :class:`~repro.runtime.arena.ShmArena`:
    producers write frames into leased input stacks exactly as with a
    ``ShardPool``, the send hands the slot to the kernel by reference,
    and replies land in freshly leased output slabs via the receive
    sink — so ``data_plane_stats.copies_per_frame`` stays **0.0** on
    the leased path even though every batch crossed a socket twice.
    See the module docstring for the host failure lifecycle.

    Parameters
    ----------
    hosts:
        Host addresses (``"host:port"`` strings or tuples).
    arena / arena_slots:
        Share an existing client arena, or size the owned one.
    default_timeout_ms:
        Per-attempt execution budget forwarded to the serving host
        (arming *its* watchdog) when ``run_leased`` gets no explicit
        ``timeout``.
    timeout_retries:
        Hedged replays allowed after a timeout (local wire timeout or
        a host-side ``ShardTimeoutError``) before it surfaces.
    connect_timeout_s:
        TCP connect budget per attempt.
    revive_wait_s:
        How long a batch that finds *no* live host blocks waiting for a
        background revival before
        :class:`~repro.errors.HostUnavailableError` surfaces — the
        host-level analogue of ``ShardPool`` blocking on its
        synchronous respawn.  A breaker-fronted service that prefers a
        fast brownout over waiting can lower it.
    faults:
        Chaos plan/spec/injector; the pool consumes the network kinds
        (``partition`` / ``slow_link`` / ``host_loss``) client-side.
    clock:
        Injectable time source shared with the reliability machinery.
    autoscale_policy:
        Optional :class:`~repro.runtime.shard.AutoscalePolicy` driving
        an **advisory** host-level autoscaler: :meth:`observe` feeds
        queue depth / p95 into it and returns the host count it
        recommends.  Membership stays static — the pool cannot add
        machines — but the recommendation and its ``scale_ups`` /
        ``scale_downs`` counters tell an operator (or a future
        provisioner) when the host set is under- or over-sized.
    """

    def __init__(
        self,
        hosts: Sequence[Union[str, Tuple[str, int]]],
        arena: Optional[ShmArena] = None,
        arena_slots: int = 4,
        default_timeout_ms: Optional[float] = None,
        timeout_retries: int = 1,
        connect_timeout_s: float = 10.0,
        revive_wait_s: float = 30.0,
        faults=None,
        clock: Clock = MONOTONIC,
        autoscale_policy: Optional[AutoscalePolicy] = None,
        _processes: Optional[Sequence] = None,
        _spawn_kwargs: Optional[dict] = None,
        _spawn_context=None,
    ):
        addresses = [parse_address(value) for value in hosts]
        if not addresses:
            raise ToneMapError("HostPool needs at least one host")
        if default_timeout_ms is not None and default_timeout_ms <= 0:
            raise ToneMapError(
                f"default_timeout_ms must be > 0, got {default_timeout_ms}"
            )
        if timeout_retries < 0:
            raise ToneMapError(
                f"timeout_retries must be >= 0, got {timeout_retries}"
            )
        processes = list(_processes) if _processes is not None else []
        self._hosts = [
            _Host(
                index,
                address,
                processes[index] if index < len(processes) else None,
            )
            for index, address in enumerate(addresses)
        ]
        self._owns_arena = arena is None
        self.arena = arena if arena is not None else ShmArena(slots=arena_slots)
        self._default_timeout_s = (
            None if default_timeout_ms is None else default_timeout_ms / 1e3
        )
        self._timeout_retries = timeout_retries
        self._connect_timeout_s = connect_timeout_s
        self._revive_wait_s = revive_wait_s
        self.faults: Optional[FaultInjector] = resolve_injector(faults)
        self._clock = clock
        self._net = NetCounters()
        self._spawn_kwargs = _spawn_kwargs
        self._spawn_context = _spawn_context
        self._closed = False
        self._draining = False
        self._in_flight = 0
        # Guards host liveness/membership; revivals notify waiters in
        # _pick_host that a host came back, drain waits here for
        # _in_flight to reach zero.
        self._state = threading.Condition()
        self._revive_threads: List[threading.Thread] = []
        # Advisory host-level autoscaler: reuses the shard-level
        # controller's hysteresis, but the recommendation is surfaced,
        # not acted on (host membership is static).
        self._host_autoscaler = (
            ShardAutoscaler(autoscale_policy)
            if autoscale_policy is not None
            else None
        )
        self._scale_lock = threading.Lock()
        self._scale_ups = 0
        self._scale_downs = 0
        self._recommended = len(addresses)
        self._hosts_drained = 0
        self._count_lock = threading.Lock()
        self._batches = 0
        self._frames = 0
        self._bytes_served = 0
        self._hosts_lost = 0
        self._host_respawns = 0
        self._hedged_replays = 0
        self._timeouts = 0
        self._rr = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def spawn_local(
        cls,
        count: int,
        params: Optional[ToneMapParams] = None,
        fixed_config: Optional[FixedBlurConfig] = None,
        fused: bool = False,
        fused_threads: Optional[int] = None,
        plan=None,
        shards_per_host: int = 2,
        arena_slots: int = 4,
        default_timeout_ms: Optional[float] = None,
        timeout_retries: int = 1,
        revive_wait_s: float = 30.0,
        faults=None,
        clock: Clock = MONOTONIC,
        autoscale_policy: Optional[AutoscalePolicy] = None,
    ) -> "HostPool":
        """Start ``count`` localhost host processes and route over them.

        Each host process binds an ephemeral port, reports it back over
        a pipe, and runs ``shards_per_host`` workers.  The pool owns
        the processes: a host that dies is respawned with the same
        recipe, and :meth:`close` terminates them all.  The fault
        plan's spec (if any) ships to every host so worker-kind faults
        inject there while the pool injects the network kinds here.
        """
        if count < 1:
            raise ToneMapError(f"hosts must be >= 1, got {count}")
        injector = resolve_injector(faults)
        context = (
            mp.get_context("forkserver")
            if "forkserver" in mp.get_all_start_methods()
            else mp.get_context("spawn")
        )
        spawn_kwargs = {
            "params": params,
            "shards": shards_per_host,
            "fixed_config": fixed_config,
            "fused": fused,
            "fused_threads": fused_threads,
            "plan": plan,
            "arena_slots": arena_slots,
            "default_timeout_ms": default_timeout_ms,
            "timeout_retries": timeout_retries,
            "faults": (
                injector.plan.to_spec() if injector is not None else None
            ),
        }
        addresses: List[HostAddress] = []
        processes: List = []
        try:
            for _ in range(count):
                address, process = _spawn_host(context, spawn_kwargs)
                addresses.append(address)
                processes.append(process)
        except BaseException:
            for process in processes:
                _terminate_host(process)
            raise
        return cls(
            addresses,
            arena_slots=arena_slots,
            default_timeout_ms=default_timeout_ms,
            timeout_retries=timeout_retries,
            revive_wait_s=revive_wait_s,
            faults=injector,
            clock=clock,
            autoscale_policy=autoscale_policy,
            _processes=processes,
            _spawn_kwargs=spawn_kwargs,
            _spawn_context=context,
        )

    # ------------------------------------------------------------------
    # Introspection (the ShardPool-compatible surface)
    # ------------------------------------------------------------------
    @property
    def autoscaling(self) -> bool:
        """Whether an advisory host-level autoscaler is attached."""
        return self._host_autoscaler is not None

    @property
    def active_shards(self) -> int:
        """Live hosts a batch can currently route to."""
        with self._state:
            return sum(
                1 for host in self._hosts
                if host.alive and not host.draining
            )

    @property
    def scale_ups(self) -> int:
        """Times the advisory autoscaler recommended growing the set."""
        with self._scale_lock:
            return self._scale_ups

    @property
    def scale_downs(self) -> int:
        """Times the advisory autoscaler recommended shrinking the set."""
        with self._scale_lock:
            return self._scale_downs

    def observe(
        self, queue_depth: int, p95_ms: Optional[float] = None
    ) -> int:
        """Feed one load observation to the advisory host autoscaler.

        Returns the host count the policy currently recommends.  The
        pool does **not** act on it — host membership is static — but
        the overload machinery and operators read the recommendation
        (and the ``scale_ups`` / ``scale_downs`` counters) to tell
        when the host set is sized wrong for the offered load.
        Without a policy this is a no-op returning the live host count.
        """
        if self._host_autoscaler is None:
            return self.active_shards
        with self._scale_lock:
            target = self._host_autoscaler.observe(
                self._recommended, queue_depth, p95_ms
            )
            if target > self._recommended:
                self._scale_ups += 1
            elif target < self._recommended:
                self._scale_downs += 1
            self._recommended = target
            return target

    @property
    def recommended_hosts(self) -> int:
        """Latest host-count recommendation (static without a policy)."""
        with self._scale_lock:
            return self._recommended

    @property
    def worker_respawns(self) -> int:
        """Host processes this pool restarted after losing them."""
        with self._count_lock:
            return self._host_respawns

    @property
    def hosts_lost(self) -> int:
        """Hosts declared dead (connection lost, partitioned, killed)."""
        with self._count_lock:
            return self._hosts_lost

    @property
    def hedged_replays(self) -> int:
        """Batches replayed (preferring another host) after a timeout."""
        with self._count_lock:
            return self._hedged_replays

    @property
    def watchdog_kills(self) -> int:
        """Timed-out attempts whose connection the pool severed."""
        with self._count_lock:
            return self._timeouts

    @property
    def net_stats(self) -> NetStats:
        """Wire counters of the client endpoint."""
        return self._net.stats

    @property
    def data_plane_stats(self) -> DataPlaneStats:
        """Counters proving (or disproving) the zero-copy claims.

        Same honesty contract as the single-host pool, now spanning the
        wire: ``arena`` counts client-side staging, ``net.bytes_staged``
        counts any payload byte that crossed userspace instead of
        moving arena-slot ↔ socket directly (0 on the scatter-gather
        path), and both join the ``copies_per_frame`` numerator.
        """
        with self._count_lock:
            return DataPlaneStats(
                batches=self._batches,
                frames=self._frames,
                bytes_served=self._bytes_served,
                worker_respawns=self._host_respawns,
                arena=self.arena.stats,
                net=self._net.stats,
            )

    def host_addresses(self) -> List[HostAddress]:
        """Current addresses, respawn-fresh (for tooling and tests)."""
        with self._state:
            return [host.address for host in self._hosts]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def lease_input(self, shape: tuple, dtype=np.float32) -> ArenaLease:
        """Lease a client arena input stack for producers to write into."""
        return self.arena.lease_input(shape, dtype)

    def run_leased(
        self,
        in_lease: ArenaLease,
        count: Optional[int] = None,
        retries: int = 1,
        timeout: Optional[float] = None,
    ) -> ArenaLease:
        """Tone-map a stack already resident in the client arena.

        The ``ShardPool.run_leased`` contract over the wire: the input
        slot is handed to ``sendmsg`` by reference, the reply payload
        lands in a freshly leased output slab, and the caller keeps
        ownership of ``in_lease`` — which is what makes **replay**
        free: when a host dies mid-batch the frames still sit in the
        client arena, so the batch re-dispatches to another live host
        up to ``retries`` times before
        :class:`~repro.errors.ShardCrashError` (or, with no live host
        left, :class:`~repro.errors.HostUnavailableError`) surfaces.
        Timeouts — a local wire timeout or the host's own
        ``ShardTimeoutError`` — spend the separate ``timeout_retries``
        hedge budget instead, preferring a different host for the
        hedge.
        """
        if in_lease.array is None:
            raise ToneMapError("cannot run a released arena lease")
        shape = in_lease.array.shape
        if count is None:
            count = shape[0]
        if not 1 <= count <= shape[0]:
            raise ToneMapError(
                f"count must be in [1, {shape[0]}], got {count}"
            )
        run_shape = (count,) + tuple(shape[1:])
        payload = in_lease.array[:count]
        if timeout is None:
            timeout = self._default_timeout_s
        with self._state:
            if self._draining or self._closed:
                raise ToneMapError(
                    "host pool is draining"
                    if self._draining and not self._closed
                    else "host pool is closed"
                )
            self._in_flight += 1
        try:
            return self._run_leased_admitted(
                payload, run_shape, count, retries, timeout
            )
        finally:
            with self._state:
                self._in_flight -= 1
                self._state.notify_all()

    def _run_leased_admitted(
        self,
        payload: np.ndarray,
        run_shape: tuple,
        count: int,
        retries: int,
        timeout: Optional[float],
    ) -> ArenaLease:
        spare = retries
        hedge_spare = self._timeout_retries
        start = self._clock.now()
        avoid: Optional[_Host] = None
        while True:
            if self.faults is not None:
                index, kinds = self.faults.next_attempt()
            else:
                index, kinds = 0, frozenset()
            if "slow_link" in kinds:
                self._clock.sleep(
                    self.faults.plan.jitter_s(index, kind="slow_link")
                )
            host = self._pick_host(avoid)
            if "host_loss" in kinds:
                self._inject_host_loss(host)
            if "partition" in kinds:
                host.partitioned = True
            try:
                out_lease = self._dispatch(host, payload, run_shape, timeout)
            except ShardTimeoutError:
                # The host itself gave up (its watchdog + hedge budget
                # spent).  The connection is fine; hedge on another
                # host if the budget allows.
                if hedge_spare <= 0:
                    raise
                hedge_spare -= 1
                with self._count_lock:
                    self._hedged_replays += 1
                avoid = host
                continue
            except ShardCrashError:
                # The host's own pool crashed past its replay budget —
                # the host is alive, its workload is the problem.
                if spare <= 0:
                    raise
                spare -= 1
                avoid = host
                continue
            except TimeoutError as exc:
                # Local wire timeout: the reply never came.  Sever the
                # (now mid-frame) connection and hedge elsewhere; the
                # host may still be alive and will be reconnected.
                self._sever(host)
                with self._count_lock:
                    self._timeouts += 1
                if hedge_spare <= 0:
                    now = self._clock.now()
                    used = self._timeout_retries - hedge_spare
                    raise ShardTimeoutError(
                        f"{count}-frame batch timed out on the wire to "
                        f"{host.label} ({(now - start) * 1e3:.0f} ms "
                        f"elapsed, {used} hedged replay(s))",
                        elapsed_ms=(now - start) * 1e3,
                        retries=used,
                    ) from exc
                hedge_spare -= 1
                with self._count_lock:
                    self._hedged_replays += 1
                avoid = host
                continue
            except (WireProtocolError, OSError) as exc:
                # The connection (or the host behind it) died.  Mark it
                # lost — a revive thread heals it in the background —
                # and replay on another host.
                self._mark_lost(host)
                avoid = host
                if spare <= 0:
                    raise ShardCrashError(
                        f"{count}-frame batch lost {host.label} and the "
                        f"replay budget is spent (hosts lost so far: "
                        f"{self.hosts_lost})"
                    ) from exc
                spare -= 1
                continue
            break
        with self._count_lock:
            self._batches += 1
            self._frames += count
            self._bytes_served += out_lease.nbytes
        return out_lease

    def run_stack(
        self, stack: np.ndarray, zero_copy: bool = False
    ) -> Union[np.ndarray, ArenaLease]:
        """Tone-map an ``(N, H, W[, 3])`` float stack across the hosts.

        One counted staging copy moves the caller's array into a
        pooled arena stack (same contract as ``ShardPool.run_stack``);
        ``zero_copy=True`` returns the output lease instead of a
        materialized copy.
        """
        stack = np.ascontiguousarray(stack, dtype=np.float32)
        if stack.ndim not in (3, 4):
            raise ToneMapError(
                f"run_stack expects (N, H, W) or (N, H, W, 3), got "
                f"{stack.shape}"
            )
        if stack.shape[0] == 0:
            raise ToneMapError("batch must contain at least one image")
        in_lease = self.arena.lease_input(stack.shape, np.float32)
        try:
            in_lease.array[:] = stack
            self.arena._count_copy_in(stack.nbytes)
            out_lease = self.run_leased(in_lease)
        finally:
            in_lease.release()
        if zero_copy:
            return out_lease
        return out_lease.materialize()

    def run_batch(self, images: Sequence[HDRImage]) -> tuple:
        """Tone-map a same-shape batch; drop-in for ``BatchToneMapper.map``."""
        if len(images) == 0:
            raise ToneMapError("batch must contain at least one image")
        for image in images:
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
        shape = images[0].pixels.shape
        for image in images:
            if image.pixels.shape != shape:
                raise ToneMapError(
                    f"batch images must share one shape; got {shape} and "
                    f"{image.pixels.shape} (group by shape first)"
                )
        stack_shape = (len(images),) + shape
        in_lease = self.arena.lease_input(stack_shape, np.float32)
        try:
            for i, image in enumerate(images):
                in_lease.array[i] = image.pixels
            self.arena._count_copy_in(int(np.prod(stack_shape)) * 4)
            out = self.run_leased(in_lease).materialize()
        finally:
            in_lease.release()
        return tuple(
            HDRImage.adopt(out[i], name=f"{images[i].name}:tonemapped")
            for i in range(len(images))
        )

    # ------------------------------------------------------------------
    # Wire dispatch
    # ------------------------------------------------------------------
    def _pick_host(self, avoid: Optional[_Host]) -> _Host:
        """Round-robin over live hosts, preferring not to reuse ``avoid``.

        When *no* host is live the batch does not fail immediately: a
        revive thread is already working in the background, so this
        blocks up to ``revive_wait_s`` for one to come back — the
        analogue of ``ShardPool`` replaying only after its synchronous
        respawn finished.  Only then does
        :class:`~repro.errors.HostUnavailableError` surface (and the
        service breaker browns out).
        """
        deadline = time.monotonic() + self._revive_wait_s
        with self._state:
            while True:
                live = [
                    host for host in self._hosts
                    if host.alive and not host.draining
                ]
                if live:
                    preferred = (
                        [host for host in live if host is not avoid] or live
                    )
                    host = preferred[self._rr % len(preferred)]
                    self._rr += 1
                    return host
                remaining = deadline - time.monotonic()
                if self._closed or remaining <= 0:
                    raise HostUnavailableError(
                        f"all {len(self._hosts)} shard hosts are dead or "
                        "partitioned away — no host left to serve the "
                        f"batch (waited {self._revive_wait_s:.1f} s for a "
                        "revival)"
                    )
                self._state.wait(timeout=min(remaining, 0.5))

    def _wire_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """Socket budget for one request-response exchange.

        Deliberately looser than the host-side execution budget: the
        host's own watchdog + hedge machinery gets first claim on a
        hang (it answers with a typed ``ShardTimeoutError``), so the
        wire budget only has to catch a host that stopped answering
        at all.
        """
        if timeout is None:
            return None
        return timeout * 3.0 + 5.0

    def _connect(self, host: _Host) -> socket.socket:
        sock = socket.create_connection(
            host.address, timeout=self._connect_timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _dispatch(
        self,
        host: _Host,
        payload: np.ndarray,
        run_shape: tuple,
        timeout: Optional[float],
    ) -> ArenaLease:
        """One request-response exchange with one host.

        Holds the host's wire lock for the duration (one in-flight
        batch per host; concurrency comes from routing across hosts).
        The request payload goes out by reference; the reply payload
        lands in a freshly leased output slab supplied by the receive
        sink.  Any failure severs the connection and releases the
        half-filled lease — nothing leaks into the replay.
        """
        holder: dict = {}

        def sink(msg_type: int, meta: dict):
            if msg_type != MSG_OK:
                return None  # ERR frames carry no payload
            got = tuple(
                int(s) for s in meta.get("shape", ())
                if isinstance(s, int)
            )
            if got != run_shape:
                raise WireProtocolError(
                    f"host replied with shape {got}, expected {run_shape}"
                )
            lease = self.arena.lease_output(run_shape, np.float32)
            holder["lease"] = lease
            return lease.array

        with host.lock:
            if host.partitioned:
                # Injected partition: the link drops mid-flight, which
                # the client observes as a torn connection.
                host.partitioned = False
                self._close_sock(host)
                raise WireProtocolError(
                    f"injected network partition to {host.label}"
                )
            try:
                if host.sock is None:
                    host.sock = self._connect(host)
                sock = host.sock
                sock.settimeout(self._wire_timeout(timeout))
                send_message(
                    sock,
                    MSG_RUN,
                    {
                        "shape": list(run_shape),
                        "dtype": "float32",
                        "timeout": timeout,
                    },
                    payload=payload,
                    counters=self._net,
                )
                frame = recv_message(sock, sink=sink, counters=self._net)
            except BaseException:
                self._release_holder(holder)
                self._close_sock(host)
                raise
            if frame is None:
                self._close_sock(host)
                raise WireProtocolError(
                    f"{host.label} closed the connection mid-request"
                )
        msg_type, meta, _payload = frame
        if msg_type == MSG_OK:
            return holder.pop("lease")
        self._release_holder(holder)
        if msg_type == MSG_ERR:
            raise self._remote_error(host, meta)
        raise WireProtocolError(
            f"{host.label} answered a RUN with message type {msg_type}"
        )

    @staticmethod
    def _remote_error(host: _Host, meta: dict) -> Exception:
        """Map a MSG_ERR frame back to a typed exception."""
        name = meta.get("error", "ToneMapError")
        message = f"{host.label}: {meta.get('message', 'unknown failure')}"
        if name == "ShardTimeoutError":
            return ShardTimeoutError(
                message,
                elapsed_ms=float(meta.get("elapsed_ms", 0.0)),
                retries=int(meta.get("retries", 0)),
            )
        if name in ("ShardCrashError", "HostUnavailableError"):
            return ShardCrashError(message)
        return ToneMapError(f"{message} ({name})")

    @staticmethod
    def _release_holder(holder: dict) -> None:
        lease = holder.pop("lease", None)
        if lease is not None:
            lease.release()

    @staticmethod
    def _close_sock(host: _Host) -> None:
        # caller holds host.lock
        if host.sock is not None:
            try:
                host.sock.close()
            except OSError:
                pass
            host.sock = None

    def _sever(self, host: _Host) -> None:
        """Drop a host's connection without declaring the host dead."""
        with host.lock:
            self._close_sock(host)

    # ------------------------------------------------------------------
    # Failure handling / revival
    # ------------------------------------------------------------------
    def _mark_lost(self, host: _Host) -> None:
        """Declare a host dead and start its background revival."""
        self._sever(host)
        with self._state:
            if not host.alive or self._closed:
                return
            host.alive = False
            start_revive = not host.reviving
            host.reviving = True
            if start_revive:
                thread = threading.Thread(
                    target=self._revive,
                    args=(host,),
                    name=f"repro-host-revive-{host.index}",
                    daemon=True,
                )
                self._revive_threads.append(thread)
        with self._count_lock:
            self._hosts_lost += 1
        if start_revive:
            thread.start()

    def _revive(self, host: _Host) -> None:
        """Bring a lost host back: respawn its process, then reconnect.

        Runs on a background thread so in-flight batches replay on the
        surviving hosts immediately.  A pool-owned host whose process
        died is restarted with the original recipe (counted in
        ``worker_respawns``); a partitioned host just needs a working
        connection + PING again.  Retries with capped backoff until it
        succeeds or the pool closes.
        """
        backoff = 0.05
        try:
            while not self._closed:
                try:
                    if (
                        host.process is not None
                        and not host.process.is_alive()
                    ):
                        self._respawn_host(host)
                    sock = self._connect(host)
                    try:
                        sock.settimeout(5.0)
                        send_message(sock, MSG_PING, {}, counters=self._net)
                        frame = recv_message(sock, counters=self._net)
                        if frame is None or frame[0] != MSG_PONG:
                            raise WireProtocolError(
                                f"{host.label} failed its health check"
                            )
                    except BaseException:
                        sock.close()
                        raise
                except (
                    WireProtocolError,
                    OSError,
                    ToneMapError,
                ):
                    self._clock.sleep(backoff)
                    backoff = min(backoff * 2.0, 1.0)
                    continue
                with host.lock:
                    self._close_sock(host)
                    host.sock = sock
                with self._state:
                    host.alive = True
                    self._state.notify_all()
                return
        finally:
            with self._state:
                host.reviving = False
            if self._closed:
                # close() may have missed a process this thread spawned
                # after its terminate pass — never leave one behind.
                _terminate_host(host.process)

    def _respawn_host(self, host: _Host) -> None:
        """Restart a dead pool-owned host process (same recipe)."""
        if self._spawn_kwargs is None or self._spawn_context is None:
            raise ToneMapError(
                f"{host.label} died and this pool does not own its "
                "processes — restart it externally"
            )
        _terminate_host(host.process)
        address, process = _spawn_host(self._spawn_context, self._spawn_kwargs)
        with self._state:
            if self._closed:
                _terminate_host(process)
                raise ToneMapError("pool closed during host respawn")
            host.address = address
            host.process = process
        with self._count_lock:
            self._host_respawns += 1

    def _inject_host_loss(self, host: _Host) -> None:
        """Chaos: take the serving host down hard (SIGKILL its group).

        External (non-owned) hosts cannot be killed from here, so the
        fault degrades to a partition — the client-observable symptom
        is identical (the connection tears, the host stops answering).
        """
        process = host.process
        if process is None or process.pid is None:
            host.partitioned = True
            return
        if process.is_alive():
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                try:
                    os.kill(process.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError, OSError):
                    pass
            process.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def hosts_drained(self) -> int:
        """Hosts cycled through a graceful drain by ``rolling_restart``."""
        with self._count_lock:
            return self._hosts_drained

    def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish in-flight, close.

        New ``run_leased`` calls are refused immediately with
        :class:`~repro.errors.ToneMapError`; batches already admitted
        run to completion (including their replay/hedge budgets)
        before :meth:`close` tears the pool down.  ``close`` joins the
        revive threads, so a drain never leaves a reviver behind.
        Idempotent; concurrent with ``close`` the stricter one wins.
        """
        with self._state:
            if self._closed:
                return
            self._draining = True
            while self._in_flight > 0 and not self._closed:
                self._state.wait(timeout=0.5)
        self.close()

    def rolling_restart(self) -> int:
        """Restart every owned host process, one at a time, zero-loss.

        For each host in turn: take it out of the routing set
        (``draining``), then — holding ``host.lock`` so any exchange
        currently on its wire finishes first — terminate the process,
        spawn a replacement with the same recipe, and install the new
        address.  Peers absorb the traffic meanwhile: ``_pick_host``
        skips draining hosts, and a batch that raced onto this host
        just before the flag flipped either completes on the old
        process (the swap waits for the lock) or reconnects to the new
        address (``_connect`` reads ``host.address`` under the lock).
        Either way no admitted frame is lost — the chaos benchmark
        ``test_rolling_restart_small`` gates ``frames_lost == 0``.

        Returns the number of hosts restarted.  Raises
        :class:`~repro.errors.ToneMapError` when the pool does not own
        its host processes (external hosts restart externally).
        """
        if self._spawn_kwargs is None or self._spawn_context is None:
            raise ToneMapError(
                "rolling_restart needs a pool that owns its host "
                "processes (HostPool.spawn_local / ToneMapService(hosts=N))"
            )
        restarted = 0
        for host in self._hosts:
            with self._state:
                if self._closed:
                    break
                # A host mid-revival is already being replaced; wait
                # briefly for the reviver, then skip it if still busy.
                deadline = time.monotonic() + self._revive_wait_s
                while host.reviving and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._state.wait(timeout=min(remaining, 0.5))
                if self._closed or host.reviving:
                    continue
                host.draining = True
            try:
                with host.lock:
                    self._close_sock(host)
                    _terminate_host(host.process)
                    address, process = _spawn_host(
                        self._spawn_context, self._spawn_kwargs
                    )
                    with self._state:
                        if self._closed:
                            _terminate_host(process)
                            break
                        host.address = address
                        host.process = process
                        host.alive = True
                        host.partitioned = False
                restarted += 1
                with self._count_lock:
                    self._hosts_drained += 1
            finally:
                with self._state:
                    host.draining = False
                    self._state.notify_all()
        return restarted

    def close(self) -> None:
        """Drop connections, stop owned host processes, close the arena.

        Revive threads are joined first: one mid-respawn could
        otherwise hand a *fresh* (non-daemon) host process to a record
        this pass already terminated, leaving an orphan that blocks
        interpreter exit.
        """
        with self._state:
            self._closed = True
            self._state.notify_all()
            revive_threads = list(self._revive_threads)
        for thread in revive_threads:
            # Generous: a thread can be inside a respawn, which waits
            # up to 120 s for the new host to report its address.
            thread.join(timeout=150.0)
        for host in self._hosts:
            with host.lock:
                self._close_sock(host)
        for host in self._hosts:
            if host.process is not None:
                _terminate_host(host.process)
        if self._owns_arena:
            self.arena.close()

    def __enter__(self) -> "HostPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# Spawn plumbing
# ----------------------------------------------------------------------
def _spawn_host(context, spawn_kwargs: dict) -> Tuple[HostAddress, object]:
    """Start one host process; returns its reported address."""
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_host_main,
        args=(child_conn, spawn_kwargs),
        name="repro-host",
        daemon=False,  # hosts own worker processes of their own
    )
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout=120.0):
            raise ToneMapError(
                "shard host process failed to report its address within "
                "120 s of starting"
            )
        address = parent_conn.recv()
    except (EOFError, OSError) as exc:
        _terminate_host(process)
        raise ToneMapError(
            "shard host process died before reporting its address"
        ) from exc
    except BaseException:
        _terminate_host(process)
        raise
    finally:
        parent_conn.close()
    return (str(address[0]), int(address[1])), process


def _terminate_host(process) -> None:
    """Stop one host process: SIGTERM (graceful), then SIGKILL the group."""
    if process is None:
        return
    try:
        if process.is_alive():
            process.terminate()  # SIGTERM → clean SystemExit in the host
            process.join(timeout=10.0)
        if process.is_alive():  # pragma: no cover - stuck host
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                try:
                    os.kill(process.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError, OSError):
                    pass
            process.join(timeout=5.0)
    except (ValueError, OSError):  # pragma: no cover - already reaped
        pass
