"""First-class chaos injection for the serving runtime.

The reliability layer (shard watchdog, hedged replay, circuit-breaker
brownout — see :mod:`repro.runtime.shard` and
:mod:`repro.runtime.service`) exists to absorb faults that are, by
nature, rare and unreproducible in a unit test.  This module makes them
common and reproducible: a :class:`FaultPlan` declares *which* dispatch
attempts misbehave and *how*, and the pool's :class:`FaultInjector`
executes the plan deterministically — the chaos tests, the
``bench_runtime`` chaos case, and ad-hoc CLI runs all drive the same
mechanism instead of monkeypatching worker internals.

Four fault kinds, mirroring the real failure modes:

``kill``
    The victim worker SIGKILLs itself mid-slab — the OOM-killer /
    segfault scenario the generation-counted respawn absorbs.
``hang``
    The victim worker sleeps ``hang_ms`` before touching its slab — the
    stuck-I/O / livelock scenario only the watchdog can detect (a hung
    worker never breaks the process pool by itself).
``exhaust``
    The batch's output lease is forced onto the arena's transient
    overflow path, as if every ring slab were held by slow consumers —
    the arena-exhaustion scenario (allocation cost, no deadlock).
``slow``
    The dispatch is delayed by a seeded jitter — enough to trip
    deadline shedding and latency-sensitive assertions without killing
    anything.

Three more kinds cover the **network hop** of the multi-host tier
(:mod:`repro.runtime.hostpool` consumes them; they are inert on a
single-host :class:`~repro.runtime.shard.ShardPool`):

``partition``
    The victim dispatch's connection to its host is severed mid-flight
    — the network-partition scenario: the host is healthy but this
    client cannot reach it, so the batch must replay on another host.
``slow-link``
    The dispatch's send is delayed by the seeded jitter — a congested
    or lossy link, distinct from ``slow`` so a plan can jitter the
    wire without jittering in-process dispatches (``slow_link_*``
    field names; the spec syntax accepts both ``slow-link`` and
    ``slow_link``).
``host-loss``
    The victim dispatch's serving host process is SIGKILLed — the
    machine-died scenario host respawn and hedged "another host"
    replay exist for (``host_loss_*`` field names).

One kind drives **load generators** rather than the dispatch path
(pools treat it as inert):

``overload-storm``
    The attempt is marked as part of a demand surge: a chaos load
    generator (the ``overload`` benchmark, a drill script) consults it
    to decide when to flood the ingestor past capacity, so the
    SLO degradation ladder (:mod:`repro.runtime.overload`) is
    exercised on a seeded, reproducible schedule instead of an ad-hoc
    sleep loop (``overload_storm_*`` field names).

Faults are keyed by **dispatch attempt index**: the pool consumes one
index per ``run_leased`` attempt (replays included), so ``kill@4``
kills exactly one attempt and its replay runs clean, while
``kill@4:5`` makes the replay die too — the persistent-crash scenario.
Probabilistic plans (``kill%0.05``) draw per-index from a seeded RNG,
so a given (seed, index) always misbehaves the same way regardless of
thread interleaving.

Plans are plain frozen dataclasses: build them in code, parse them from
the compact spec syntax (``FaultPlan.from_spec("kill@4:5,hang@1,
seed=7")`` — the CLI's ``--fault-plan`` accepts the same), or pull them
from the ``REPRO_FAULT_PLAN`` environment variable via
:func:`FaultPlan.from_env` (how a deployed service opts into a chaos
drill without a redeploy).
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field, fields
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import ToneMapError

#: The injectable fault kinds, in spec/display order.  The last three
#: are the network kinds consumed by the multi-host tier; field names
#: use underscores (``slow_link_batches``), spec tokens accept either
#: ``slow-link`` or ``slow_link``.
FAULT_KINDS = (
    "kill", "hang", "exhaust", "slow", "partition", "slow_link", "host_loss",
    "overload_storm",
)

#: The kinds that act on the networked hop (inert on a single-host pool).
NETWORK_FAULT_KINDS = ("partition", "slow_link", "host_loss")

#: Environment variable :func:`FaultPlan.from_env` reads.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Per-kind salt so the (seed, index) RNG streams are independent.
_KIND_SALT = {
    "kill": 0x9E3779B1,
    "hang": 0x85EBCA77,
    "exhaust": 0xC2B2AE3D,
    "slow": 0x27D4EB2F,
    "partition": 0x165667B1,
    "slow_link": 0xD3A2646C,
    "host_loss": 0xFD7046C5,
    "overload_storm": 0x94D049BB,
}


def _rng(seed: int, index: int, kind: str) -> random.Random:
    """Deterministic per-(seed, attempt, kind) stream — hash-seed-proof."""
    return random.Random(
        (seed & 0xFFFFFFFF) ^ (index * 0x100000001B3) ^ _KIND_SALT[kind]
    )


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seedable schedule of injected faults.

    ``*_batches`` name explicit dispatch-attempt indices;
    ``*_probability`` adds a seeded per-attempt coin flip on top.  An
    empty plan (``FaultPlan()``) injects nothing — handy as a base for
    ``dataclasses.replace``.

    Parameters
    ----------
    seed:
        Seeds every probabilistic draw and the jitter magnitudes; two
        runs with the same plan observe identical fault schedules.
    kill_batches / hang_batches / exhaust_batches / slow_batches /
    partition_batches / slow_link_batches / host_loss_batches /
    overload_storm_batches:
        Dispatch-attempt indices (0-based, replays included) that
        suffer the respective fault.
    kill_probability / hang_probability / exhaust_probability /
    slow_probability / partition_probability / slow_link_probability /
    host_loss_probability / overload_storm_probability:
        Per-attempt fault probability in ``[0, 1]``, drawn
        deterministically from ``seed`` and the attempt index.
    hang_ms:
        How long a hung worker sleeps.  Pick well past the watchdog
        budget under test — a "hang" that finishes before the watchdog
        fires is just a slow batch.
    jitter_ms:
        Upper bound of the ``slow`` and ``slow-link`` dispatch delays.
    """

    seed: int = 0
    kill_batches: Tuple[int, ...] = ()
    hang_batches: Tuple[int, ...] = ()
    exhaust_batches: Tuple[int, ...] = ()
    slow_batches: Tuple[int, ...] = ()
    partition_batches: Tuple[int, ...] = ()
    slow_link_batches: Tuple[int, ...] = ()
    host_loss_batches: Tuple[int, ...] = ()
    overload_storm_batches: Tuple[int, ...] = ()
    kill_probability: float = 0.0
    hang_probability: float = 0.0
    exhaust_probability: float = 0.0
    slow_probability: float = 0.0
    partition_probability: float = 0.0
    slow_link_probability: float = 0.0
    host_loss_probability: float = 0.0
    overload_storm_probability: float = 0.0
    hang_ms: float = 30000.0
    jitter_ms: float = 2.0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            batches = getattr(self, f"{kind}_batches")
            cleaned = tuple(sorted({int(i) for i in batches}))
            if any(i < 0 for i in cleaned):
                raise ToneMapError(
                    f"{kind}_batches indices must be >= 0, got {batches}"
                )
            object.__setattr__(self, f"{kind}_batches", cleaned)
            probability = getattr(self, f"{kind}_probability")
            if not 0.0 <= probability <= 1.0:
                raise ToneMapError(
                    f"{kind}_probability must be in [0, 1], got {probability}"
                )
        if self.hang_ms <= 0:
            raise ToneMapError(f"hang_ms must be > 0, got {self.hang_ms}")
        if self.jitter_ms < 0:
            raise ToneMapError(
                f"jitter_ms must be >= 0, got {self.jitter_ms}"
            )

    @property
    def empty(self) -> bool:
        """True when this plan can never inject anything."""
        return not any(
            getattr(self, f"{kind}_batches")
            or getattr(self, f"{kind}_probability") > 0.0
            for kind in FAULT_KINDS
        )

    def kinds_for(self, index: int) -> FrozenSet[str]:
        """The fault kinds attempt ``index`` suffers under this plan."""
        kinds = set()
        for kind in FAULT_KINDS:
            if index in getattr(self, f"{kind}_batches"):
                kinds.add(kind)
                continue
            probability = getattr(self, f"{kind}_probability")
            if probability > 0.0 and (
                _rng(self.seed, index, kind).random() < probability
            ):
                kinds.add(kind)
        return frozenset(kinds)

    def jitter_s(self, index: int, kind: str = "slow") -> float:
        """The seeded delay (seconds) for attempt ``index``.

        ``kind`` selects the RNG stream: ``"slow"`` (in-process and
        shard-dispatch jitter) or ``"slow_link"`` (wire-send jitter) —
        the two streams are independent, so a plan jittering both draws
        different magnitudes.
        """
        if self.jitter_ms <= 0.0:
            return 0.0
        return (
            _rng(self.seed, index, kind).uniform(0.5, 1.0)
            * self.jitter_ms
            / 1e3
        )

    # ------------------------------------------------------------------
    # Spec syntax (CLI / environment)
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the compact spec syntax.

        Comma-separated tokens; three forms::

            kill@4:5        explicit attempt indices (':'-separated)
            hang%0.05       per-attempt probability
            seed=7          numeric field (seed, hang_ms, jitter_ms)

        ``FaultPlan.from_spec("kill@4:5,hang@1,slow%0.2,seed=7")``.
        """
        kwargs: Dict[str, object] = {}
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            try:
                if "@" in token:
                    kind, _, indices = token.partition("@")
                    kind = kind.strip().replace("-", "_")
                    if kind not in FAULT_KINDS:
                        raise ValueError(f"unknown fault kind {kind!r}")
                    kwargs[f"{kind}_batches"] = tuple(
                        int(part) for part in indices.split(":")
                    )
                elif "%" in token:
                    kind, _, probability = token.partition("%")
                    kind = kind.strip().replace("-", "_")
                    if kind not in FAULT_KINDS:
                        raise ValueError(f"unknown fault kind {kind!r}")
                    kwargs[f"{kind}_probability"] = float(probability)
                elif "=" in token:
                    name, _, value = token.partition("=")
                    name = name.strip()
                    if name not in ("seed", "hang_ms", "jitter_ms"):
                        raise ValueError(f"unknown field {name!r}")
                    kwargs[name] = (
                        int(value) if name == "seed" else float(value)
                    )
                else:
                    raise ValueError("expected kind@i[:i...], kind%p or k=v")
            except ValueError as exc:
                raise ToneMapError(
                    f"bad fault-plan token {token!r}: {exc}"
                ) from None
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_spec(self) -> str:
        """The spec string round-tripping through :meth:`from_spec`."""
        tokens = []
        for kind in FAULT_KINDS:
            display = kind.replace("_", "-")
            batches = getattr(self, f"{kind}_batches")
            if batches:
                tokens.append(
                    f"{display}@" + ":".join(str(i) for i in batches)
                )
            probability = getattr(self, f"{kind}_probability")
            if probability > 0.0:
                tokens.append(f"{display}%{probability:g}")
        defaults = {f.name: f.default for f in fields(self)}
        for name in ("seed", "hang_ms", "jitter_ms"):
            value = getattr(self, name)
            if value != defaults[name]:
                tokens.append(f"{name}={value:g}")
        return ",".join(tokens)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` if unset.

        Read at pool construction (not import) so a test or an operator
        can arm a chaos drill per process without touching code.
        """
        spec = os.environ.get(FAULT_PLAN_ENV)
        if not spec:
            return None
        return cls.from_spec(spec)


class FaultInjector:
    """Executes a :class:`FaultPlan` against a stream of dispatches.

    The pool asks :meth:`next_attempt` once per ``run_leased`` attempt;
    the injector allocates the next attempt index (thread-safe — under
    concurrent batches the *set* of indices is deterministic even when
    their assignment to batches races) and reports which fault kinds
    that attempt suffers.  Worker-side faults (``kill``/``hang``) are
    shipped to the victim slab as a plain directive tuple — the worker
    needs no copy of the plan, which keeps the injection observable
    from the parent and trivially picklable.

    The injector also serves in-process consumers: the service's
    brownout mapper draws from an independent attempt stream
    (:meth:`next_inproc`) so ``slow`` jitter keeps applying when the
    breaker routes batches away from the pool.
    """

    def __init__(self, plan: FaultPlan):
        if not isinstance(plan, FaultPlan):
            raise ToneMapError(
                f"expected a FaultPlan, got {type(plan)!r}"
            )
        self.plan = plan
        self._lock = threading.Lock()
        self._next_index = 0
        self._next_inproc = 0
        self._injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def next_attempt(self) -> Tuple[int, FrozenSet[str]]:
        """Allocate the next dispatch index and its fault kinds."""
        with self._lock:
            index = self._next_index
            self._next_index += 1
            kinds = self.plan.kinds_for(index)
            for kind in kinds:
                self._injected[kind] += 1
        return index, kinds

    def next_inproc(self) -> Tuple[int, FrozenSet[str]]:
        """Like :meth:`next_attempt`, on the in-process fault stream.

        Only ``slow`` applies in-process (there is no worker to kill or
        hang, and no arena lease to exhaust); other kinds drawn for the
        index are reported but ignored by the mapper.
        """
        with self._lock:
            index = self._next_inproc
            self._next_inproc += 1
            kinds = self.plan.kinds_for(index) & {"slow"}
            for kind in kinds:
                self._injected[kind] += 1
        return index, kinds

    def worker_directive(
        self, kinds: FrozenSet[str]
    ) -> Optional[Tuple[str, float]]:
        """The fault tuple shipped to the victim slab (or ``None``).

        ``kill`` outranks ``hang`` when a plan schedules both — a dead
        worker cannot also sleep.
        """
        if "kill" in kinds:
            return ("kill", 0.0)
        if "hang" in kinds:
            return ("hang", self.plan.hang_ms / 1e3)
        return None

    @property
    def injected(self) -> Dict[str, int]:
        """Faults injected so far, by kind (a snapshot copy)."""
        with self._lock:
            return dict(self._injected)

    @property
    def attempts(self) -> int:
        """Dispatch attempts consumed from the plan so far."""
        with self._lock:
            return self._next_index


def resolve_injector(
    faults: Optional[object],
) -> Optional[FaultInjector]:
    """Normalize a ``faults=`` argument to an injector (or ``None``).

    Accepts ``None`` (then consults ``REPRO_FAULT_PLAN``), a
    :class:`FaultPlan`, a spec string, or a ready
    :class:`FaultInjector` (shared between a pool and its service so
    both observe one attempt stream).
    """
    if faults is None:
        plan = FaultPlan.from_env()
        return FaultInjector(plan) if plan is not None else None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, str):
        return FaultInjector(FaultPlan.from_spec(faults))
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    raise ToneMapError(
        f"faults must be a FaultPlan, spec string or FaultInjector, got "
        f"{type(faults)!r}"
    )
