"""Async ingestion front-end: continuous arrivals, fair multi-tenant
coalescing, deadline batching.

The paper frames tone mapping as a continuous imaging workload (video
frames arriving one by one), but batching only pays when same-shape frames
are stacked.  :class:`ToneMapIngestor` bridges the two: submissions are
admitted one at a time (from threads via :meth:`submit` or from an
``asyncio`` event loop via :meth:`submit_async`), parked in per-tenant
queues, and flushed to the backing
:class:`~repro.runtime.service.ToneMapService` as coalesced same-shape
batches when either a shape has ``batch_size`` frames waiting or its
oldest occupant has waited ``max_delay_ms`` — the classic
batching-under-a-latency-deadline trade.

**Multi-tenant fairness.**  Every submission carries a ``tenant``
identity.  Arrivals land in that tenant's bounded queue (its own
``queue_limit`` and admission policy, so one tenant exhausting its
budget never evicts or blocks another), and a deficit-round-robin
scheduler (:class:`DeficitRoundRobin`) assembles each batch by granting
seats to tenants in proportion to their :class:`TenantConfig.weight` —
so a batch coalesces frames *across* tenants and a heavy tenant with a
thousand queued frames cannot push a light tenant's single frame behind
them.  Crucially, frames wait in tenant queues (where the scheduler can
reorder them), not in the service's FIFO thread pool: the ingestor
dispatches at most ``max_inflight_batches`` concurrent batches — enough
to keep every pool thread busy, never enough to recreate a deep FIFO
downstream.  This is the software analogue of the paper's data-mover
discipline: the accelerator stays saturated from a short, fair,
scheduler-controlled queue.

Admission control per tenant (and globally) supports three
:class:`backpressure policies <BackpressurePolicy>`:

``block``
    The submitter waits for a slot (lossless; callers feel the slowdown).
``reject``
    The submitter gets :class:`~repro.errors.ServiceOverloadedError`
    immediately (shed load at the edge, keep latency bounded).
``shed-oldest``
    The oldest *not yet dispatched* frame is dropped — over a tenant
    limit, the tenant's own oldest; over the global limit, the globally
    oldest — and the newcomer is admitted (freshest-data-wins, the right
    policy for live video).  Victims of one shed storm fail with a
    single coalesced :class:`~repro.errors.ServiceOverloadedError`
    (its ``shed_count`` grows as victims join), not one context per
    frame.  If every admitted frame is already executing, the submitter
    blocks until a slot frees.

**Zero-copy dispatch.**  Against a sharded service each batch is written
directly into a pooled shared-memory input stack at dispatch time — one
producer write per frame, no ``np.stack``, no re-staging — and handed to
the service as a pointer (segment name plus frame count).  Results
resolve through ordinary futures: by default the service materializes
each batch's outputs once (the safety fallback — an arbitrary future
consumer cannot be trusted to release a slab promptly); with
``lease_results=True`` futures instead resolve to zero-copy
:class:`~repro.runtime.arena.ResultHandle` views that the consumer
explicitly releases back to the slab ring.  In-process services keep
the parked-images copy path (``zero_copy=False``).

**Service classes and EDF.**  Each submission also carries a
:class:`ServiceClass` (``interactive`` / ``standard`` / ``best_effort``,
the ``priority=`` argument).  Classes layer *on top of* DRR, they do not
replace it: fairness still decides how many seats each tenant gets per
batch, and the class + deadline decide *which* of the tenant's queued
frames fill those seats — earliest absolute deadline first, class rank
breaking ties (EDF inside the tenant queue).  Shedding is class-aware
in the same spirit: ``shed-oldest`` victimizes best-effort frames
first, then standard, and an interactive frame is never shed before its
deadline has actually expired.

**Overload ladder.**  With ``overload=`` set, an
:class:`~repro.runtime.overload.OverloadController` watches the
end-to-end p95 and queue depth after every completed batch and walks
the degradation ladder (full → degraded plan → shed best-effort →
brownout) with hysteresis; the ingestor applies each rung — pinning the
service onto a cheaper plan, suspending best-effort admission and
dropping queued best-effort frames, forcing brownout — and surfaces
``ladder_rung`` / ``ladder_transitions`` / ``ladder_shed`` on
:class:`~repro.runtime.reliability.ReliabilityStats`.

**Drain.**  :meth:`drain` is the zero-loss shutdown: stop admitting,
fail queued best-effort frames with one deterministic
:class:`~repro.errors.ServiceOverloadedError`, serve every queued
interactive/standard frame to a real result, wait for in-flight
batches, stop the scheduler.  :meth:`close` keeps its old contract
(flush *everything*, including best-effort).

Queue depth, reject/shed counts, end-to-end latency percentiles, and the
per-tenant breakdown (:class:`~repro.runtime.service.TenantStats`,
including Jain's ``fairness_index``) are reported on
:class:`~repro.runtime.service.ServiceStats` via
:attr:`ToneMapIngestor.stats`.  The full data path (ingest → DRR
schedule → shard → batch) is diagrammed in ``docs/architecture.md``;
the two-tenant contention benchmark lives in
``benchmarks/bench_runtime.py`` (see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures as futures_module
import enum
import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, replace
from numbers import Real
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ToneMapError,
)
from repro.image.hdr import HDRImage
from repro.runtime.clock import MONOTONIC, Clock
from repro.runtime.overload import (
    LADDER_FULL,
    LADDER_SHED,
    OverloadController,
    OverloadPolicy,
    ServiceLevelObjective,
    rung_index,
)
from repro.runtime.service import (
    LATENCY_WINDOW,
    ServiceStats,
    TenantStats,
    ToneMapService,
    _percentile,
)

#: Tenant identity used when callers do not name one.
DEFAULT_TENANT = "default"


class BackpressurePolicy(enum.Enum):
    """What :meth:`ToneMapIngestor.submit` does when a queue is full."""

    BLOCK = "block"
    REJECT = "reject"
    SHED_OLDEST = "shed-oldest"


class ServiceClass(enum.Enum):
    """Priority class of one submission.

    The class decides two things: EDF tie-breaking inside a tenant's
    queue (interactive frames outrank standard outrank best-effort when
    deadlines are equal or absent) and shed order (best-effort sheds
    first, standard next; an interactive frame is only ever shed once
    its own deadline has expired).  It never changes how many seats a
    tenant gets — that stays DRR's job.
    """

    INTERACTIVE = "interactive"
    STANDARD = "standard"
    BEST_EFFORT = "best_effort"


#: EDF tie-break rank: lower serves first.
_CLASS_RANK = {
    ServiceClass.INTERACTIVE: 0,
    ServiceClass.STANDARD: 1,
    ServiceClass.BEST_EFFORT: 2,
}

#: Shed preference: lower sheds first.
_SHED_RANK = {
    ServiceClass.BEST_EFFORT: 0,
    ServiceClass.STANDARD: 1,
    ServiceClass.INTERACTIVE: 2,
}

#: Ladder index at and above which best-effort admission is suspended.
_SHED_INDEX = rung_index(LADDER_SHED)


def _coerce_class(
    priority: Union["ServiceClass", str, None]
) -> "ServiceClass":
    """Accept a ServiceClass, its string value, or None (standard)."""
    if priority is None:
        return ServiceClass.STANDARD
    if isinstance(priority, ServiceClass):
        return priority
    if isinstance(priority, str):
        try:
            return ServiceClass(priority.replace("-", "_"))
        except ValueError:
            pass
    raise ToneMapError(
        f"priority must be a ServiceClass or one of "
        f"{[c.value for c in ServiceClass]}, got {priority!r}"
    )


def _edf_key(pending: "_Pending"):
    """Earliest deadline first; class rank, then arrival, break ties."""
    return (
        pending.deadline if pending.deadline is not None else float("inf"),
        _CLASS_RANK[pending.service_class],
        pending.enqueued_at,
    )


@dataclass(frozen=True)
class TenantConfig:
    """Scheduling and admission parameters of one tenant.

    Parameters
    ----------
    weight:
        Deficit-round-robin share.  A tenant with weight 2 receives two
        batch seats for every one a weight-1 tenant receives while both
        have frames queued; weights are relative, any positive scale
        works.
    queue_limit:
        This tenant's own in-flight bound (admitted but unfinished
        frames).  ``None`` inherits the ingestor's
        ``per_tenant_queue_limit`` default.
    policy:
        Admission policy when *this tenant's* limit is hit.  ``None``
        inherits the ingestor's policy.
    """

    weight: float = 1.0
    queue_limit: Optional[int] = None
    policy: Optional[Union[BackpressurePolicy, str]] = None

    def __post_init__(self) -> None:
        if not self.weight > 0.0:
            raise ToneMapError(
                f"tenant weight must be > 0, got {self.weight}"
            )
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ToneMapError(
                f"tenant queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.policy is not None:
            object.__setattr__(
                self, "policy", BackpressurePolicy(self.policy)
            )


class DeficitRoundRobin:
    """Weighted fair seat allocation across tenant queues.

    Classic deficit round robin with unit frame cost (every seat in a
    same-shape batch is the same size): each tenant's deficit grows by
    its weight once per rotation and is spent one seat per queued frame.
    Deficits persist *across* allocations while a tenant stays
    backlogged — so fractional weights (0.5 = one seat every other
    rotation) and leftover seats are honored over time — and reset when
    its queue drains (a tenant cannot bank credit while idle, the
    property that makes DRR starvation-free).

    Deterministic and clock-free so tests can drive it grant by grant;
    the ingestor owns one instance per shape-independent scheduler.
    """

    def __init__(self):
        self._deficit: Dict[str, float] = {}
        self._rotation: deque = deque()

    def allocate(
        self,
        queued: Mapping[str, int],
        weights: Mapping[str, float],
        seats: int,
    ) -> Dict[str, int]:
        """Grant up to ``seats`` batch seats across backlogged tenants.

        ``queued`` maps tenant → frames waiting (non-positive entries
        are ignored); ``weights`` maps tenant → DRR weight (default 1).
        Returns tenant → seats granted; grants sum to
        ``min(seats, total queued)``.
        """
        for name, backlog in queued.items():
            if backlog > 0 and name not in self._deficit:
                self._deficit[name] = 0.0
                self._rotation.append(name)
        active = deque(
            name for name in self._rotation if queued.get(name, 0) > 0
        )
        remaining = {name: queued[name] for name in active}
        grants: Dict[str, int] = {}
        while seats > 0 and active:
            # Normalize increments so the heaviest *backlogged* tenant
            # accrues exactly one seat per rotation: relative shares are
            # unchanged (units of deficit are arbitrary), but a tiny
            # absolute weight (1e-6 is valid) can no longer make this
            # loop spin millions of rotations while the caller holds
            # the ingestor lock — progress is ≥ 1 seat per rotation.
            scale = max(float(weights.get(n, 1.0)) for n in active)
            name = active.popleft()
            self._deficit[name] += float(weights.get(name, 1.0)) / scale
            take = min(int(self._deficit[name]), remaining[name], seats)
            if take > 0:
                grants[name] = grants.get(name, 0) + take
                self._deficit[name] -= take
                remaining[name] -= take
                seats -= take
            if remaining[name] > 0:
                active.append(name)
            else:
                # Emptied queues forfeit their credit: idle tenants must
                # not bank deficit against future storms.
                self._deficit[name] = 0.0
        if self._rotation:
            # Start the next allocation one tenant later so queue-map
            # ordering gives nobody a persistent positional edge.
            self._rotation.rotate(-1)
        return grants


@dataclass
class _Pending:
    """One admitted frame waiting in its tenant's queue."""

    name: str
    future: Future
    enqueued_at: float
    image: Optional[HDRImage]
    tenant: str
    #: Absolute (clock-relative) latency deadline, or None for no budget.
    deadline: Optional[float] = None
    service_class: ServiceClass = ServiceClass.STANDARD


class _TenantState:
    """Mutable per-tenant bookkeeping (guarded by the ingestor lock)."""

    __slots__ = (
        "name", "weight", "queue_limit", "policy", "queues", "in_flight",
        "submitted", "served", "rejected", "shed", "queue_peak",
        "latencies_ms",
    )

    def __init__(self, name: str, config: TenantConfig):
        self.name = name
        self.weight = config.weight
        self.queue_limit = config.queue_limit
        self.policy = config.policy
        self.queues: Dict[tuple, deque] = {}
        self.in_flight = 0
        self.submitted = 0
        self.served = 0
        self.rejected = 0
        self.shed = 0
        self.queue_peak = 0
        self.latencies_ms: deque = deque(maxlen=LATENCY_WINDOW)


@dataclass
class _Flush:
    """One coalesced batch on its way to the service (slot order)."""

    items: List[_Pending]
    shape: tuple

    @property
    def count(self) -> int:
        return len(self.items)


class ToneMapIngestor:
    """Streams single-image arrivals into fair, coalesced service batches.

    Parameters
    ----------
    service:
        The backing :class:`~repro.runtime.service.ToneMapService`.  The
        ingestor borrows it (several ingestors may share one) and does
        *not* close it; ``service.batch_size`` is the coalescing target.
    max_delay_ms:
        Longest an admitted image may wait for same-shape company before
        its partial batch is flushed anyway.  The knob trades latency
        (small values) against batching efficiency (large values).
    queue_limit:
        Maximum in-flight images across all tenants (admitted but
        unfinished).  Admissions beyond it trigger ``policy``.
    policy:
        Default :class:`BackpressurePolicy` (or its string value);
        individual tenants may override via :class:`TenantConfig`.
    zero_copy:
        Write each batch straight into the service's shared-memory
        arena at dispatch time instead of re-staging it (see the module
        docstring).  Defaults to on exactly when the service is sharded
        — the arena belongs to the shard pool; requesting it against an
        in-process service raises.
    tenants:
        Optional mapping of tenant name → :class:`TenantConfig` (or a
        bare number, shorthand for a weight).  Unknown tenants are
        auto-registered at first submission with default config.
        Tenant identities are service classes (a bounded set — "video",
        "thumbnails", a customer tier), not per-request ids: per-tenant
        state (counters, latency windows, scheduler bookkeeping) is
        retained for the ingestor's lifetime so ``stats`` stays
        continuous, which means unbounded tenant cardinality grows
        memory without bound.
    per_tenant_queue_limit:
        Default per-tenant in-flight bound for tenants whose config
        does not set one (``None``: only the global ``queue_limit``
        binds).
    lease_results:
        Resolve futures to zero-copy
        :class:`~repro.runtime.arena.ResultHandle` views (the consumer
        must release them) instead of materialized
        :class:`~repro.image.hdr.HDRImage` copies.  Requires the
        zero-copy path (sharded service).
    max_inflight_batches:
        Dispatch gate: how many batches may be in the service at once.
        Defaults to the service's thread-pool width — enough to keep
        every worker busy while excess frames wait where the DRR
        scheduler can keep them fair.
    default_deadline_ms:
        Latency budget stamped on every frame whose ``submit`` call
        does not pass its own ``deadline_ms``.  ``None`` (the default)
        stamps no budget — frames wait indefinitely, exactly the old
        behaviour.
    overload:
        Enables the SLO degradation ladder: a
        :class:`~repro.runtime.overload.ServiceLevelObjective` (wrapped
        in a default policy), an
        :class:`~repro.runtime.overload.OverloadPolicy`, or a
        pre-built :class:`~repro.runtime.overload.OverloadController`
        (shared controllers let several ingestors walk one ladder).
        ``None`` (the default) disables the ladder entirely.
    clock:
        Injectable monotonic time source (:mod:`repro.runtime.clock`);
        every ingestor timestamp — enqueue times, coalescing deadlines,
        frame latency budgets, latency stats — reads this one clock, so
        chaos tests fake time instead of sleeping.

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        service: ToneMapService,
        max_delay_ms: float = 5.0,
        queue_limit: int = 64,
        policy: Union[BackpressurePolicy, str] = BackpressurePolicy.BLOCK,
        zero_copy: Optional[bool] = None,
        tenants: Optional[Mapping[str, Union[TenantConfig, Real]]] = None,
        per_tenant_queue_limit: Optional[int] = None,
        lease_results: bool = False,
        max_inflight_batches: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        overload: Optional[
            Union[OverloadController, OverloadPolicy, ServiceLevelObjective]
        ] = None,
        clock: Optional[Clock] = None,
    ):
        if max_delay_ms < 0:
            raise ToneMapError(
                f"max_delay_ms must be >= 0, got {max_delay_ms}"
            )
        if queue_limit < 1:
            raise ToneMapError(f"queue_limit must be >= 1, got {queue_limit}")
        if per_tenant_queue_limit is not None and per_tenant_queue_limit < 1:
            raise ToneMapError(
                "per_tenant_queue_limit must be >= 1, got "
                f"{per_tenant_queue_limit}"
            )
        if max_inflight_batches is not None and max_inflight_batches < 1:
            raise ToneMapError(
                "max_inflight_batches must be >= 1, got "
                f"{max_inflight_batches}"
            )
        if zero_copy is None:
            zero_copy = service.pool is not None
        elif zero_copy and service.pool is None:
            raise ToneMapError(
                "zero-copy ingest requires a sharded or hosted service "
                "(construct ToneMapService with shards=N or hosts=...)"
            )
        if lease_results and not zero_copy:
            raise ToneMapError(
                "lease-native results require the zero-copy ingest path "
                "(a sharded service with zero_copy enabled) — the arena "
                "slab ring is what the handles lease from"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ToneMapError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.service = service
        self.max_delay = max_delay_ms / 1e3
        self.queue_limit = queue_limit
        self.default_deadline_ms = default_deadline_ms
        self._clock = clock if clock is not None else MONOTONIC
        if overload is None or isinstance(overload, OverloadController):
            self._overload = overload
        elif isinstance(overload, OverloadPolicy):
            self._overload = OverloadController(overload, clock=self._clock)
        elif isinstance(overload, ServiceLevelObjective):
            self._overload = OverloadController(
                OverloadPolicy(slo=overload), clock=self._clock
            )
        else:
            raise ToneMapError(
                "overload must be an OverloadController, OverloadPolicy "
                f"or ServiceLevelObjective, got {type(overload)!r}"
            )
        self.policy = BackpressurePolicy(policy)
        self.zero_copy = bool(zero_copy)
        self.lease_results = bool(lease_results)
        self.per_tenant_queue_limit = per_tenant_queue_limit
        self.max_inflight_batches = (
            max_inflight_batches
            if max_inflight_batches is not None
            else max(1, service.workers)
        )

        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._tenants: Dict[str, _TenantState] = {}
        self._drr = DeficitRoundRobin()
        self._shape_totals: Dict[tuple, int] = {}
        self._in_flight = 0
        self._dispatched = 0
        self._closed = False
        self._draining = False
        self._queue_peak = 0
        self._rejected = 0
        self._shed = 0
        self._deadline_shed = 0
        self._ladder_rung = LADDER_FULL
        self._ladder_shed = 0
        # One coalesced shed-storm error context per binding scope (a
        # tenant name, or None for the global limit), reset at the next
        # dispatch — see _shed_one_locked.
        self._storms: Dict[Optional[str], ServiceOverloadedError] = {}
        self._latencies_ms: deque = deque(maxlen=LATENCY_WINDOW)
        for name, config in (tenants or {}).items():
            self._register_tenant_locked(name, config)
        self._coalescer = threading.Thread(
            target=self._coalesce_loop, name="tonemap-ingest", daemon=True
        )
        self._coalescer.start()

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def _register_tenant_locked(
        self, name: str, config: Union[TenantConfig, Real]
    ) -> _TenantState:
        if isinstance(config, Real) and not isinstance(config, bool):
            config = TenantConfig(weight=float(config))
        if not isinstance(config, TenantConfig):
            raise ToneMapError(
                f"tenant config must be a TenantConfig or a weight, got "
                f"{type(config)!r}"
            )
        state = _TenantState(name, config)
        if state.queue_limit is None:
            state.queue_limit = self.per_tenant_queue_limit
        self._tenants[name] = state
        return state

    def _tenant_locked(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = self._register_tenant_locked(name, TenantConfig())
        return state

    # ------------------------------------------------------------------
    # Submission APIs
    # ------------------------------------------------------------------
    def submit(
        self,
        image: HDRImage,
        tenant: str = DEFAULT_TENANT,
        deadline_ms: Optional[float] = None,
        priority: Optional[Union[ServiceClass, str]] = None,
    ) -> "Future[HDRImage]":
        """Admit one image (blocking API); resolves to its output.

        Applies the tenant's (then the global) backpressure policy when
        a queue limit is hit, then parks the frame in the tenant's queue
        for the DRR scheduler to batch.

        ``deadline_ms`` (default: the ingestor's ``default_deadline_ms``)
        stamps an end-to-end latency budget on the frame: if it expires
        while the frame is still queued, the frame is shed — its future
        fails with :class:`~repro.errors.DeadlineExceededError` and its
        slot frees immediately — and whatever budget remains at dispatch
        rides into the shard pool as the batch's execution timeout.

        ``priority`` names the frame's :class:`ServiceClass` (enum or
        string; default ``standard``): EDF rank inside the tenant queue
        and shed protection — see the module docstring.  Best-effort
        frames are rejected outright while the overload ladder sits at
        ``shed_best_effort`` or above.
        """
        if not isinstance(image, HDRImage):
            raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
        service_class = _coerce_class(priority)
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise ToneMapError(
                f"deadline_ms must be > 0, got {deadline_ms}"
            )
        with self._lock:
            if self._closed or self._draining:
                raise ToneMapError(
                    "ingestor is draining" if self._draining
                    else "ingestor is closed"
                )
            state = self._tenant_locked(tenant)
            if (
                service_class is ServiceClass.BEST_EFFORT
                and self._overload is not None
                and rung_index(self._ladder_rung) >= _SHED_INDEX
            ):
                state.rejected += 1
                self._rejected += 1
                self._ladder_shed += 1
                raise ServiceOverloadedError(
                    "best-effort admission suspended by the overload "
                    f"ladder (rung={self._ladder_rung})",
                    tenant=tenant,
                )
            while True:
                over_tenant = (
                    state.queue_limit is not None
                    and state.in_flight >= state.queue_limit
                )
                over_global = self._in_flight >= self.queue_limit
                if not over_tenant and not over_global:
                    break
                policy = state.policy or self.policy
                if policy is BackpressurePolicy.REJECT:
                    state.rejected += 1
                    self._rejected += 1
                    if over_tenant:
                        raise ServiceOverloadedError(
                            f"tenant {tenant!r} queue limit "
                            f"{state.queue_limit} reached "
                            f"({state.in_flight} frames in flight)",
                            tenant=tenant,
                        )
                    raise ServiceOverloadedError(
                        f"queue limit {self.queue_limit} reached "
                        f"({self._in_flight} images in flight)",
                        tenant=tenant,
                    )
                if policy is BackpressurePolicy.SHED_OLDEST and (
                    # Over a tenant limit only that tenant's frames are
                    # fair game; over the global limit the globally
                    # oldest queued frame goes (whoever queued it — the
                    # per-tenant limits are what keep a heavy tenant
                    # from farming the global shed).
                    self._shed_one_locked(state if over_tenant else None)
                ):
                    continue
                # BLOCK, or SHED_OLDEST with nothing left to shed (every
                # admitted image is already executing): wait for a slot.
                self._space.wait()
                if self._closed or self._draining:
                    raise ToneMapError(
                        "ingestor is draining" if self._draining
                        else "ingestor is closed"
                    )
            now = self._clock.now()
            pending = _Pending(
                image.name,
                Future(),
                now,
                image,
                tenant,
                deadline=(
                    None if deadline_ms is None else now + deadline_ms / 1e3
                ),
                service_class=service_class,
            )
            shape = image.pixels.shape
            state.queues.setdefault(shape, deque()).append(pending)
            state.in_flight += 1
            state.submitted += 1
            state.queue_peak = max(state.queue_peak, state.in_flight)
            self._shape_totals[shape] = self._shape_totals.get(shape, 0) + 1
            self._in_flight += 1
            self._queue_peak = max(self._queue_peak, self._in_flight)
            self._arrived.notify()
        return pending.future

    async def submit_async(
        self,
        image: HDRImage,
        tenant: str = DEFAULT_TENANT,
        deadline_ms: Optional[float] = None,
        priority: Optional[Union[ServiceClass, str]] = None,
    ) -> HDRImage:
        """Admit one image from an event loop; returns the output.

        Admission (which may block under the ``block`` policy) runs on the
        loop's default executor so the event loop itself never stalls; the
        result is awaited without blocking either.
        """
        loop = asyncio.get_running_loop()
        future = await loop.run_in_executor(
            None, lambda: self.submit(image, tenant, deadline_ms, priority)
        )
        return await asyncio.wrap_future(future)

    def map_many(
        self,
        images: Sequence[HDRImage],
        tenant: str = DEFAULT_TENANT,
        deadline_ms: Optional[float] = None,
        priority: Optional[Union[ServiceClass, str]] = None,
    ) -> list:
        """Submit many images one by one and wait for all outputs in order.

        Convenience for scripted workloads; under the ``reject`` /
        ``shed-oldest`` policies a dropped submission surfaces here as
        :class:`~repro.errors.ServiceOverloadedError`, and an expired
        ``deadline_ms`` as :class:`~repro.errors.DeadlineExceededError`.
        """
        futures = [
            self.submit(image, tenant, deadline_ms, priority)
            for image in images
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Shedding
    # ------------------------------------------------------------------
    def _shed_one_locked(
        self, state: Optional[_TenantState] = None
    ) -> bool:
        """Drop one still-queued frame, class-aware; True if one was shed.

        The victim is the *oldest frame of the most sheddable class*
        present: best-effort frames go first, then standard, and an
        interactive frame is only ever a candidate once its own
        deadline has already expired — a queue of purely standard
        frames therefore sheds exactly the oldest frame, the pre-class
        behaviour.  ``state`` narrows the search to one tenant (its own
        limit was hit); ``None`` sheds across all tenants.  Victims of
        one storm share a single coalesced
        :class:`ServiceOverloadedError` — the context is created once
        per storm (reset at the next dispatch) and its ``shed_count``
        grows per victim while the storm lasts, so a thousand-frame
        storm does not build a thousand exception objects (the price of
        sharing: ``shed_count`` is a live storm counter, not a
        per-victim snapshot).  Storms are coalesced *per binding
        scope*: each tenant limit gets its own context (its ``tenant``
        names that tenant) and the global limit gets its own
        (``tenant=None``, since it may shed several tenants' frames) —
        concurrent storms never cross-attribute metadata.  Queued
        frames hold no arena slots (the producer write happens at
        dispatch), so there is nothing to release before signalling —
        the slot-accounting tests assert exactly that.
        """
        candidates = [state] if state is not None else self._tenants.values()
        now = self._clock.now()
        victim_state: Optional[_TenantState] = None
        victim_shape: Optional[tuple] = None
        victim_index: Optional[int] = None
        best: Optional[tuple] = None
        for tenant_state in candidates:
            for shape, queue in tenant_state.queues.items():
                for index, pending in enumerate(queue):
                    if (
                        pending.service_class is ServiceClass.INTERACTIVE
                        and not (
                            pending.deadline is not None
                            and pending.deadline <= now
                        )
                    ):
                        continue  # interactive never sheds pre-deadline
                    key = (
                        _SHED_RANK[pending.service_class],
                        pending.enqueued_at,
                    )
                    if best is None or key < best:
                        best = key
                        victim_state = tenant_state
                        victim_shape = shape
                        victim_index = index
        if victim_state is None:
            return False
        queue = victim_state.queues[victim_shape]
        victim = queue[victim_index]
        del queue[victim_index]
        if not queue:
            del victim_state.queues[victim_shape]
        self._shape_totals[victim_shape] -= 1
        if self._shape_totals[victim_shape] <= 0:
            del self._shape_totals[victim_shape]
        victim_state.in_flight -= 1
        victim_state.shed += 1
        self._in_flight -= 1
        self._shed += 1
        scope = state.name if state is not None else None
        storm = self._storms.get(scope)
        if storm is None:
            if state is not None:
                bound = (
                    f"tenant {state.name!r} queue_limit={state.queue_limit}"
                )
            else:
                bound = f"queue_limit={self.queue_limit}"
            storm = self._storms[scope] = ServiceOverloadedError(
                f"shed by a newer arrival (policy=shed-oldest, {bound})",
                tenant=scope,
            )
        storm.shed_count += 1
        victim.image = None
        try:
            victim.future.set_exception(storm)
        except futures_module.InvalidStateError:
            pass  # the caller cancelled it first
        return True

    def _expire_due_locked(self, now: float) -> None:
        """Shed every queued frame whose latency budget has expired.

        Computing a result nobody can use anymore would only steal batch
        seats from frames that can still make their budgets, so expired
        frames are dropped here — at scheduling time, before seats are
        allocated — each failing with its own
        :class:`~repro.errors.DeadlineExceededError` (deadlines are
        per-frame facts, unlike shed storms, which share one overload
        context).  Frames already dispatched are past saving by
        shedding; their remaining budget rides into the pool as the
        batch timeout instead.
        """
        for state in self._tenants.values():
            for shape in list(state.queues):
                queue = state.queues[shape]
                survivors = deque()
                for pending in queue:
                    if pending.deadline is None or pending.deadline > now:
                        survivors.append(pending)
                        continue
                    self._shape_totals[shape] -= 1
                    if self._shape_totals[shape] <= 0:
                        del self._shape_totals[shape]
                    state.in_flight -= 1
                    self._in_flight -= 1
                    self._deadline_shed += 1
                    elapsed_ms = (now - pending.enqueued_at) * 1e3
                    budget_ms = (
                        pending.deadline - pending.enqueued_at
                    ) * 1e3
                    pending.image = None
                    try:
                        pending.future.set_exception(
                            DeadlineExceededError(
                                f"frame {pending.name!r} waited "
                                f"{elapsed_ms:.1f} ms, past its "
                                f"{budget_ms:.1f} ms budget",
                                tenant=pending.tenant,
                                elapsed_ms=elapsed_ms,
                                deadline_ms=budget_ms,
                            )
                        )
                    except futures_module.InvalidStateError:
                        pass  # the caller cancelled it first
                if len(survivors) != len(queue):
                    if survivors:
                        state.queues[shape] = survivors
                    else:
                        del state.queues[shape]
                    self._space.notify_all()

    def _shed_class_locked(
        self, service_class: ServiceClass, reason: str, ladder: bool
    ) -> int:
        """Drop every queued frame of one class; returns the count.

        Used when the overload ladder enters ``shed_best_effort``
        (``ladder=True``, counted in ``ladder_shed``) and by
        :meth:`drain` (``ladder=False``).  All victims share one
        deterministic coalesced
        :class:`~repro.errors.ServiceOverloadedError` naming ``reason``.
        """
        storm: Optional[ServiceOverloadedError] = None
        dropped = 0
        for state in self._tenants.values():
            for shape in list(state.queues):
                queue = state.queues[shape]
                victims = [
                    pending for pending in queue
                    if pending.service_class is service_class
                ]
                if not victims:
                    continue
                survivors = deque(
                    pending for pending in queue
                    if pending.service_class is not service_class
                )
                self._shape_totals[shape] -= len(victims)
                if self._shape_totals[shape] <= 0:
                    del self._shape_totals[shape]
                state.in_flight -= len(victims)
                state.shed += len(victims)
                self._in_flight -= len(victims)
                self._shed += len(victims)
                if ladder:
                    self._ladder_shed += len(victims)
                if storm is None:
                    storm = ServiceOverloadedError(
                        f"{service_class.value} frame dropped ({reason})",
                        tenant=None,
                    )
                for victim in victims:
                    storm.shed_count += 1
                    victim.image = None
                    try:
                        victim.future.set_exception(storm)
                    except futures_module.InvalidStateError:
                        pass  # the caller cancelled it first
                dropped += len(victims)
                if survivors:
                    state.queues[shape] = survivors
                else:
                    del state.queues[shape]
        if dropped:
            self._space.notify_all()
        return dropped

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _oldest_locked(self, shape: tuple) -> float:
        """Earliest enqueue time among queued frames of one shape."""
        return min(
            state.queues[shape][0].enqueued_at
            for state in self._tenants.values()
            if state.queues.get(shape)
        )

    def _select_locked(self, shape: tuple, seats: int) -> List[_Pending]:
        """Pop one batch's frames for ``shape``, seats granted by DRR.

        DRR decides how many seats each tenant gets; EDF decides which
        of the tenant's queued frames take them (earliest deadline
        first, class rank then arrival breaking ties).  The frames left
        behind keep their arrival order — ``_oldest_locked`` and the
        shed scan rely on queues staying arrival-ordered.
        """
        queued = {
            name: len(state.queues[shape])
            for name, state in self._tenants.items()
            if state.queues.get(shape)
        }
        weights = {name: self._tenants[name].weight for name in queued}
        grants = self._drr.allocate(queued, weights, seats)
        items: List[_Pending] = []
        for name, take in grants.items():
            queue = self._tenants[name].queues[shape]
            if take >= len(queue):
                items.extend(queue)
                queue.clear()
            else:
                chosen = set(
                    sorted(
                        range(len(queue)),
                        key=lambda index: _edf_key(queue[index]),
                    )[:take]
                )
                items.extend(
                    queue[index] for index in sorted(chosen)
                )
                self._tenants[name].queues[shape] = deque(
                    queue[index]
                    for index in range(len(queue))
                    if index not in chosen
                )
                queue = self._tenants[name].queues[shape]
            if not queue:
                del self._tenants[name].queues[shape]
        self._shape_totals[shape] -= len(items)
        if self._shape_totals[shape] <= 0:
            del self._shape_totals[shape]
        # Slot order is arrival order: fairness decides *membership* of
        # the batch, not a reshuffle of frames that all complete together.
        items.sort(key=lambda pending: pending.enqueued_at)
        return items

    def _ready_flushes_locked(self, flush_all: bool) -> List[_Flush]:
        """Assemble every batch that may dispatch right now.

        A shape is ready when it has ``batch_size`` frames queued
        (across tenants), when its oldest frame passed the deadline, or
        when draining at close.  Deadline-expired shapes outrank merely
        full ones (oldest frame first): a tenant flooding one frame
        shape keeps that shape permanently full, and if fullness won,
        other shapes' frames would blow straight through
        ``max_delay_ms`` — cross-shape latency is part of the fairness
        contract, batching efficiency is not.  The dispatch gate caps
        how many batches may be in the service at once — ready frames
        beyond it stay in tenant queues where the DRR scheduler keeps
        them fair.
        """
        now = self._clock.now()
        self._expire_due_locked(now)
        batch_size = self.service.batch_size
        flushes: List[_Flush] = []
        while self._dispatched < self.max_inflight_batches:
            full_shape: Optional[tuple] = None
            expired_shape: Optional[tuple] = None
            expired_at: Optional[float] = None
            for shape, total in self._shape_totals.items():
                oldest = self._oldest_locked(shape)
                if flush_all or now - oldest >= self.max_delay:
                    if expired_at is None or oldest < expired_at:
                        expired_at = oldest
                        expired_shape = shape
                elif full_shape is None and total >= batch_size:
                    full_shape = shape
            chosen = expired_shape if expired_shape is not None else full_shape
            if chosen is None:
                break
            seats = min(batch_size, self._shape_totals[chosen])
            flushes.append(
                _Flush(items=self._select_locked(chosen, seats), shape=chosen)
            )
            self._dispatched += 1
        if flushes:
            # A dispatch boundary ends every current shed storm: the
            # next storms get fresh coalesced error contexts.
            self._storms.clear()
        return flushes

    def _nearest_deadline_locked(self) -> Optional[float]:
        """Next instant the scheduler must wake: coalescing deadlines
        plus any queued frame's latency budget (so expiry sheds happen
        on time, not at the next unrelated arrival)."""
        deadlines = [
            self._oldest_locked(shape) + self.max_delay
            for shape in self._shape_totals
        ]
        for state in self._tenants.values():
            for queue in state.queues.values():
                for pending in queue:
                    if pending.deadline is not None:
                        deadlines.append(pending.deadline)
        return min(deadlines) if deadlines else None

    def _coalesce_loop(self) -> None:
        """Background thread: waits for ready batches or expired deadlines."""
        while True:
            with self._lock:
                while True:
                    batches = self._ready_flushes_locked(
                        flush_all=self._closed
                    )
                    if batches:
                        break
                    if self._closed and not self._shape_totals:
                        return
                    if self._dispatched >= self.max_inflight_batches:
                        # Gate saturated: no deadline can make a batch
                        # dispatchable, so an expired-deadline timeout
                        # would just busy-spin this loop at 100% CPU.
                        # Sleep untimed — _complete frees a gate slot
                        # and notifies.
                        timeout = None
                    else:
                        deadline = self._nearest_deadline_locked()
                        timeout = (
                            None
                            if deadline is None
                            else max(0.0, deadline - self._clock.now())
                        )
                    self._arrived.wait(timeout=timeout)
            for batch in batches:
                self._dispatch(batch)

    def _dispatch(self, flush: _Flush) -> None:
        """Hand one coalesced batch to the service; fan results back out.

        On the zero-copy path this is where each frame gets its one
        producer write — straight into a pooled arena input stack, slot
        order equal to item order — and the service takes ownership of
        the lease.  If admission itself fails, the lease is released
        here so an overloaded shutdown cannot strand a slab.
        """
        names = [pending.name for pending in flush.items]
        # The batch inherits the tightest remaining frame budget as its
        # execution timeout: the pool's watchdog then bounds a hung
        # worker by exactly the latency promise the frames carry.
        deadlines = [
            pending.deadline
            for pending in flush.items
            if pending.deadline is not None
        ]
        timeout = None
        if deadlines:
            # Floor at 1 ms: a frame that expired between scheduling and
            # dispatch still gets one real attempt — shedding it here
            # would duplicate _expire_due_locked's job with worse odds.
            timeout = max(1e-3, min(deadlines) - self._clock.now())
        try:
            if self.zero_copy:
                lease = self.service.lease_input(flush.shape)
                try:
                    for slot, pending in enumerate(flush.items):
                        lease.array[slot] = pending.image.pixels
                        pending.image = None  # the frame now lives in SHM
                    future = self.service.submit_stack(
                        lease,
                        flush.count,
                        names,
                        lease_results=self.lease_results,
                        timeout=timeout,
                    )
                except BaseException:
                    lease.release()
                    raise
            else:
                future = self.service.submit_batch(
                    [pending.image for pending in flush.items]
                )
        except BaseException as exc:  # pool shut down, etc.
            self._complete(flush, None, exc)
            return
        future.add_done_callback(
            lambda f: self._complete(flush, f.result, f.exception())
        )

    def _complete(self, flush: _Flush, result_fn, exc) -> None:
        outputs = None if exc is not None else result_fn()
        done_at = self._clock.now()
        # Count the batch first so a caller who observes a resolved
        # future also observes its tenant's served/latency counters ...
        with self._lock:
            for pending in flush.items:
                state = self._tenants[pending.tenant]
                if exc is None:
                    state.served += 1
                latency_ms = (done_at - pending.enqueued_at) * 1e3
                state.latencies_ms.append(latency_ms)
                self._latencies_ms.append(latency_ms)
        # ... then resolve the futures *before* releasing the queue
        # slots: close() returns once nothing is in flight, and its
        # contract is that every future handed out earlier has resolved
        # by then.  A future the caller cancelled while it waited raises
        # InvalidStateError on set_* — its result is simply dropped, but
        # it must not prevent the rest of the batch from resolving.
        for index, pending in enumerate(flush.items):
            try:
                if exc is not None:
                    pending.future.set_exception(exc)
                else:
                    pending.future.set_result(outputs[index])
            except futures_module.InvalidStateError:
                if exc is None and self.lease_results:
                    # Nobody will ever see this frame's handle: release
                    # its reference so the slab can recycle.
                    outputs[index].release()
        with self._lock:
            self._dispatched -= 1
            for pending in flush.items:
                self._tenants[pending.tenant].in_flight -= 1
            self._in_flight -= len(flush.items)
            self._space.notify_all()
            # A freed gate slot may unblock the scheduler.
            self._arrived.notify_all()
            rung_changed = self._observe_overload_locked()
        if rung_changed:
            # Apply the freshest rung outside the lock: concurrent
            # completions may race here, but each applies the rung the
            # controller holds *now*, so the service converges on it.
            self.service.apply_overload_rung(self._overload.rung)

    def _observe_overload_locked(self) -> bool:
        """Feed the ladder one observation; True if the rung changed.

        Runs at batch-completion cadence (the same place the shard
        autoscaler observes).  Entering ``shed_best_effort`` from below
        drops already-queued best-effort frames immediately — admission
        suspension alone would let them squat on seats for the rest of
        the storm.
        """
        if self._overload is None:
            return False
        ordered = sorted(self._latencies_ms)
        p95_ms = _percentile(ordered, 0.95) if ordered else None
        rung = self._overload.observe(p95_ms, self._in_flight)
        if rung == self._ladder_rung:
            return False
        previous = self._ladder_rung
        self._ladder_rung = rung
        if (
            rung_index(rung) >= _SHED_INDEX
            and rung_index(previous) < _SHED_INDEX
        ):
            self._shed_class_locked(
                ServiceClass.BEST_EFFORT,
                reason=f"overload ladder rung={rung}",
                ladder=True,
            )
        return True

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Service throughput counters merged with this ingestor's view.

        ``images``/``pixels``/``seconds``/``batches`` come from the
        backing service; ``queue_depth`` counts this ingestor's in-flight
        images, latency percentiles are end-to-end (submit to result),
        and ``tenants`` carries the per-tenant breakdown the
        ``fairness_index`` is computed over.
        """
        base = self.service.stats
        with self._lock:
            ordered = sorted(self._latencies_ms)
            tenants = tuple(
                TenantStats(
                    tenant=name,
                    weight=state.weight,
                    submitted=state.submitted,
                    served=state.served,
                    rejected=state.rejected,
                    shed=state.shed,
                    queue_depth=state.in_flight,
                    queue_peak=state.queue_peak,
                    latency_p50_ms=_percentile(
                        sorted(state.latencies_ms), 0.50
                    ),
                    latency_p95_ms=_percentile(
                        sorted(state.latencies_ms), 0.95
                    ),
                )
                for name, state in sorted(self._tenants.items())
            )
            return replace(
                base,
                queue_depth=self._in_flight,
                queue_peak=self._queue_peak,
                rejected=self._rejected,
                shed=self._shed,
                latency_p50_ms=_percentile(ordered, 0.50),
                latency_p95_ms=_percentile(ordered, 0.95),
                latency_p99_ms=_percentile(ordered, 0.99),
                reliability=replace(
                    base.reliability,
                    deadline_shed=self._deadline_shed,
                    ladder_rung=self._ladder_rung,
                    ladder_transitions=(
                        self._overload.transitions
                        if self._overload is not None
                        else 0
                    ),
                    ladder_shed=self._ladder_shed,
                ),
                tenants=tenants,
            )

    def drain(self) -> None:
        """Zero-loss shutdown: stop admitting, serve the queue, stop.

        The graceful sibling of :meth:`close`: new submissions are
        refused immediately (``ToneMapError``), queued *best-effort*
        frames fail fast with one deterministic
        :class:`~repro.errors.ServiceOverloadedError` (they are the
        load the operator chose to drop to finish faster), and every
        queued interactive/standard frame is flushed to a real result
        before the scheduler thread stops.  The backing service stays
        open — the caller owns it.  Idempotent, and ``close`` after
        ``drain`` is a no-op.
        """
        with self._lock:
            if self._closed:
                return
            self._draining = True
            self._shed_class_locked(
                ServiceClass.BEST_EFFORT, reason="drain", ladder=False
            )
            self._space.notify_all()  # wake blocked submitters to fail
        self.close()

    def close(self) -> None:
        """Flush queued work, wait for in-flight futures, stop the scheduler.

        Every future handed out before ``close`` resolves (blocked
        submitters instead get :class:`~repro.errors.ToneMapError`).  The
        backing service stays open — the caller owns it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._arrived.notify_all()
            self._space.notify_all()
        self._coalescer.join()
        with self._lock:
            while self._in_flight > 0:
                self._space.wait()

    def __enter__(self) -> "ToneMapIngestor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
