"""Async ingestion front-end: continuous arrivals, deadline coalescing.

The paper frames tone mapping as a continuous imaging workload (video
frames arriving one by one), but batching only pays when same-shape frames
are stacked.  :class:`ToneMapIngestor` bridges the two: submissions are
admitted one at a time (from threads via :meth:`submit` or from an
``asyncio`` event loop via :meth:`submit_async`), parked in per-shape
buckets, and flushed to the backing
:class:`~repro.runtime.service.ToneMapService` as a coalesced batch when
either the bucket reaches ``batch_size`` images or its oldest occupant has
waited ``max_delay_ms`` — the classic batching-under-a-latency-deadline
trade.

Admission control is a bounded queue over everything in flight
(admitted but unfinished work), with three
:class:`backpressure policies <BackpressurePolicy>`:

``block``
    The submitter waits for a slot (lossless; callers feel the slowdown).
``reject``
    The submitter gets :class:`~repro.errors.ServiceOverloadedError`
    immediately (shed load at the edge, keep latency bounded).
``shed-oldest``
    The oldest *not yet dispatched* submission is dropped — its future
    fails with :class:`~repro.errors.ServiceOverloadedError` — and the
    newcomer is admitted (freshest-data-wins, the right policy for live
    video).  If every admitted image is already executing, the submitter
    blocks until a slot frees.

**Zero-copy ingestion.**  Against a sharded service the ingestor does not
park accepted images at all: ``submit()`` writes the frame's pixels
straight into the batch's pooled shared-memory input stack (an arena
lease obtained from the service, one slot per admission), so when a
bucket flushes, the "batch" handed to the service is a pointer — segment
name plus frame count — not a pile of arrays waiting to be stacked and
memcpy'd.  This is the software analogue of the paper's DMA discipline:
a frame enters the data plane once, at admission, and is never re-staged
by the host afterwards.  Under ``shed-oldest`` a shed admission frees its
slot by moving the newest frame into it (one frame copy on the rare
overload path keeps the stack contiguous).  Results still resolve
through ordinary futures: the service materializes each batch's outputs
once (the lease-protocol safety fallback — a future's consumer cannot be
trusted to release a slab promptly) and the per-image views are adopted
without further copies.  In-process services keep the PR 2 park-&-stack
behavior (``zero_copy=False``).

Queue depth, its high-water mark, reject/shed counts, and end-to-end
latency percentiles are reported on
:class:`~repro.runtime.service.ServiceStats` via :attr:`ToneMapIngestor.stats`.
The full data path (ingest → coalesce → shard → batch) is diagrammed in
``docs/architecture.md``; sustained-throughput numbers and the
copies-per-frame counters are tracked by ``benchmarks/bench_runtime.py``
(see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures as futures_module
import enum
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceOverloadedError, ToneMapError
from repro.image.hdr import HDRImage
from repro.runtime.arena import ArenaLease
from repro.runtime.service import (
    LATENCY_WINDOW,
    ServiceStats,
    ToneMapService,
    _percentile,
)


class BackpressurePolicy(enum.Enum):
    """What :meth:`ToneMapIngestor.submit` does when the queue is full."""

    BLOCK = "block"
    REJECT = "reject"
    SHED_OLDEST = "shed-oldest"


@dataclass
class _Pending:
    """One admitted image waiting in a shape bucket.

    On the zero-copy path the pixels already live in the batch's arena
    slot (``slot``) and only the name is retained; on the copy path the
    image itself is parked until the bucket flushes.
    """

    name: str
    future: Future
    enqueued_at: float
    image: Optional[HDRImage] = None
    slot: int = -1


@dataclass
class _Bucket:
    """Same-shape arrivals awaiting coalescing; deadline set by the oldest.

    Zero-copy buckets additionally hold the arena input stack their
    frames were written into (``lease``); slots ``0..len(items)-1`` are
    filled, in arrival order except after a shed compaction.
    """

    items: List[_Pending] = field(default_factory=list)
    lease: Optional[ArenaLease] = None
    capacity: int = 0

    @property
    def deadline_base(self) -> float:
        return self.items[0].enqueued_at


@dataclass
class _Flush:
    """One coalesced batch on its way to the service."""

    items: List[_Pending]
    lease: Optional[ArenaLease] = None
    count: int = 0


class ToneMapIngestor:
    """Streams single-image arrivals into coalesced service batches.

    Parameters
    ----------
    service:
        The backing :class:`~repro.runtime.service.ToneMapService`.  The
        ingestor borrows it (several ingestors may share one) and does
        *not* close it; ``service.batch_size`` is the coalescing target.
    max_delay_ms:
        Longest an admitted image may wait for same-shape company before
        its partial batch is flushed anyway.  The knob trades latency
        (small values) against batching efficiency (large values).
    queue_limit:
        Maximum in-flight images (admitted but unfinished).  Admissions
        beyond it trigger ``policy``.
    policy:
        A :class:`BackpressurePolicy` (or its string value).
    zero_copy:
        Write admitted frames straight into the service's shared-memory
        arena instead of parking them (see the module docstring).
        Defaults to on exactly when the service is sharded — the arena
        belongs to the shard pool; requesting it against an in-process
        service raises.

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        service: ToneMapService,
        max_delay_ms: float = 5.0,
        queue_limit: int = 64,
        policy: Union[BackpressurePolicy, str] = BackpressurePolicy.BLOCK,
        zero_copy: Optional[bool] = None,
    ):
        if max_delay_ms < 0:
            raise ToneMapError(
                f"max_delay_ms must be >= 0, got {max_delay_ms}"
            )
        if queue_limit < 1:
            raise ToneMapError(f"queue_limit must be >= 1, got {queue_limit}")
        if zero_copy is None:
            zero_copy = service.pool is not None
        elif zero_copy and service.pool is None:
            raise ToneMapError(
                "zero-copy ingest requires a sharded service "
                "(construct ToneMapService with shards=N)"
            )
        self.service = service
        self.max_delay = max_delay_ms / 1e3
        self.queue_limit = queue_limit
        self.policy = BackpressurePolicy(policy)
        self.zero_copy = bool(zero_copy)

        self._ready_full: deque = deque()
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._buckets: Dict[tuple, _Bucket] = {}
        self._in_flight = 0
        self._closed = False
        self._queue_peak = 0
        self._rejected = 0
        self._shed = 0
        self._latencies_ms: deque = deque(maxlen=LATENCY_WINDOW)
        self._coalescer = threading.Thread(
            target=self._coalesce_loop, name="tonemap-ingest", daemon=True
        )
        self._coalescer.start()

    # ------------------------------------------------------------------
    # Submission APIs
    # ------------------------------------------------------------------
    def submit(self, image: HDRImage) -> "Future[HDRImage]":
        """Admit one image (blocking API); resolves to its output.

        Applies the backpressure policy when ``queue_limit`` images are in
        flight, then either writes the frame into its batch's arena slot
        (zero-copy path — the one producer write the frame ever gets) or
        parks the image in its shape bucket for coalescing.
        """
        if not isinstance(image, HDRImage):
            raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
        with self._lock:
            if self._closed:
                raise ToneMapError("ingestor is closed")
            while self._in_flight >= self.queue_limit:
                if self.policy is BackpressurePolicy.REJECT:
                    self._rejected += 1
                    raise ServiceOverloadedError(
                        f"queue limit {self.queue_limit} reached "
                        f"({self._in_flight} images in flight)"
                    )
                if (
                    self.policy is BackpressurePolicy.SHED_OLDEST
                    and self._shed_oldest_locked()
                ):
                    break
                # BLOCK, or SHED_OLDEST with nothing left to shed (every
                # admitted image is already executing): wait for a slot.
                self._space.wait()
                if self._closed:
                    raise ToneMapError("ingestor is closed")
            pending = _Pending(image.name, Future(), time.perf_counter())
            shape = image.pixels.shape
            bucket = self._buckets.setdefault(shape, _Bucket())
            if self.zero_copy:
                if bucket.lease is None:
                    bucket.lease = self.service.lease_input(shape)
                    bucket.capacity = bucket.lease.array.shape[0]
                pending.slot = len(bucket.items)
                # The producer write: the frame enters shared memory here
                # and is never re-staged (stacked/memcpy'd) afterwards.
                # Done under the ingestor lock deliberately: CPython's
                # GIL serializes concurrent producers' memcpys anyway, so
                # moving the write outside would buy no parallelism while
                # costing a slot-reservation protocol against shed
                # compaction and deadline flushes of half-written slots.
                bucket.lease.array[pending.slot] = image.pixels
                bucket.items.append(pending)
                if len(bucket.items) >= bucket.capacity:
                    self._ready_full.append(self._close_bucket_locked(shape))
            else:
                pending.image = image
                bucket.items.append(pending)
            self._in_flight += 1
            self._queue_peak = max(self._queue_peak, self._in_flight)
            self._arrived.notify()
        return pending.future

    def _close_bucket_locked(self, shape: tuple) -> _Flush:
        """Seal a zero-copy bucket into a flush; a fresh bucket takes over."""
        bucket = self._buckets.pop(shape)
        return _Flush(
            items=bucket.items, lease=bucket.lease, count=len(bucket.items)
        )

    async def submit_async(self, image: HDRImage) -> HDRImage:
        """Admit one image from an event loop; returns the output.

        Admission (which may block under the ``block`` policy) runs on the
        loop's default executor so the event loop itself never stalls; the
        result is awaited without blocking either.
        """
        loop = asyncio.get_running_loop()
        future = await loop.run_in_executor(None, self.submit, image)
        return await asyncio.wrap_future(future)

    def map_many(self, images: Sequence[HDRImage]) -> list[HDRImage]:
        """Submit many images one by one and wait for all outputs in order.

        Convenience for scripted workloads; under the ``reject`` /
        ``shed-oldest`` policies a dropped submission surfaces here as
        :class:`~repro.errors.ServiceOverloadedError`.
        """
        futures = [self.submit(image) for image in images]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    def _shed_oldest_locked(self) -> bool:
        """Drop the oldest still-coalescing submission; True if one was shed."""
        oldest_shape = None
        oldest_at = None
        for shape, bucket in self._buckets.items():
            if bucket.items and (
                oldest_at is None or bucket.deadline_base < oldest_at
            ):
                oldest_shape = shape
                oldest_at = bucket.deadline_base
        if oldest_shape is None:
            return False
        bucket = self._buckets[oldest_shape]
        victim = bucket.items.pop(0)
        if bucket.lease is not None and bucket.items:
            # Keep the arena stack contiguous: slots must stay {0..n-1},
            # so the top slot's frame moves into the freed slot (one
            # frame copy, overload-only).  No-op when the victim held the
            # top slot itself.
            top = len(bucket.items)
            if victim.slot != top:
                tail = next(p for p in bucket.items if p.slot == top)
                bucket.lease.array[victim.slot] = bucket.lease.array[top]
                tail.slot = victim.slot
        if not bucket.items:
            if bucket.lease is not None:
                bucket.lease.release()
            del self._buckets[oldest_shape]
        self._in_flight -= 1
        self._shed += 1
        victim.future.set_exception(
            ServiceOverloadedError(
                "shed by a newer arrival (policy=shed-oldest, "
                f"queue_limit={self.queue_limit})"
            )
        )
        return True

    def _ready_batches_locked(self, flush_all: bool) -> List[_Flush]:
        """Pop every batch that is full or past its deadline.

        Full zero-copy batches were already sealed at submit time (the
        bucket rotates the moment its arena stack fills); here they are
        drained alongside deadline-expired partials.
        """
        now = time.perf_counter()
        batch_size = self.service.batch_size
        ready: List[_Flush] = []
        while self._ready_full:
            ready.append(self._ready_full.popleft())
        for shape in list(self._buckets):
            bucket = self._buckets[shape]
            if bucket.lease is None:
                while len(bucket.items) >= batch_size:
                    ready.append(
                        _Flush(
                            items=bucket.items[:batch_size],
                            count=batch_size,
                        )
                    )
                    bucket.items = bucket.items[batch_size:]
            expired = (
                bucket.items
                and now - bucket.deadline_base >= self.max_delay
            )
            if bucket.items and (flush_all or expired):
                ready.append(
                    _Flush(
                        items=bucket.items,
                        lease=bucket.lease,
                        count=len(bucket.items),
                    )
                )
                bucket.items = []
                bucket.lease = None
            if not bucket.items:
                if bucket.lease is not None:  # pragma: no cover - defensive
                    bucket.lease.release()
                del self._buckets[shape]
        return ready

    def _nearest_deadline_locked(self) -> Optional[float]:
        deadlines = [
            bucket.deadline_base + self.max_delay
            for bucket in self._buckets.values()
            if bucket.items
        ]
        return min(deadlines) if deadlines else None

    def _coalesce_loop(self) -> None:
        """Background thread: waits for full buckets or expired deadlines."""
        while True:
            with self._lock:
                while not self._closed:
                    batches = self._ready_batches_locked(flush_all=False)
                    if batches:
                        break
                    deadline = self._nearest_deadline_locked()
                    timeout = (
                        None
                        if deadline is None
                        else max(0.0, deadline - time.perf_counter())
                    )
                    self._arrived.wait(timeout=timeout)
                else:
                    batches = self._ready_batches_locked(flush_all=True)
            for batch in batches:
                self._dispatch(batch)
            with self._lock:
                if (
                    self._closed
                    and not self._buckets
                    and not self._ready_full
                ):
                    return

    def _dispatch(self, flush: _Flush) -> None:
        """Hand one coalesced batch to the service; fan results back out.

        Zero-copy flushes are a pointer hand-off: the service takes
        ownership of the arena lease (and releases it), the ingestor only
        forwards slot names.  If submission itself fails, the lease is
        released here so an overloaded shutdown cannot strand a slab.
        """
        try:
            if flush.lease is not None:
                names: List[Optional[str]] = [None] * flush.count
                for pending in flush.items:
                    names[pending.slot] = pending.name
                future = self.service.submit_stack(
                    flush.lease, flush.count, names
                )
            else:
                future = self.service.submit_batch(
                    [p.image for p in flush.items]
                )
        except BaseException as exc:  # pool shut down, etc.
            if flush.lease is not None:
                flush.lease.release()
            self._complete(flush, None, exc)
            return
        future.add_done_callback(
            lambda f: self._complete(flush, f.result, f.exception())
        )

    def _complete(self, flush: _Flush, result_fn, exc) -> None:
        outputs = None if exc is not None else result_fn()
        done_at = time.perf_counter()
        # Resolve the futures *before* releasing the queue slots: close()
        # returns once nothing is in flight, and its contract is that every
        # future handed out earlier has resolved by then.  A future the
        # caller cancelled while it waited raises InvalidStateError on
        # set_* — its result is simply dropped, but it must not prevent the
        # rest of the batch from resolving.
        for index, pending in enumerate(flush.items):
            try:
                if exc is not None:
                    pending.future.set_exception(exc)
                else:
                    # Zero-copy outputs are ordered by arena slot; parked
                    # batches by position.
                    position = pending.slot if flush.lease is not None else index
                    pending.future.set_result(outputs[position])
            except futures_module.InvalidStateError:
                pass
        with self._lock:
            for pending in flush.items:
                self._latencies_ms.append(
                    (done_at - pending.enqueued_at) * 1e3
                )
            self._in_flight -= len(flush.items)
            self._space.notify_all()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Service throughput counters merged with this ingestor's queue view.

        ``images``/``pixels``/``seconds``/``batches`` come from the backing
        service; ``queue_depth`` counts this ingestor's in-flight images
        and the latency percentiles are end-to-end (submit to result).
        """
        base = self.service.stats
        with self._lock:
            ordered = sorted(self._latencies_ms)
            return replace(
                base,
                queue_depth=self._in_flight,
                queue_peak=self._queue_peak,
                rejected=self._rejected,
                shed=self._shed,
                latency_p50_ms=_percentile(ordered, 0.50),
                latency_p95_ms=_percentile(ordered, 0.95),
                latency_p99_ms=_percentile(ordered, 0.99),
            )

    def close(self) -> None:
        """Flush queued work, wait for in-flight futures, stop the coalescer.

        Every future handed out before ``close`` resolves (blocked
        submitters instead get :class:`~repro.errors.ToneMapError`).  The
        backing service stays open — the caller owns it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._arrived.notify_all()
            self._space.notify_all()
        self._coalescer.join()
        with self._lock:
            while self._in_flight > 0:
                self._space.wait()

    def __enter__(self) -> "ToneMapIngestor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
