"""Batched / concurrent tone-mapping runtime.

The paper accelerates one image at a time; a production deployment serves
many.  This package adds the software side of that story:

* :class:`~repro.runtime.batch.BatchToneMapper` — stacks N same-shape
  images into one ``(N, H, W)`` luminance volume and runs all four
  pipeline stages as whole-batch array operations, amortizing every pass
  (and the blur FFTs) across the batch.
* :class:`~repro.runtime.service.ToneMapService` — a thread-pool front
  end that groups incoming images by shape, feeds them through batch
  mappers, caches per-kernel coefficients/formats, and reports aggregate
  throughput.

Wired into the CLI as ``repro-experiments batch`` and demonstrated by
``examples/batch_throughput.py``.
"""

from repro.runtime.batch import BatchToneMapper, BatchToneMapResult
from repro.runtime.service import ServiceStats, ToneMapService

__all__ = [
    "BatchToneMapper",
    "BatchToneMapResult",
    "ServiceStats",
    "ToneMapService",
]
