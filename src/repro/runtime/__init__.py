"""Batched / concurrent / sharded tone-mapping runtime.

The paper accelerates one image at a time; a production deployment serves
continuous streams.  This package adds the software side of that story as
four composable stages (diagrammed in ``docs/architecture.md``):

* :class:`~repro.runtime.batch.BatchToneMapper` — stacks N same-shape
  images into one ``(N, H, W)`` volume and runs all four pipeline stages
  as whole-batch array operations, amortizing every pass (the blur FFTs,
  and the batched fixed-point folded passes) across the batch.
* :mod:`repro.runtime.fused` — the fused band engine
  (:class:`~repro.runtime.fused.FusedToneMapPlan` +
  :class:`~repro.runtime.fused.FusedExecutor`): the software analogue of
  the paper's ``DATAFLOW`` pragma.  All four stages run in one pass over
  cache-sized row bands (vertical blur halos come from a reusable
  line-buffer ring), partitioned across a persistent thread pool, with
  zero full-frame stage temporaries
  (:class:`~repro.runtime.fused.FusedStats` proves it).  Opt in with
  ``fused=True`` on the mapper, pool, or service.
* :class:`~repro.runtime.arena.ShmArena` — the persistent shared-memory
  data plane: pooled, size-classed input stacks plus a ring of output
  slabs, reused across batches and handed out as reference-counted
  zero-copy :class:`~repro.runtime.arena.ArenaLease` views (with a
  ``materialize()`` copy fallback for consumers that outlive the ring).
* :class:`~repro.runtime.shard.ShardPool` — partitions a batch across
  worker processes over the arena's stacks, freeing the fixed-point
  model's Python-level glue from the GIL; workers cache their segment
  attachments and per-worker kernel / coefficient-ROM caches are warmed
  at pool start-up.  With ``autoscale=True`` a
  :class:`~repro.runtime.shard.ShardAutoscaler` widens/narrows the
  active worker set from queue-depth and p95-latency signals under
  :class:`~repro.runtime.shard.AutoscalePolicy` hysteresis.
* :class:`~repro.runtime.service.ToneMapService` — a thread-pool front
  end that groups incoming images by shape, feeds them through batch
  mappers (optionally sharded), and reports aggregate throughput as
  :class:`~repro.runtime.service.ServiceStats`.
* :class:`~repro.runtime.ingest.ToneMapIngestor` — the streaming edge:
  continuous single-image arrivals (blocking or ``asyncio``) carrying a
  ``tenant`` identity, parked in per-tenant bounded queues
  (:class:`~repro.runtime.ingest.TenantConfig`: weight, queue limit,
  ``block`` / ``reject`` / ``shed-oldest``
  :class:`~repro.runtime.ingest.BackpressurePolicy`), coalesced into
  same-shape batches across tenants by a
  :class:`~repro.runtime.ingest.DeficitRoundRobin` scheduler under a
  latency deadline and a dispatch gate — no tenant can monopolize the
  pool, reported per tenant via
  :class:`~repro.runtime.service.TenantStats` and Jain's
  ``fairness_index``.  With ``lease_results=True`` futures resolve to
  zero-copy :class:`~repro.runtime.arena.ResultHandle` views instead of
  materialized copies.

On top of the data plane sits the **reliability layer** (PR 8): frames
carry end-to-end latency budgets (``submit(..., deadline_ms=...)`` —
expired frames shed with
:class:`~repro.errors.DeadlineExceededError`, the remaining budget
rides into the pool as the batch timeout), a shard watchdog SIGKILLs
hung workers and hedge-replays their batches
(:class:`~repro.errors.ShardTimeoutError` past the budget), and a
:class:`~repro.runtime.reliability.CircuitBreaker` browns persistent
shard failure out to the in-process mapper (bit-identical outputs,
honestly slower).  All of it is observable as
:class:`~repro.runtime.reliability.ReliabilityStats` on
``ServiceStats`` and chaos-testable via seedable
:class:`~repro.runtime.faults.FaultPlan` injection
(``REPRO_FAULT_PLAN`` / CLI ``--fault-plan``), with time injectable
everywhere through :mod:`repro.runtime.clock`.

The **multi-host tier** (PR 9) scales the same stack across machines:
:class:`~repro.runtime.hostpool.HostServer` serves a host's
``ShardPool`` over the length-prefixed zero-copy wire protocol in
:mod:`repro.runtime.net` (scatter-gather ``sendmsg`` / ``recv_into``
straight between arena slots and the socket, every staging byte
counted in :class:`~repro.runtime.net.NetStats`), and
:class:`~repro.runtime.hostpool.HostPool` routes batches across N such
hosts with the reliability machinery generalized one level up — host
respawn, replay-on-another-host, hedged timeouts, and breaker brownout
when every host is gone
(:class:`~repro.errors.HostUnavailableError`).  ``ToneMapService(
hosts=2)`` spawns a local fleet; ``repro-experiments serve-host``
runs one serving host; chaos plans gain ``partition`` / ``slow-link``
/ ``host-loss`` kinds.

**Overload-graceful serving** (PR 10) keeps the stack honest when
demand exceeds capacity: ``submit(..., priority=...)`` classes frames
as :class:`~repro.runtime.ingest.ServiceClass` (interactive /
standard / best_effort) with earliest-deadline-first ordering inside
each tenant queue and class-aware shedding (best-effort goes first,
interactive never before its deadline); an
:class:`~repro.runtime.overload.OverloadController` watches p95 and
queue depth against a declared
:class:`~repro.runtime.overload.ServiceLevelObjective` and walks the
four-rung degradation ladder (full → degraded plan → shed best-effort
→ brownout, hysteresis both ways), surfaced in ``ReliabilityStats``
and mirrored by the advisory host-level autoscaler on ``HostPool``;
and ``drain()`` on every layer plus
:meth:`~repro.runtime.hostpool.HostPool.rolling_restart` give a
zero-loss graceful shutdown and host-at-a-time restart path
(chaos-gated by ``bench_runtime.py::test_rolling_restart_small``).

Wired into the CLI as ``repro-experiments batch`` (``--shards``,
``--max-delay-ms``, ``--queue-limit``, ``--policy``,
``--tenant-weights``, ``--per-tenant-queue-limit``,
``--lease-results``, ``--deadline-ms``, ``--shard-timeout-ms``,
``--breaker``, ``--fault-plan``) and demonstrated by
``examples/batch_throughput.py``.  Throughput and the fairness /
zero-copy / chaos-recovery gates are tracked over time by
``benchmarks/bench_runtime.py`` — see ``docs/benchmarks.md`` for how to
run and read it.
"""

from repro.errors import (
    DeadlineExceededError,
    HostUnavailableError,
    ServiceOverloadedError,
    ShardCrashError,
    ShardTimeoutError,
    WireProtocolError,
)
from repro.runtime.arena import ArenaLease, ArenaStats, ResultHandle, ShmArena
from repro.runtime.batch import BatchToneMapper, BatchToneMapResult
from repro.runtime.clock import Clock, FakeClock, MonotonicClock
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.fused import (
    FusedExecutor,
    FusedStats,
    FusedToneMapPlan,
)
from repro.runtime.hostpool import HostPool, HostServer
from repro.runtime.net import NetStats
from repro.runtime.ingest import (
    BackpressurePolicy,
    DeficitRoundRobin,
    ServiceClass,
    TenantConfig,
    ToneMapIngestor,
)
from repro.runtime.overload import (
    LADDER,
    OverloadController,
    OverloadPolicy,
    ServiceLevelObjective,
)
from repro.runtime.reliability import (
    BreakerPolicy,
    CircuitBreaker,
    ReliabilityStats,
)
from repro.runtime.service import ServiceStats, TenantStats, ToneMapService
from repro.runtime.shard import (
    AutoscalePolicy,
    DataPlaneStats,
    ShardAutoscaler,
    ShardPool,
)

__all__ = [
    "ArenaLease",
    "ArenaStats",
    "AutoscalePolicy",
    "BackpressurePolicy",
    "BatchToneMapper",
    "BatchToneMapResult",
    "BreakerPolicy",
    "CircuitBreaker",
    "Clock",
    "DataPlaneStats",
    "DeadlineExceededError",
    "DeficitRoundRobin",
    "FakeClock",
    "FaultInjector",
    "FaultPlan",
    "FusedExecutor",
    "FusedStats",
    "FusedToneMapPlan",
    "HostPool",
    "HostServer",
    "HostUnavailableError",
    "LADDER",
    "MonotonicClock",
    "NetStats",
    "OverloadController",
    "OverloadPolicy",
    "ReliabilityStats",
    "ResultHandle",
    "ServiceClass",
    "ServiceLevelObjective",
    "ServiceOverloadedError",
    "ServiceStats",
    "ShardAutoscaler",
    "ShardCrashError",
    "ShardPool",
    "ShardTimeoutError",
    "ShmArena",
    "TenantConfig",
    "TenantStats",
    "ToneMapIngestor",
    "ToneMapService",
    "WireProtocolError",
]
