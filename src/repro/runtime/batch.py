"""Whole-batch execution of the four-stage tone-mapping pipeline.

:class:`BatchToneMapper` is the batched counterpart of
:class:`repro.tonemap.pipeline.ToneMapper`: N same-shape images are
stacked into one array and every stage — normalization, Gaussian blur of
the luminance volume, non-linear masking, brightness/contrast — runs as a
single vectorized operation over the whole stack.  The arithmetic mirrors
the per-image pipeline step for step (including the float32 storage
round-trip at the normalization boundary), so batched outputs match
per-image outputs to float32 representation tolerance (property-tested in
``tests/test_runtime.py``).

A custom ``blur_fn`` may expose a ``blur_batch`` attribute taking the
whole ``(N, H, W)`` luminance volume (the closures built by
:func:`repro.tonemap.fixed_blur.make_fixed_blur_fn` do); the mapper then
blurs the stack in one call instead of looping plane-by-plane, which is
how the bit-accurate fixed-point model keeps up with the float path in a
batch.  :meth:`BatchToneMapper.run_stack` is the raw-array entry point
used by the process-pool sharding backend
(:class:`repro.runtime.ShardPool`), which hands each worker a
shared-memory slab of the stacked pixels.  Throughput of both paths is
tracked by ``benchmarks/bench_runtime.py`` (see ``docs/benchmarks.md``).

With ``fused=True`` the float path switches from the staged stack
execution to the fused band engine
(:mod:`repro.runtime.fused`): normalize → blur → mask → adjust run in
one pass over cache-sized row bands (optionally partitioned across
``threads`` workers), with no full-frame stage temporaries — the
software analogue of the paper's ``DATAFLOW`` pragma.  Outputs follow
the fused tolerance contract (bit-identical to staged wherever the blur
resolves to the folded/tiled row convolution, the blur module's 1e-9
band under the FFT).  The fused engine is float-only: it *is* the blur,
so it cannot host a custom/fixed-point ``blur_fn``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # import for annotations only — no runtime cycle
    from repro.planner.plan import ExecutionPlan

import numpy as np

from repro.errors import ToneMapError
from repro.image.color import LUMA_WEIGHTS
from repro.image.hdr import HDRImage
from repro.runtime.clock import MONOTONIC
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.fused import FusedExecutor, FusedStats, FusedToneMapPlan
from repro.tonemap.adjust import adjust_brightness_contrast
from repro.tonemap.gaussian import blur_batch
from repro.tonemap.masking import masking_exponent
from repro.tonemap.pipeline import ToneMapParams

#: Byte budget of float64 image data per stacked sub-batch (see
#: ``BatchToneMapper.run``); sized like
#: :data:`repro.tonemap.gaussian.BATCH_CHUNK_BYTES` to keep a sub-batch's
#: element-wise stages resident in last-level cache.
_STAGE_CHUNK_BYTES = 1 << 22


@dataclass(frozen=True)
class BatchToneMapResult:
    """Outputs of one batched run.

    Attributes
    ----------
    outputs:
        Tone-mapped images, in input order.
    masks:
        The blurred luminance volume, shape ``(N, H, W)`` (kept so quality
        experiments can compare mask implementations batch-wise).
    pixels:
        Total pixels processed, ``N * H * W``.
    """

    outputs: tuple[HDRImage, ...]
    masks: np.ndarray
    pixels: int


class BatchToneMapper:
    """Runs the tone-mapping pipeline on stacks of same-shape images.

    Parameters
    ----------
    params:
        Pipeline parameters, shared by every image in a batch (``None``
        constructs a fresh default set per mapper — no module-level
        instance is shared between mappers).  A custom ``blur_fn`` (e.g.
        the fixed-point accelerator model) is applied plane-by-plane;
        the default float path uses the fully batched
        :func:`repro.tonemap.gaussian.blur_batch`.
    fused:
        Run the float path through the fused band engine
        (:mod:`repro.runtime.fused`) instead of the staged stack
        execution.  Requires ``params.blur_fn`` to be ``None``.
    threads:
        Fused worker threads (``None`` = ``REPRO_FUSED_THREADS`` env,
        else CPU count).  Ignored unless ``fused``.
    plan:
        An :class:`~repro.planner.plan.ExecutionPlan` from the planner:
        supplies the engine choice (fused vs staged), thread count, band
        budget, and the calibration profile the fused dispatch is pinned
        to.  Explicit ``fused``/``threads`` arguments still win over the
        plan (a caller pin beats a planner decision); a plan whose
        engine is ``"fused"`` is ignored when ``params.blur_fn`` is set
        — the fused engine is float-only, and a plan computed for a
        float workload must not crash a fixed-point mapper.
    faults:
        Chaos hook (:mod:`repro.runtime.faults`): a
        :class:`~repro.runtime.faults.FaultPlan` or a shared
        :class:`~repro.runtime.faults.FaultInjector` whose ``slow``
        jitter delays batches in-process — the only fault kind with an
        in-process analogue (there is no worker to kill or hang here).
        Explicit-only (never read from the environment): the service's
        brownout path shares its injector so chaos plans keep applying
        after the breaker routes batches away from the pool, while
        shard workers — whose faults the parent injects — stay clean.
    """

    def __init__(
        self,
        params: Optional[ToneMapParams] = None,
        fused: bool = False,
        threads: Optional[int] = None,
        plan: Optional["ExecutionPlan"] = None,
        faults: Optional[object] = None,
    ):
        self.params = params if params is not None else ToneMapParams()
        if faults is None or isinstance(faults, FaultInjector):
            self.faults: Optional[FaultInjector] = faults
        elif isinstance(faults, FaultPlan):
            self.faults = FaultInjector(faults)
        else:
            raise ToneMapError(
                f"faults must be a FaultPlan or FaultInjector, got "
                f"{type(faults)!r}"
            )
        self._kernel = self.params.kernel()
        self.execution_plan = plan
        band_bytes = None
        profile = None
        if plan is not None:
            if not fused:
                fused = (
                    plan.engine == "fused" and self.params.blur_fn is None
                )
            if threads is None:
                threads = plan.threads
            band_bytes = plan.band_bytes
            profile = plan.profile
        self._plan: Optional[FusedToneMapPlan] = None
        self._engine: Optional[FusedExecutor] = None
        if fused:
            # Raises ToneMapError for custom blur_fn params — the fused
            # engine is the blur, so a silent staged fallback would lie
            # about what executed.
            self._plan = FusedToneMapPlan(
                self.params, band_bytes=band_bytes, profile=profile
            )
            self._engine = FusedExecutor(threads=threads)

    @property
    def kernel(self):
        """The Gaussian kernel used by the blur stage."""
        return self._kernel

    @property
    def fused(self) -> bool:
        """Whether stacks run through the fused band engine."""
        return self._engine is not None

    @property
    def fused_stats(self) -> Optional[FusedStats]:
        """Fused-dataflow counters (``None`` for a staged mapper)."""
        return self._engine.stats if self._engine is not None else None

    def close(self) -> None:
        """Retire the fused engine's worker threads (no-op when staged).

        A staged mapper holds no resources; a fused one owns a
        :class:`~repro.runtime.fused.FusedExecutor` whose threads would
        otherwise idle until garbage collection.  :class:`ToneMapService`
        calls this from its own ``close``.
        """
        if self._engine is not None:
            self._engine.close()

    def _maybe_jitter(self) -> None:
        """Apply the fault plan's ``slow`` delay to this batch (if any)."""
        if self.faults is None:
            return
        index, kinds = self.faults.next_inproc()
        if "slow" in kinds:
            MONOTONIC.sleep(self.faults.plan.jitter_s(index))

    def run(self, images: Sequence[HDRImage]) -> BatchToneMapResult:
        """Tone-map a batch of same-shape images and return every output."""
        if len(images) == 0:
            raise ToneMapError("batch must contain at least one image")
        for image in images:
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
        shape = images[0].pixels.shape
        for image in images[1:]:
            if image.pixels.shape != shape:
                raise ToneMapError(
                    f"batch images must share one shape; got {shape} and "
                    f"{image.pixels.shape} (group by shape first, as "
                    "ToneMapService does)"
                )

        self._maybe_jitter()
        height, width = shape[0], shape[1]
        count = len(images)
        masks = np.empty((count, height, width), dtype=np.float64)

        # The stack is processed in cache-sized sub-batches of whole
        # images.  For the staged path that keeps the element-wise
        # stages in last-level cache instead of thrashing N full-stack
        # temporaries; the fused engine bounds its own working set via
        # banding, but chunking still applies so the adopted output
        # views below pin at most one chunk-sized backing buffer — a
        # caller keeping one image from a large batch must not keep the
        # whole batch's pixels alive.
        image_bytes = int(np.prod(shape)) * 8
        chunk = max(1, _STAGE_CHUNK_BYTES // image_bytes)
        outputs: list[HDRImage] = []
        for lo in range(0, count, chunk):
            sub = images[lo : lo + chunk]
            stacked = np.stack([image.pixels for image in sub])
            if self._engine is not None:
                # Fused: float32 output bands are written directly — no
                # full-stack float64 result to down-convert.
                out_chunk = np.empty(stacked.shape, dtype=np.float32)
                self._engine.run(
                    self._plan, stacked, out_chunk,
                    masks[lo : lo + len(sub)],
                )
            else:
                out_chunk = self._run_stack(
                    stacked, masks[lo : lo + len(sub)]
                ).astype(np.float32)
            # Adopt (don't re-copy / re-scan) the outputs when every
            # stage is repo-internal arithmetic: validated finite inputs
            # cannot produce NaN/negatives through normalize, the
            # built-in blurs, masking, and the clipped adjust, so the
            # HDRImage invariants hold by construction and the
            # float64->float32 store happens in the astype above exactly
            # as the validating constructor would.  A *custom* blur_fn is
            # outside that proof (it may emit NaN, which np.clip
            # propagates), so its outputs keep full validation.
            blur_fn = self.params.blur_fn
            trusted = blur_fn is None or getattr(
                blur_fn, "trusted_finite", False
            )
            wrap = HDRImage.adopt if trusted else HDRImage
            outputs.extend(
                wrap(out_chunk[i], name=f"{sub[i].name}:tonemapped")
                for i in range(len(sub))
            )
        return BatchToneMapResult(
            outputs=tuple(outputs),
            masks=masks,
            pixels=count * height * width,
        )

    def _run_stack(self, stack32: np.ndarray, masks_out: np.ndarray) -> np.ndarray:
        """All four stages over one stacked sub-batch; returns the outputs."""
        # Step 1: normalization against each image's maximum, in float32
        # exactly as HDRImage.normalized computes and stores it (black
        # images have nothing to scale and pass through).
        reduce_axes = tuple(range(1, stack32.ndim))
        peaks = np.amax(stack32, axis=reduce_axes, keepdims=True)
        normalized32 = stack32 / np.where(peaks == 0.0, np.float32(1.0), peaks)
        normalized = normalized32.astype(np.float64)

        # Step 2: Gaussian blur of the luminance volume -> the masks.
        if normalized.ndim == 4:
            luminance = normalized @ LUMA_WEIGHTS
        else:
            luminance = normalized
        blur_fn = self.params.blur_fn
        if blur_fn is None:
            masks = blur_batch(luminance, self._kernel)
        else:
            batch_fn = getattr(blur_fn, "blur_batch", None)
            if batch_fn is not None:
                masks = batch_fn(luminance, self._kernel)
            else:
                masks = np.stack(
                    [blur_fn(plane, self._kernel) for plane in luminance]
                )
        np.clip(
            np.asarray(masks, dtype=np.float64), 0.0, 1.0, out=masks_out
        )

        # Step 3: non-linear masking (per-pixel gamma correction), the
        # batched form of repro.tonemap.masking.nonlinear_masking, run in
        # place on one buffer.
        masking = self.params.masking
        exponent = masking_exponent(masks_out, masking)
        if normalized.ndim == 4:
            exponent = exponent[..., np.newaxis]
        out = np.clip(normalized, masking.epsilon, 1.0)
        np.power(out, exponent, out=out)
        # Pixels at (or below) the epsilon floor are true blacks: keep 0.
        out[normalized <= masking.epsilon] = 0.0

        # Step 4: brightness and contrast adjustment (the shared function
        # is shape-agnostic; its temporaries are chunk-sized, so reuse
        # beats re-deriving the formula here).
        return adjust_brightness_contrast(out, self.params.adjust)

    def run_stack(
        self, stack: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Tone-map a raw pixel stack, bypassing :class:`HDRImage` wrapping.

        The raw-array twin of :meth:`run` for callers that already hold the
        stacked pixels — most importantly :class:`repro.runtime.ShardPool`
        workers, which receive an ``(N, H, W[, 3])`` shared-memory slab and
        write results straight back into shared memory via ``out``.

        Parameters
        ----------
        stack:
            ``(N, H, W)`` gray or ``(N, H, W, 3)`` RGB pixel stack.  Cast
            to float32 first (the :class:`HDRImage` storage type), so
            outputs are bit-identical to :meth:`run` on the wrapped images.
        out:
            Optional preallocated output array of the same shape; the
            float64 stage results are cast into its dtype on assignment.

        Returns
        -------
        ``out`` if given, else a new float64 array of ``stack.shape``.
        """
        stack = np.asarray(stack, dtype=np.float32)
        if stack.ndim not in (3, 4) or (stack.ndim == 4 and stack.shape[3] != 3):
            raise ToneMapError(
                f"run_stack expects (N, H, W) or (N, H, W, 3), got {stack.shape}"
            )
        if out is None:
            out = np.empty(stack.shape, dtype=np.float64)
        elif out.shape != stack.shape:
            raise ToneMapError(
                f"out shape {out.shape} does not match stack {stack.shape}"
            )
        self._maybe_jitter()
        if self._engine is not None:
            # Single fused pass; the shard workers' hot path.  No mask
            # volume is materialized at all — the mask bands live and die
            # in per-thread scratch.
            return self._engine.run(self._plan, stack, out)
        count, height, width = stack.shape[0], stack.shape[1], stack.shape[2]
        image_bytes = int(np.prod(stack.shape[1:])) * 8
        chunk = max(1, _STAGE_CHUNK_BYTES // image_bytes)
        for lo in range(0, count, chunk):
            sub = stack[lo : lo + chunk]
            masks = np.empty((len(sub), height, width), dtype=np.float64)
            out[lo : lo + len(sub)] = self._run_stack(sub, masks)
        return out

    def map(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Convenience: batched run returning only the output images."""
        return self.run(images).outputs
