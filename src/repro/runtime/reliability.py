"""Circuit breaker, brownout policy and reliability counters.

The sharded data plane is the fast path, not the only path: the
in-process :class:`~repro.runtime.batch.BatchToneMapper` computes
bit-identical outputs without crossing a process boundary — the
software-fallback analogue of the paper's ARM path when the FPGA
accelerator is unavailable.  This module decides *when* to take it.

A :class:`CircuitBreaker` watches shard-level failures (crashes the
respawn could not absorb, watchdog timeouts past the hedge budget).
After ``failure_threshold`` failures inside ``window_s`` it **opens**:
the service stops offering batches to the pool and *browns out* to the
in-process mapper — slower, but it always works and the outputs are
bit-identical, so callers see latency degradation instead of errors.
After ``cooldown_s`` the breaker **half-opens** and lets
``probe_batches`` batches through to the pool; if they all succeed it
**closes** (full service restored), if any fails it re-opens and the
cooldown restarts.

The breaker takes an injectable :class:`~repro.runtime.clock.Clock` so
its whole state machine is unit-testable with a fake clock — no sleeps,
no flakes (see ``tests/test_reliability.py``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque

from repro.errors import ToneMapError
from repro.runtime.clock import MONOTONIC, Clock

#: Breaker states, as surfaced in :class:`ReliabilityStats`.
BREAKER_DISABLED = "disabled"
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class ReliabilityStats:
    """Reliability-layer counters surfaced on ``ServiceStats``.

    Attributes
    ----------
    deadline_shed:
        Frames shed by the ingestor because their ``deadline_ms``
        budget expired while queued (failed with
        :class:`~repro.errors.DeadlineExceededError`).
    hedged_replays:
        Batches replayed on a respawned worker set after the watchdog
        killed a hung attempt.
    watchdog_kills:
        Watchdog firings — each SIGKILLed the worker set of one
        over-budget batch.
    breaker_state:
        Current breaker state (``disabled`` when the service was built
        without one, else ``closed`` / ``open`` / ``half_open``).
    breaker_transitions:
        Total state transitions since construction (a breaker that
        flaps shows a high number here with few brownout batches).
    brownout_batches:
        Batches executed on the in-process mapper because the breaker
        was open (or a shard failure fell back mid-batch).
    hosts_lost:
        Shard hosts a :class:`~repro.runtime.hostpool.HostPool`
        declared dead (connection lost, partitioned away, or killed)
        — the host-level analogue of a worker crash; each one triggers
        a replay on another host and, for pool-owned hosts, a respawn.
        Always 0 on a single-host service.
    ladder_rung:
        Current rung of the SLO degradation ladder
        (:data:`~repro.runtime.overload.LADDER`): ``full`` /
        ``degraded_plan`` / ``shed_best_effort`` / ``brownout``.
        ``full`` when the service runs without an
        :class:`~repro.runtime.overload.OverloadController`.
    ladder_transitions:
        Rung changes (both directions) since construction — a high
        number with little time off ``full`` means the hysteresis
        knobs are too twitchy for the workload.
    ladder_shed:
        Best-effort frames dropped by the ladder: queued frames failed
        on entering the ``shed_best_effort`` rung plus best-effort
        submissions rejected while the rung held.
    """

    deadline_shed: int = 0
    hedged_replays: int = 0
    watchdog_kills: int = 0
    breaker_state: str = BREAKER_DISABLED
    breaker_transitions: int = 0
    brownout_batches: int = 0
    hosts_lost: int = 0
    ladder_rung: str = "full"
    ladder_transitions: int = 0
    ladder_shed: int = 0


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for :class:`CircuitBreaker`.

    Parameters
    ----------
    failure_threshold:
        Shard failures inside ``window_s`` that open the breaker.
    window_s:
        Sliding window over which failures are counted.
    cooldown_s:
        How long the breaker stays open before half-opening.
    probe_batches:
        Consecutive successful probe batches required to close again
        from half-open.
    """

    failure_threshold: int = 5
    window_s: float = 30.0
    cooldown_s: float = 5.0
    probe_batches: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ToneMapError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.window_s <= 0 or self.cooldown_s <= 0:
            raise ToneMapError(
                f"window_s and cooldown_s must be > 0, got "
                f"{self.window_s}/{self.cooldown_s}"
            )
        if self.probe_batches < 1:
            raise ToneMapError(
                f"probe_batches must be >= 1, got {self.probe_batches}"
            )


class CircuitBreaker:
    """Sliding-window circuit breaker with half-open probing.

    Thread-safe; time comes from the injected clock only.  The service
    calls :meth:`allow_shard` before offering a batch to the pool, then
    exactly one of :meth:`record_success` / :meth:`record_failure` for
    that batch.  State moves open→half_open lazily inside
    :meth:`allow_shard` (no timer thread — the breaker only needs to
    know the time when someone asks it for a routing decision).
    """

    def __init__(self, policy: BreakerPolicy | None = None,
                 clock: Clock = MONOTONIC):
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probes_allowed = 0
        self._probes_succeeded = 0
        self._transitions = 0

    # ------------------------------------------------------------------
    # Routing decision
    # ------------------------------------------------------------------
    def allow_shard(self) -> bool:
        """Whether the next batch may be offered to the shard pool.

        Closed: always.  Open: no, until the cooldown elapses — then
        the breaker half-opens and starts issuing probe tokens.
        Half-open: yes for up to ``probe_batches`` outstanding probes,
        no for everyone else (they brown out while the probes decide).
        """
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                now = self._clock.now()
                if now - self._opened_at < self.policy.cooldown_s:
                    return False
                self._become(BREAKER_HALF_OPEN)
                self._probes_allowed = self.policy.probe_batches
                self._probes_succeeded = 0
            # half-open: hand out the remaining probe tokens
            if self._probes_allowed > 0:
                self._probes_allowed -= 1
                return True
            return False

    # ------------------------------------------------------------------
    # Outcome reporting
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A shard batch completed; may close a half-open breaker."""
        with self._lock:
            if self._state != BREAKER_HALF_OPEN:
                return
            self._probes_succeeded += 1
            if self._probes_succeeded >= self.policy.probe_batches:
                self._become(BREAKER_CLOSED)
                self._failures.clear()

    def record_failure(self) -> None:
        """A shard batch failed (crash past replay, timeout past hedge)."""
        with self._lock:
            now = self._clock.now()
            if self._state == BREAKER_HALF_OPEN:
                # A probe failed: the pool is still sick, back to open.
                self._become(BREAKER_OPEN)
                self._opened_at = now
                return
            if self._state == BREAKER_OPEN:
                return
            self._failures.append(now)
            horizon = now - self.policy.window_s
            while self._failures and self._failures[0] < horizon:
                self._failures.popleft()
            if len(self._failures) >= self.policy.failure_threshold:
                self._become(BREAKER_OPEN)
                self._opened_at = now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def transitions(self) -> int:
        with self._lock:
            return self._transitions

    def _become(self, state: str) -> None:
        # caller holds the lock
        if state != self._state:
            self._state = state
            self._transitions += 1
