"""Persistent shared-memory arena: pooled input stacks, output slab ring.

The PR 2 sharding backend treated shared memory as a per-batch rental:
every ``run_stack`` created two fresh POSIX segments, memcpy'd the pixel
stack in, copied the results back out, and unlinked both.  Those three
full-stack copies (plus the create/unlink round trips through the kernel
and the resource tracker) are exactly the host-side staging the paper's
FPGA data path avoids by streaming frames over AXI/DMA — the accelerator
never re-buffers a frame it already holds.

:class:`ShmArena` is the software equivalent of that discipline: a small,
long-lived pool of shared-memory segments that batches flow *through*
instead of being copied *into*.

* **Input stacks** are pooled by size class (power-of-two bytes, page
  floor): a released segment goes back on its class's free list and the
  next same-class batch reuses it, so steady-state serving performs zero
  SHM allocations.  Producers write frames straight into a leased input
  stack (the ingestor does this at ``submit()`` time), making batch
  close-out a pointer hand-off.
* **Output slabs** form a ring per size class: a bounded number of slabs
  (``slots``) cycle between "leased to a consumer" and "free for the next
  batch".  Results are returned as zero-copy NumPy views into a slab,
  wrapped in a reference-counted :class:`ArenaLease`; releasing the lease
  recycles the slab.  Consumers that outlive a slab's turn in the ring
  call :meth:`ArenaLease.materialize` instead — the safety fallback that
  copies once and releases (the asyncio/futures path does this, because
  a future's consumer cannot be trusted to release promptly).
* When a class's free structures are empty and all ``slots`` slabs are
  out on lease, the arena **overflows**: it creates a transient segment
  that is unlinked (not recycled) on release.  Overflow keeps mixed-shape
  storms deadlock-free at the cost of an allocation, and is counted in
  :class:`ArenaStats` so benchmarks can assert it never happens on the
  steady-state path.

Worker processes attach to pooled segments once and cache the mapping by
segment name (see :mod:`repro.runtime.shard`); transient segments are
marked non-cacheable so workers never hold a mapping the parent is about
to unlink.  All sizes are page-multiples, so a reused segment's mapping
is always exactly as large as its class.

Lifecycle hygiene: the arena owns every segment it creates and unlinks
them all in :meth:`close`.  Unlink is unconditional — even if a leaked
NumPy view still pins a segment's buffer (which makes ``mmap.close``
raise ``BufferError``), the name is removed from ``/dev/shm`` and the
kernel frees the memory when the last mapping dies.  A leak-check test
scans ``/dev/shm`` to keep this honest (``tests/test_arena.py``).
"""

from __future__ import annotations

import mmap
import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ToneMapError

#: Smallest segment size class; POSIX shared memory is page-granular
#: anyway, so classes below one page would all alias the same allocation.
PAGE_BYTES = mmap.PAGESIZE


def size_class(nbytes: int) -> int:
    """Round a byte count up to its arena size class (power of two).

    Power-of-two classes mean a 6-frame and an 8-frame batch of the same
    frame shape usually share a class, so the pool stays small under
    mixed batch sizes while never wasting more than 2x the bytes.
    """
    if nbytes < 0:
        raise ToneMapError(f"segment size must be >= 0, got {nbytes}")
    nbytes = max(nbytes, PAGE_BYTES)
    return 1 << (nbytes - 1).bit_length()


@dataclass(frozen=True)
class ArenaStats:
    """Counters of one :class:`ShmArena` (a consistent snapshot).

    Attributes
    ----------
    segments_created:
        Shared-memory segments created since construction (pooled and
        transient).  Flat across steady-state serving — the zero-alloc
        claim benchmarks assert.
    acquisitions:
        Leases handed out (input + output).
    reuses:
        Acquisitions served from a free list / the ring, i.e. without
        touching the kernel.
    overflow:
        Acquisitions that had to create a transient segment because the
        class's ring was fully leased.
    leases_active:
        Leases currently outstanding (goes to zero when callers behave).
    pooled_segments / pooled_bytes:
        Segments currently resident (pooled, whether free or leased).
    bytes_copied_in:
        Parent-side staging bytes copied into input stacks by the
        compatibility APIs (``ShardPool.run_stack``).  The zero-copy path
        leaves this flat — producers write frames directly.
    bytes_materialized:
        Bytes copied out of output slabs by :meth:`ArenaLease.materialize`
        (the safety fallback).  The lease path leaves this flat.
    """

    segments_created: int = 0
    acquisitions: int = 0
    reuses: int = 0
    overflow: int = 0
    leases_active: int = 0
    pooled_segments: int = 0
    pooled_bytes: int = 0
    bytes_copied_in: int = 0
    bytes_materialized: int = 0


class _Segment:
    """One shared-memory segment plus its pooling metadata."""

    __slots__ = ("shm", "nbytes", "kind", "transient")

    def __init__(
        self, shm: shared_memory.SharedMemory, nbytes: int, kind: str,
        transient: bool,
    ):
        self.shm = shm
        self.nbytes = nbytes
        self.kind = kind
        self.transient = transient


class ArenaLease:
    """A reference-counted claim on an arena segment.

    ``array`` is a zero-copy NumPy view into the segment.  The lease
    starts with one reference; :meth:`acquire` adds sharers and
    :meth:`release` drops them.  When the count reaches zero the segment
    returns to its pool (or is unlinked, if transient) and ``array``
    becomes ``None`` — callers that need the data beyond the lease call
    :meth:`materialize`, which copies once and releases.

    Releasing an already-dead lease raises :class:`ToneMapError`: a
    double release would hand the same slab to two batches at once, so
    it must fail loudly rather than corrupt silently.
    """

    def __init__(
        self, arena: "ShmArena", segment: _Segment,
        shape: Tuple[int, ...], dtype: np.dtype,
    ):
        self._arena = arena
        self._segment = segment
        self._refs = 1
        self._lock = threading.Lock()
        self.array: Optional[np.ndarray] = np.ndarray(
            shape, dtype=dtype, buffer=segment.shm.buf
        )

    @property
    def segment_name(self) -> str:
        """The POSIX name workers attach to."""
        return self._segment.shm.name

    @property
    def cacheable(self) -> bool:
        """Whether workers may cache their attachment by name.

        Pooled segments live until :meth:`ShmArena.close`, so a worker's
        cached mapping stays valid across batches.  Transient (overflow)
        segments are unlinked on release and must be re-attached per use.
        """
        return not self._segment.transient

    @property
    def nbytes(self) -> int:
        """Payload bytes of the leased view."""
        return 0 if self.array is None else self.array.nbytes

    def acquire(self) -> "ArenaLease":
        """Add one reference (e.g. one per fan-out consumer)."""
        with self._lock:
            if self._refs <= 0:
                raise ToneMapError("cannot acquire a released arena lease")
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; recycles the segment at zero."""
        with self._lock:
            if self._refs <= 0:
                raise ToneMapError(
                    "arena lease released more times than acquired"
                )
            self._refs -= 1
            last = self._refs == 0
            if last:
                self.array = None
        if last:
            self._arena._recycle(self._segment)

    def materialize(self) -> np.ndarray:
        """Copy the view out, release the lease, return the copy.

        The safety fallback for consumers that cannot promise a prompt
        :meth:`release` (futures handed to arbitrary callers, the asyncio
        path): one copy buys an unbounded lifetime.
        """
        if self.array is None:
            raise ToneMapError("cannot materialize a released arena lease")
        out = self.array.copy()
        self._arena._count_materialized(out.nbytes)
        self.release()
        return out

    def __enter__(self) -> "ArenaLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._refs > 0:
            self.release()


class ResultHandle:
    """A lease-native, zero-copy view of one tone-mapped frame.

    The futures path historically materialized every batch once — the
    safety fallback for consumers that cannot be trusted to release a
    slab promptly.  ``ResultHandle`` closes that gap for in-process
    consumers that *can*: each handle holds its own reference on the
    batch's output :class:`ArenaLease` (refcount-safe with the slab
    ring — the slab recycles only when every frame's handle has been
    released), and :attr:`pixels` is a view straight into shared
    memory, so reading a result costs zero copies.

    The contract is explicit release: call :meth:`release` (or use the
    handle as a context manager) when done with the view, or call
    :meth:`materialize` to trade one copy for an unbounded lifetime.
    A handle that is garbage-collected unreleased releases itself as a
    leak backstop — but by then the slab sat out of the ring for the
    handle's whole GC lifetime, so storms of forgotten handles degrade
    the arena to transient-overflow allocations (visible in
    :class:`ArenaStats`).  Release promptly.
    """

    __slots__ = ("_lease", "_slot", "_released", "name")

    def __init__(self, lease: ArenaLease, slot: int, name: str):
        self._lease = lease.acquire()
        self._slot = slot
        self._released = False
        self.name = name

    @property
    def released(self) -> bool:
        return self._released

    @property
    def pixels(self) -> np.ndarray:
        """Zero-copy float32 view of the frame (valid until release)."""
        if self._released:
            raise ToneMapError(
                "cannot read a released result handle (materialize() "
                "before release if the data must outlive the lease)"
            )
        return self._lease.array[self._slot]

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.pixels.shape)

    def release(self) -> None:
        """Drop this frame's reference on the output slab; idempotent."""
        if self._released:
            return
        self._released = True
        self._lease.release()

    def materialize(self):
        """Copy the frame out, release the handle, return an ``HDRImage``.

        The one-copy fallback for results that must outlive the slab
        ring (exactly what the non-lease futures path does for every
        frame).
        """
        from repro.image.hdr import HDRImage

        pixels = self.pixels.copy()
        self._lease._arena._count_materialized(pixels.nbytes)
        self.release()
        return HDRImage.adopt(pixels, name=self.name)

    def __enter__(self) -> "ResultHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.release()
        except Exception:
            pass


class ShmArena:
    """Pooled shared-memory segments for the sharded data plane.

    Parameters
    ----------
    slots:
        Ring depth / pool depth **per size class and kind**: how many
        input stacks (resp. output slabs) of one class may be resident
        at once before further acquisitions overflow into transient
        segments.  Two or three is enough for a pipeline that overlaps
        one in-flight batch with one being assembled; raise it for
        deeper pipelining.

    Use as a context manager or call :meth:`close` when done.  The arena
    is thread-safe; it is shared by the service's pool threads and the
    ingestor's submit path.
    """

    def __init__(self, slots: int = 4):
        if slots < 1:
            raise ToneMapError(f"arena slots must be >= 1, got {slots}")
        self.slots = slots
        self._lock = threading.Lock()
        self._free: Dict[Tuple[str, int], Deque[_Segment]] = {}
        self._resident: Dict[Tuple[str, int], int] = {}
        self._segments: List[_Segment] = []
        self._closed = False
        self._stats = ArenaStats()

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def lease_input(
        self, shape: Tuple[int, ...], dtype=np.float32
    ) -> ArenaLease:
        """Lease a pooled input stack shaped ``shape`` (write frames here)."""
        return self._lease("in", shape, dtype)

    def lease_output(
        self, shape: Tuple[int, ...], dtype=np.float32,
        force_transient: bool = False,
    ) -> ArenaLease:
        """Lease an output slab from the ring (workers write results here).

        ``force_transient`` skips the pooled ring and takes the
        transient-overflow path directly, as if every resident slab were
        held — the hook chaos tests use to exercise arena exhaustion
        without actually pinning slabs.
        """
        return self._lease("out", shape, dtype,
                           force_transient=force_transient)

    def _lease(self, kind: str, shape, dtype,
               force_transient: bool = False) -> ArenaLease:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if nbytes <= 0:
            raise ToneMapError(f"cannot lease an empty segment for {shape}")
        cls = size_class(nbytes)
        key = (kind, cls)
        with self._lock:
            if self._closed:
                raise ToneMapError("arena is closed")
            free = self._free.setdefault(key, deque())
            if force_transient:
                segment = self._create(cls, kind, transient=True)
                self._bump(acquisitions=1, overflow=1)
            elif free:
                segment = free.popleft()
                self._bump(acquisitions=1, reuses=1)
            elif self._resident.get(key, 0) < self.slots:
                segment = self._create(cls, kind, transient=False)
                self._resident[key] = self._resident.get(key, 0) + 1
                self._bump(acquisitions=1)
            else:
                # Ring exhausted: overflow into a transient segment so the
                # caller never deadlocks on a slab a slow consumer holds.
                segment = self._create(cls, kind, transient=True)
                self._bump(acquisitions=1, overflow=1)
            self._bump(leases_active=1)
        return ArenaLease(self, segment, tuple(shape), np.dtype(dtype))

    def _create(self, nbytes: int, kind: str, transient: bool) -> _Segment:
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        segment = _Segment(shm, nbytes, kind, transient)
        if not transient:
            self._segments.append(segment)
        self._bump(
            segments_created=1,
            pooled_segments=0 if transient else 1,
            pooled_bytes=0 if transient else nbytes,
        )
        return segment

    def _recycle(self, segment: _Segment) -> None:
        with self._lock:
            self._bump(leases_active=-1)
            if segment.transient or self._closed:
                # Transient segments die on release; segments released
                # after close were already unlinked there.
                if segment.transient:
                    self._unlink(segment)
                return
            self._free.setdefault(
                (segment.kind, segment.nbytes), deque()
            ).append(segment)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def _bump(self, **deltas: int) -> None:
        # Callers hold self._lock (or the value is monotonic noise-free,
        # as for materialize counts taken under the lock below).
        updates = {
            name: getattr(self._stats, name) + delta
            for name, delta in deltas.items()
        }
        self._stats = ArenaStats(**{**self._stats.__dict__, **updates})

    def _count_copy_in(self, nbytes: int) -> None:
        with self._lock:
            self._bump(bytes_copied_in=nbytes)

    def _count_materialized(self, nbytes: int) -> None:
        with self._lock:
            self._bump(bytes_materialized=nbytes)

    @property
    def stats(self) -> ArenaStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return self._stats

    @staticmethod
    def _unlink(segment: _Segment) -> None:
        """Unlink a segment, tolerating pinned buffers and double unlink.

        ``close()`` raises ``BufferError`` while an exported NumPy view
        pins the mmap; the name must still leave ``/dev/shm``, so unlink
        happens regardless and the mapping dies with its last reference.
        """
        try:
            segment.shm.close()
        except BufferError:  # a leaked view still pins the buffer
            pass
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def close(self) -> None:
        """Unlink every pooled segment; idempotent.

        Outstanding leases keep their mappings usable (POSIX unlink only
        removes the name), but their release becomes a no-op recycle.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments)
            self._segments.clear()
            self._free.clear()
            self._resident.clear()
        for segment in segments:
            self._unlink(segment)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
