"""Process-pool sharding backend over a persistent shared-memory arena.

The thread-pooled :class:`~repro.runtime.service.ToneMapService` overlaps
the NumPy stages (which release the GIL), but the fixed-point model still
carries Python-level glue — the tap loop, quantization bookkeeping — that
serializes on the GIL.  :class:`ShardPool` escapes it: a batch's
``(N, H, W[, 3])`` pixel stack lives in a POSIX shared-memory segment,
the N images are partitioned into contiguous slabs, and each slab is
tone-mapped by a separate **worker process** that writes its results
straight back into a shared output slab.  Only segment names and slab
bounds cross the process boundary — never pixel data.

Unlike the PR 2 incarnation, segments are *persistent*: the pool owns a
:class:`~repro.runtime.arena.ShmArena` whose pooled input stacks and
output-slab ring are reused across batches, so steady-state serving does
zero SHM allocations and zero parent-side staging copies.  The data
plane has three entry points, fastest first:

* :meth:`run_leased` — fully zero-copy: the producer already wrote the
  frames into an arena input stack (leased via ``pool.arena`` or
  :meth:`lease_input`); results come back as a reference-counted
  :class:`~repro.runtime.arena.ArenaLease` view.  The streaming ingestor
  uses this path.
* :meth:`run_stack` — one staging copy in (the caller holds an ordinary
  array); zero-copy out with ``zero_copy=True``, else one materialize
  copy for safety.
* :meth:`run_batch` — the :class:`HDRImage` convenience; frames are
  written into the arena one by one (no intermediate ``np.stack``) and
  outputs are adopted views into one materialized buffer.

**Crash recovery.**  A worker dying (OOM kill, segfault) breaks the
whole ``ProcessPoolExecutor``; :meth:`ShardPool.run_leased` absorbs
that: it releases the batch's output slab, respawns the worker set
(once per crash, however many batches observed it — generation
counted), and replays the batch on the fresh workers, since its input
frames still sit untouched in the arena.  Only a persistently crashing
workload (the replay dies too) surfaces
:class:`~repro.errors.ShardCrashError`.  ``tests/test_fault_injection.py``
SIGKILLs real workers to hold the no-leak / no-hang / autoscaler-alive
contract.

Workers attach to a segment **once** and cache the mapping by name —
valid for the life of the arena, because pooled segments are only
unlinked at :meth:`close`.  Attachment never touches the resource
tracker: under the default ``fork`` start method the tracker process is
*shared* with the parent, so the historical attach-then-unregister dance
removed the parent's own registration — unlink then logged a KeyError
storm in the tracker and, had the parent died first, the segment would
have leaked in ``/dev/shm``.  ``tests/test_arena.py`` scans ``/dev/shm``
to keep the no-leak property honest.

Each worker holds its own :class:`~repro.runtime.batch.BatchToneMapper`,
so per-kernel Gaussian coefficients and (for fixed-point configs) the
quantized coefficient ROM are built once per process at pool start-up.
Because ``blur_fn`` closures do not pickle, the fixed-point path is
requested by shipping the frozen, picklable
:class:`~repro.tonemap.fixed_blur.FixedBlurConfig` instead.

**Autoscaling.**  With ``autoscale=True`` the pool starts ``max_shards``
worker processes eagerly (they are cheap, warm, and never forked after
caller threads exist) but fans batches out across only
:attr:`active_shards` of them.  :class:`ShardAutoscaler` widens the
active set when queue depth or p95 latency shows sustained pressure and
narrows it after sustained idleness — both with hysteresis
(:class:`AutoscalePolicy`), so a single burst does not flap the width.
Parked workers cost memory, not CPU; narrowing keeps cache-hot workers
busy instead of spraying small slabs across cold ones.  The service
feeds observations after every batch and surfaces the active width via
``ServiceStats``.

Outputs remain bit-identical to the in-process
:class:`~repro.runtime.batch.BatchToneMapper` path: workers run the same
stack code (:meth:`BatchToneMapper.run_stack`) and the float64→float32
store happens once either way.  Throughput and the zero-copy counters
are tracked by ``benchmarks/bench_runtime.py`` (see
``docs/benchmarks.md``).
"""

from __future__ import annotations

import inspect
import multiprocessing as mp
import os
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ShardCrashError, ShardTimeoutError, ToneMapError
from repro.image.hdr import HDRImage
from repro.runtime.arena import ArenaLease, ArenaStats, ShmArena
from repro.runtime.batch import BatchToneMapper
from repro.runtime.clock import MONOTONIC, Clock
from repro.runtime.faults import FaultInjector, resolve_injector
from repro.runtime.net import NetStats
from repro.tonemap.fixed_blur import FixedBlurConfig, make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams

#: Worker-process global: the per-process mapper with warm caches.
_WORKER_MAPPER: Optional[BatchToneMapper] = None

#: Worker-process global: cached attachments to pooled arena segments,
#: keyed by POSIX name.  Pooled segments live until the arena closes, so
#: a cached mapping never goes stale; transient segments bypass this.
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}

#: Python 3.13+ can attach without registering with the resource tracker.
_SHM_HAS_TRACK = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters


def _init_worker(
    params: ToneMapParams,
    fixed_config: Optional[FixedBlurConfig],
    fused: bool = False,
    threads: Optional[int] = None,
    plan=None,
) -> None:
    """Build this worker's mapper once; subsequent slabs reuse its caches.

    ``plan`` is a pickled :class:`~repro.planner.plan.ExecutionPlan` (or
    ``None``): shipping the parent's plan means every worker replays the
    parent's dispatch decisions exactly, whatever env vars the worker
    process happens to see.
    """
    global _WORKER_MAPPER
    if fixed_config is not None:
        params = replace(params, blur_fn=make_fixed_blur_fn(fixed_config))
    _WORKER_MAPPER = BatchToneMapper(
        params, fused=fused, threads=threads, plan=plan
    )
    if fixed_config is not None:
        # Quantize the coefficient ROM now so the first slab pays nothing.
        fixed_config.quantized_coefficients(_WORKER_MAPPER.kernel)


def _worker_ready() -> bool:
    """No-op task used to force worker start-up at pool construction."""
    return _WORKER_MAPPER is not None


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without touching the resource tracker.

    The parent created the segment and owns its lifetime; it is already
    registered with the tracker there.  Under ``fork`` the tracker
    process is shared, so letting the attach register (and then
    unregistering, as the old code did) would delete the *parent's*
    registration: unlink later double-unregisters (KeyError noise in the
    tracker) and a parent crash before unlink would leak the segment.
    Python 3.13 exposes ``track=False`` for exactly this; earlier
    versions need the register call suppressed for the duration.
    """
    if _SHM_HAS_TRACK:
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach(name: str, cacheable: bool) -> shared_memory.SharedMemory:
    """Attach to a segment, caching pooled attachments for the pool's life."""
    if cacheable:
        shm = _WORKER_SEGMENTS.get(name)
        if shm is None:
            shm = _attach_untracked(name)
            _WORKER_SEGMENTS[name] = shm
        return shm
    return _attach_untracked(name)


def _run_slab(
    in_name: str,
    out_name: str,
    shape: tuple,
    lo: int,
    hi: int,
    in_cacheable: bool,
    out_cacheable: bool,
    fault: Optional[Tuple[str, float]] = None,
) -> tuple[int, int]:
    """Tone-map images ``lo:hi`` of the shared input stack in this worker.

    Robust against mid-flight errors: a transient attachment is closed on
    every exit path, and a failure before the output attach never leaks
    the input attachment.  Cached attachments are owned by the process
    and intentionally survive.

    ``fault`` is an injected failure directive from the pool's
    :class:`~repro.runtime.faults.FaultInjector` (``("kill", _)`` or
    ``("hang", seconds)``), applied before any slab work so the failure
    is clean: a killed worker never half-writes its slab, a hung one
    holds the batch exactly like stuck I/O would.
    """
    if fault is not None:
        kind, value = fault
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(value)
    in_shm = _attach(in_name, in_cacheable)
    try:
        out_shm = _attach(out_name, out_cacheable)
        try:
            stack = np.ndarray(shape, dtype=np.float32, buffer=in_shm.buf)
            out = np.ndarray(shape, dtype=np.float32, buffer=out_shm.buf)
            _WORKER_MAPPER.run_stack(stack[lo:hi], out=out[lo:hi])
        finally:
            if not out_cacheable:
                out_shm.close()
    finally:
        if not in_cacheable:
            in_shm.close()
    return lo, hi


def _slab_bounds(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``count`` images into at most ``shards`` contiguous slabs."""
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Hung-shard watchdog
# ----------------------------------------------------------------------
class _WatchToken:
    """One watched batch attempt: its kill deadline and whether it fired."""

    __slots__ = ("deadline", "expired")

    def __init__(self, deadline: float):
        self.deadline = deadline
        self.expired = False


class _Watchdog:
    """Kills the worker set when a watched batch overruns its budget.

    A crashed worker announces itself (``BrokenProcessPool``); a *hung*
    one is silent — ``future.result()`` would block forever.  The
    watchdog turns hangs into crashes: :meth:`watch` registers a batch
    attempt's deadline, and a single lazy daemon thread SIGKILLs the
    current worker processes once any watched deadline passes, which
    breaks the pool and lets ``run_leased``'s existing crash machinery
    (quiesce → respawn → replay) take over.  The token's ``expired``
    flag is how ``run_leased`` distinguishes a watchdog kill (timeout →
    hedged replay budget) from an organic crash (crash retry budget).

    Time comes from the injected clock, but wake-ups poll on a short
    real-time interval — so tests driving a
    :class:`~repro.runtime.clock.FakeClock` see the kill within
    ``poll_s`` of advancing it, without the watchdog needing to know
    the clock is fake.
    """

    def __init__(self, kill_fn, clock: Clock = MONOTONIC,
                 poll_s: float = 0.005):
        self._kill_fn = kill_fn
        self._clock = clock
        self._poll_s = poll_s
        self._cond = threading.Condition(threading.Lock())
        self._tokens: Set[_WatchToken] = set()
        self._kills = 0
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def watch(self, deadline: float) -> _WatchToken:
        """Register a batch attempt; kill the workers at ``deadline``."""
        token = _WatchToken(deadline)
        with self._cond:
            if self._closed:
                raise ToneMapError("watchdog is closed")
            self._tokens.add(token)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="shard-watchdog", daemon=True
                )
                self._thread.start()
            self._cond.notify()
        return token

    def cancel(self, token: _WatchToken) -> None:
        """Stop watching ``token`` (the attempt finished on its own)."""
        with self._cond:
            self._tokens.discard(token)

    @property
    def kills(self) -> int:
        """Watchdog firings — each one SIGKILLed the worker set once."""
        with self._cond:
            return self._kills

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._tokens.clear()
            self._cond.notify()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)

    def _loop(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                now = self._clock.now()
                due = [t for t in self._tokens if t.deadline <= now]
                for token in due:
                    token.expired = True
                    self._tokens.discard(token)
                if due:
                    self._kills += len(due)
                elif self._tokens:
                    self._cond.wait(self._poll_s)
                    continue
                else:
                    self._cond.wait()
                    continue
            # Fire outside the lock: the kill walks executor state and
            # must not hold up watch()/cancel() on the batch threads.
            self._kill_fn()


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoscalePolicy:
    """When the autoscaler widens or narrows the active shard set.

    Pressure (grow signal) is queue depth exceeding the active width —
    batches are waiting that an extra shard could absorb — or, when
    ``target_p95_ms`` is set, the p95 batch latency exceeding it.
    Idleness (shrink signal) is queue depth below the active width with
    no pressure.  Hysteresis: a grow needs ``grow_patience`` consecutive
    pressure observations, a shrink ``shrink_patience`` consecutive idle
    ones, and any contradicting observation resets both counters — so a
    lone burst or a lone quiet beat never flaps the width.
    """

    min_shards: int = 1
    max_shards: int = 2
    target_p95_ms: Optional[float] = None
    grow_patience: int = 2
    shrink_patience: int = 6

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ToneMapError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ToneMapError(
                f"max_shards ({self.max_shards}) must be >= min_shards "
                f"({self.min_shards})"
            )
        if self.grow_patience < 1 or self.shrink_patience < 1:
            raise ToneMapError("autoscale patience values must be >= 1")


class ShardAutoscaler:
    """Pure hysteresis logic: observations in, target width out.

    Deterministic and free of clocks or threads so tests can drive it
    observation by observation; :class:`ShardPool` owns the single
    instance and applies its decisions.
    """

    def __init__(self, policy: AutoscalePolicy):
        self.policy = policy
        self._hot = 0
        self._cold = 0

    def observe(
        self, active: int, queue_depth: int, p95_ms: Optional[float] = None
    ) -> int:
        """Feed one observation; returns the new target active width."""
        policy = self.policy
        pressure = queue_depth > active or (
            policy.target_p95_ms is not None
            and p95_ms is not None
            and p95_ms > policy.target_p95_ms
        )
        idle = not pressure and queue_depth < active
        if pressure:
            self._hot += 1
            self._cold = 0
        elif idle:
            self._cold += 1
            self._hot = 0
        else:
            self._hot = 0
            self._cold = 0
        if self._hot >= policy.grow_patience and active < policy.max_shards:
            self._hot = 0
            return active + 1
        if self._cold >= policy.shrink_patience and active > policy.min_shards:
            self._cold = 0
            return active - 1
        return min(max(active, policy.min_shards), policy.max_shards)


@dataclass(frozen=True)
class DataPlaneStats:
    """Per-pool data-plane counters (arena counters plus batch count).

    ``copies_per_frame`` is the headline number: parent-side staging
    bytes (copy-in plus materialize) per frame served, as a fraction of
    the frame size.  The PR 2 cycle measured 3.0 (stack, copy-in, copy
    out — and a fourth inside ``HDRImage``); the zero-copy path measures
    0.0.

    The multi-host tier shares this dataclass: a
    :class:`~repro.runtime.hostpool.HostPool` fills ``net`` with its
    wire-endpoint counters, whose ``bytes_staged`` (userspace staging
    around the socket hop — 0 on the scatter-gather path) joins the
    same honesty sum, and ``worker_respawns`` counts *host* respawns.
    A single-host pool leaves ``net`` all zeros.
    """

    batches: int = 0
    frames: int = 0
    bytes_served: int = 0
    worker_respawns: int = 0
    arena: ArenaStats = ArenaStats()
    net: NetStats = NetStats()

    @property
    def copies_per_frame(self) -> float:
        """Staging bytes per frame-byte served (3.0 legacy, 0.0 zero-copy)."""
        if self.bytes_served <= 0:
            return 0.0
        return self.bytes_staged / self.bytes_served

    @property
    def bytes_staged(self) -> int:
        """Total parent-side staging traffic (copy-in + materialize +
        any userspace staging around the wire)."""
        return (
            self.arena.bytes_copied_in
            + self.arena.bytes_materialized
            + self.net.bytes_staged
        )


class ShardPool:
    """Tone-maps batches by sharding them across worker processes.

    Parameters
    ----------
    params:
        Pipeline parameters.  ``params.blur_fn`` must be ``None`` — a
        closure cannot cross the process boundary; request the fixed-point
        path with ``fixed_config`` instead.
    shards:
        Initial (and, without autoscaling, fixed) active worker count.
    fixed_config:
        When given, every worker blurs with the bit-accurate fixed-point
        model built from this config (batched across its whole slab).
    start_method:
        Multiprocessing start method; defaults to ``fork`` on Linux (cheap
        start-up, inherited imports) and ``spawn`` elsewhere (forking
        after BLAS/framework threads start is unsafe on macOS).  Applies
        to initial construction only — crash *respawns* always use
        ``spawn``, because by then caller threads are live and forking a
        multi-threaded process can deadlock the child (see
        :meth:`_respawn`).
    autoscale:
        Enable the queue-depth / latency autoscaler.  ``max_shards``
        workers are started eagerly (all forked before any caller thread
        exists); the *active* set grows and shrinks between ``shards``
        (as minimum) and ``max_shards`` under
        :class:`AutoscalePolicy` hysteresis.
    max_shards:
        Ceiling for the active set; defaults to the host's CPU count (at
        least ``shards``).  Ignored unless ``autoscale``.
    policy:
        Autoscale policy override; defaults to
        ``AutoscalePolicy(min_shards=shards, max_shards=max_shards)``.
    arena:
        Share an existing :class:`~repro.runtime.arena.ShmArena` instead
        of owning one (the owner closes it).
    arena_slots:
        Ring/pool depth per size class for an owned arena.
    fused:
        Workers run their slabs through the fused band engine
        (:mod:`repro.runtime.fused`) instead of the staged stack path.
        Float-only — incompatible with ``fixed_config``.
    fused_threads:
        Fused worker threads *per worker process*; defaults to **1** —
        the pool's parallelism model is one core per shard, so letting
        each of N workers spawn ``os.cpu_count()`` compute threads (the
        in-process default) would oversubscribe the host N-fold.  Raise
        it only when ``shards * fused_threads`` fits the core budget.
    plan:
        An :class:`~repro.planner.plan.ExecutionPlan`; it is pickled to
        every worker so each one replays the parent's dispatch decisions
        (engine, band budget, calibration profile) exactly.  Explicit
        ``fused``/``fused_threads`` arguments still win over the plan.
        The per-process thread default stays **1** even under a plan —
        the plan's ``threads`` describes the in-process engine, and N
        workers × plan-threads would oversubscribe the host.
    default_timeout_ms:
        Execution budget applied to every :meth:`run_leased` call that
        does not pass its own ``timeout``.  ``None`` (the default)
        means no budget: a hung worker blocks forever, exactly the
        pre-watchdog behaviour.
    timeout_retries:
        Hedged replays allowed after a watchdog kill before
        :class:`~repro.errors.ShardTimeoutError` surfaces.  Independent
        of ``run_leased``'s crash ``retries`` — a hang and a crash are
        different budgets.
    hang_factor:
        When set, batches *without* an explicit budget get a derived
        one: ``hang_factor × p95`` of recent batch durations (needs at
        least five samples; floored at ``hang_min_ms``).  Off by
        default — mixed batch sizes make a global p95 a poor hang
        signal unless the operator opts in.
    hang_min_ms:
        Floor for the p95-derived threshold, so a burst of tiny batches
        cannot arm a hair-trigger watchdog.
    faults:
        Chaos injection: a :class:`~repro.runtime.faults.FaultPlan`, a
        spec string, or a shared
        :class:`~repro.runtime.faults.FaultInjector`.  ``None`` consults
        the ``REPRO_FAULT_PLAN`` environment variable; absent that, no
        injection (zero overhead on the hot path).
    clock:
        Injectable monotonic time source (see
        :mod:`repro.runtime.clock`); tests pass a ``FakeClock``.

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        params: Optional[ToneMapParams] = None,
        shards: int = 2,
        fixed_config: Optional[FixedBlurConfig] = None,
        start_method: Optional[str] = None,
        autoscale: bool = False,
        max_shards: Optional[int] = None,
        policy: Optional[AutoscalePolicy] = None,
        arena: Optional[ShmArena] = None,
        arena_slots: int = 4,
        fused: bool = False,
        fused_threads: Optional[int] = None,
        plan=None,
        default_timeout_ms: Optional[float] = None,
        timeout_retries: int = 1,
        hang_factor: Optional[float] = None,
        hang_min_ms: float = 50.0,
        faults=None,
        clock: Clock = MONOTONIC,
    ):
        params = params if params is not None else ToneMapParams()
        if shards < 1:
            raise ToneMapError(f"shards must be >= 1, got {shards}")
        if params.blur_fn is not None:
            raise ToneMapError(
                "blur_fn closures cannot cross the process boundary; pass "
                "fixed_config=FixedBlurConfig(...) and let workers rebuild it"
            )
        if plan is not None and not fused:
            fused = plan.engine == "fused" and fixed_config is None
        if fused and fixed_config is not None:
            raise ToneMapError(
                "the fused engine is float-only; drop fused or fixed_config"
            )
        if fused and fused_threads is None:
            # One fused thread per worker process: the pool already
            # claims one core per shard, so the in-process default
            # (cpu_count) would oversubscribe shards-fold.
            fused_threads = 1
        if start_method is None:
            # fork only on Linux: macOS lists it but CPython switched its
            # default to spawn because forking after BLAS/framework
            # threads start is unsafe there.
            start_method = (
                "fork"
                if sys.platform == "linux"
                and "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        self.shards = shards
        self.params = params
        self.fixed_config = fixed_config
        self.fused = fused
        self.fused_threads = fused_threads
        self.plan = plan
        if autoscale:
            if max_shards is None:
                max_shards = max(shards, os.cpu_count() or shards)
            if max_shards < shards:
                raise ToneMapError(
                    f"max_shards ({max_shards}) must be >= shards ({shards})"
                )
            self._policy = policy or AutoscalePolicy(
                min_shards=shards, max_shards=max_shards
            )
            if not (
                self._policy.min_shards
                <= shards
                <= self._policy.max_shards
            ):
                raise ToneMapError(
                    f"shards ({shards}) must lie within the autoscale "
                    f"bounds [{self._policy.min_shards}, "
                    f"{self._policy.max_shards}] — only that many worker "
                    "processes exist"
                )
            self._autoscaler: Optional[ShardAutoscaler] = ShardAutoscaler(
                self._policy
            )
            workers = self._policy.max_shards
        else:
            self._policy = None
            self._autoscaler = None
            workers = shards
        self._workers = workers
        self._active = shards
        self._scale_ups = 0
        self._scale_downs = 0
        self._scale_lock = threading.Lock()
        self._owns_arena = arena is None
        self.arena = arena if arena is not None else ShmArena(slots=arena_slots)
        self._batches = 0
        self._frames = 0
        self._bytes_served = 0
        self._count_lock = threading.Lock()
        self._mp_context = mp.get_context(start_method)
        # Crash respawns must not plain-fork a by-then-threaded parent;
        # see _respawn.  A non-fork pool respawns with its own context.
        if start_method != "fork":
            self._respawn_context = self._mp_context
        elif "forkserver" in mp.get_all_start_methods():
            self._respawn_context = mp.get_context("forkserver")
        else:  # pragma: no cover - fork implies posix, so forkserver exists
            self._respawn_context = mp.get_context("spawn")
        self._respawn_lock = threading.Lock()
        self._generation = 0
        self._respawns = 0
        self._draining = False
        if default_timeout_ms is not None and default_timeout_ms <= 0:
            raise ToneMapError(
                f"default_timeout_ms must be > 0, got {default_timeout_ms}"
            )
        if timeout_retries < 0:
            raise ToneMapError(
                f"timeout_retries must be >= 0, got {timeout_retries}"
            )
        if hang_factor is not None and hang_factor <= 0:
            raise ToneMapError(
                f"hang_factor must be > 0, got {hang_factor}"
            )
        self._clock = clock
        self._default_timeout_s = (
            None if default_timeout_ms is None else default_timeout_ms / 1e3
        )
        self._timeout_retries = timeout_retries
        self._hang_factor = hang_factor
        self._hang_min_s = hang_min_ms / 1e3
        self._durations: deque = deque(maxlen=256)
        self._hedged_replays = 0
        self.faults: Optional[FaultInjector] = resolve_injector(faults)
        self._reap_lock = threading.Lock()
        self._watchdog = _Watchdog(self._kill_workers, clock=clock)
        self._executor = self._spawn_executor()

    def _spawn_executor(
        self, mp_context: Optional[mp.context.BaseContext] = None
    ) -> ProcessPoolExecutor:
        """Start a full worker set and prove every initializer ran.

        One pending task per worker forces the executor to start all
        processes, and resolving the futures proves each initializer
        ran.  At construction no process is ever forked after caller
        threads exist — autoscaling only varies how many of these warm
        workers a batch fans out across.  The warm-up wait is bounded:
        a worker that cannot initialize must fail the pool loudly, not
        wedge it.
        """
        executor = ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=mp_context if mp_context is not None else self._mp_context,
            initializer=_init_worker,
            initargs=(
                self.params,
                self.fixed_config,
                self.fused,
                self.fused_threads,
                self.plan,
            ),
        )
        try:
            for future in [
                executor.submit(_worker_ready) for _ in range(self._workers)
            ]:
                if not future.result(timeout=120.0):  # pragma: no cover
                    raise ToneMapError("shard worker failed to initialize")
        except Exception:
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        return executor

    def _respawn(self, generation: int) -> None:
        """Replace a broken executor with a fresh warm worker set.

        Idempotent per executor generation: concurrent batches that all
        observed the same crash race here, the first one rebuilds, the
        rest see the bumped generation and return — so one crash costs
        one respawn, not one per in-flight batch.

        Respawned workers never use plain ``fork``, even when the pool
        was built with it: a respawn necessarily creates processes
        while service threads are live, and a child forked from a
        multi-threaded parent can inherit an internal queue lock in the
        held state and deadlock before it ever picks up work (observed
        under chaos load as a pool that never comes back).  Respawns
        use ``forkserver`` where available — its server process is
        created by fork+exec (exec wipes inherited thread state) and
        workers then fork from that single-threaded server; unlike
        ``spawn`` it also never re-imports ``__main__``, so caller
        scripts without an import guard survive a respawn.  ``fork``
        remains the cheap default only for initial construction, where
        no caller threads exist yet.
        """
        with self._respawn_lock:
            if self._generation != generation:
                return  # another thread already replaced this executor
            broken = self._executor
            self._executor = self._spawn_executor(
                mp_context=self._respawn_context
            )
            self._generation += 1
            self._respawns += 1
        self._shutdown_broken(broken)

    def _shutdown_broken(self, executor: ProcessPoolExecutor) -> None:
        """Shut a broken executor down exactly once, across racing batches.

        Concurrent batches that all hit the same ``BrokenProcessPool``
        each want to join the corpse before releasing their output
        slabs — but ``ProcessPoolExecutor.shutdown`` is not safe to call
        concurrently: both threads see the same live queue FDs and both
        ``os.close`` them, and the second close lands *after* the OS has
        recycled those fd numbers to the replacement executor's fresh
        pipes.  That stray close poisons the new executor (its manager
        thread dies on fd aliasing — ``KeyError: FD already
        registered`` — and every pending future hangs forever).  One
        thread wins the right to call ``shutdown``; the losers wait on
        its completion event instead of double-closing.
        """
        with self._reap_lock:
            event = getattr(executor, "_repro_reaped", None)
            owner = event is None
            if owner:
                event = threading.Event()
                executor._repro_reaped = event  # type: ignore[attr-defined]
        if owner:
            try:
                executor.shutdown(wait=True)
            finally:
                event.set()
        else:
            event.wait()

    @property
    def worker_respawns(self) -> int:
        """Worker-set rebuilds performed after crashes (0 in health)."""
        return self._respawns

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker processes.

        Exposed for operational tooling and the fault-injection tests
        (which SIGKILL one to prove the pool recovers); the list is a
        snapshot — workers may be respawned at any time.

        Safe against the races the watchdog's ``_kill_workers`` already
        defends against: the executor's management thread mutates
        ``_processes`` while workers start and die, ``_executor`` itself
        is swapped mid-:meth:`_respawn`, and a shut-down executor sets
        ``_processes`` to ``None``.  The read snapshots one executor
        reference and copies its process dict under try/except; a
        torn-down executor yields ``[]``, never an exception.
        """
        executor = self._executor  # one reference: respawn swaps it
        try:
            processes = executor._processes
            if not processes:
                return []
            return [
                process.pid
                for process in list(processes.values())
                if process.pid is not None
            ]
        except (AttributeError, TypeError, RuntimeError):
            # _processes gone (shutdown), None, or mutated mid-copy.
            return []

    # ------------------------------------------------------------------
    # Watchdog / hedged replay
    # ------------------------------------------------------------------
    def _kill_workers(self) -> None:
        """SIGKILL the current worker set (watchdog fire path).

        Racy by design: the executor may be mid-respawn or shutting
        down, and a pid may have already exited.  Every failure mode is
        benign — a worker we miss either belongs to a fresh generation
        (innocent) or is already dead — so swallow them all rather than
        let the watchdog thread die.
        """
        try:
            pids = self.worker_pids()
        except Exception:
            return
        for pid in pids:
            if pid is None:
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass

    def _hang_threshold_s(self) -> Optional[float]:
        """The p95-derived hang budget, or ``None`` while unarmed."""
        if self._hang_factor is None:
            return None
        with self._count_lock:
            samples = sorted(self._durations)
        if len(samples) < 5:
            return None
        p95 = samples[min(len(samples) - 1, int(0.95 * len(samples)))]
        return max(self._hang_min_s, p95 * self._hang_factor)

    @property
    def watchdog_kills(self) -> int:
        """Times the watchdog SIGKILLed the workers of an over-budget batch."""
        return self._watchdog.kills

    @property
    def hedged_replays(self) -> int:
        """Batches replayed on fresh workers after a watchdog kill."""
        with self._count_lock:
            return self._hedged_replays

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    @property
    def active_shards(self) -> int:
        """Workers a batch currently fans out across."""
        return self._active

    @property
    def autoscaling(self) -> bool:
        """Whether :meth:`observe` feeds a live autoscaler."""
        return self._autoscaler is not None

    @property
    def scale_ups(self) -> int:
        return self._scale_ups

    @property
    def scale_downs(self) -> int:
        return self._scale_downs

    def observe(
        self, queue_depth: int, p95_ms: Optional[float] = None
    ) -> int:
        """Feed one load observation (queue depth, optional p95 latency).

        The service calls this after every batch; the pool applies the
        autoscaler's decision and returns the (possibly new) active
        width.  A no-op without ``autoscale=True``.
        """
        if self._autoscaler is None:
            return self._active
        with self._scale_lock:
            target = self._autoscaler.observe(
                self._active, queue_depth, p95_ms
            )
            if target > self._active:
                self._scale_ups += 1
            elif target < self._active:
                self._scale_downs += 1
            self._active = target
            return target

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def lease_input(self, shape: tuple, dtype=np.float32) -> ArenaLease:
        """Lease an arena input stack for producers to write frames into."""
        return self.arena.lease_input(shape, dtype)

    def run_leased(
        self,
        in_lease: ArenaLease,
        count: Optional[int] = None,
        retries: int = 1,
        timeout: Optional[float] = None,
    ) -> ArenaLease:
        """Tone-map a stack already resident in the arena (zero-copy).

        ``in_lease`` is an input lease whose array holds ``count`` frames
        (default: all of them; pass fewer for a partially filled stack).
        The caller keeps ownership of ``in_lease`` — release it when the
        slot is no longer needed (the ingestor reuses its stack across
        batches).  Returns an output lease viewing the results; release
        or materialize it.

        **Crash recovery.**  A worker dying mid-batch (OOM kill, crash)
        breaks the whole ``ProcessPoolExecutor``; this method then
        releases the batch's output slab, respawns the worker set once
        (see :meth:`_respawn`), and replays the batch up to ``retries``
        times — the input frames still sit untouched in ``in_lease``,
        so a replay is a pure re-dispatch.  A replay that crashes again
        raises :class:`~repro.errors.ShardCrashError`; either way no
        lease is leaked and the pool stays usable for later batches.

        **Hang recovery.**  ``timeout`` (seconds; defaults to the
        pool's ``default_timeout_ms``) is the execution budget of each
        *attempt*.  An attempt still running at its budget — a *hung*
        worker never breaks the pool by itself — is killed by the
        watchdog, which converts the hang into the crash path above;
        the batch is then *hedge-replayed* on the respawned workers
        (with a fresh budget — a kill exactly at the deadline must
        still leave the hedge worth taking) up to ``timeout_retries``
        times before :class:`~repro.errors.ShardTimeoutError`
        surfaces.  Without an explicit budget, an opt-in
        ``hang_factor`` arms the watchdog at p95 × factor of recent
        batch durations instead.
        """
        if in_lease.array is None:
            raise ToneMapError("cannot run a released arena lease")
        if self._draining:
            raise ToneMapError("shard pool is draining")
        shape = in_lease.array.shape
        if count is None:
            count = shape[0]
        if not 1 <= count <= shape[0]:
            raise ToneMapError(
                f"count must be in [1, {shape[0]}], got {count}"
            )
        run_shape = (count,) + tuple(shape[1:])
        if timeout is None:
            timeout = self._default_timeout_s
        spare = retries
        hedge_spare = self._timeout_retries
        start = self._clock.now()
        while True:
            generation = self._generation
            executor = self._executor
            directive = None
            force_transient = False
            if self.faults is not None:
                index, kinds = self.faults.next_attempt()
                if "slow" in kinds:
                    self._clock.sleep(self.faults.plan.jitter_s(index))
                force_transient = "exhaust" in kinds
                directive = self.faults.worker_directive(kinds)
            out_lease = self.arena.lease_output(
                run_shape, np.float32, force_transient=force_transient
            )
            # Arm the watchdog for this attempt: each attempt gets the
            # full budget (explicit timeout, else the p95-derived
            # threshold when enabled) — a kill exactly at the deadline
            # must still leave the hedged replay worth taking.
            hang_s = (
                timeout if timeout is not None else self._hang_threshold_s()
            )
            attempt_deadline = (
                None if hang_s is None else self._clock.now() + hang_s
            )
            token = (
                None
                if attempt_deadline is None
                else self._watchdog.watch(attempt_deadline)
            )
            futures = []
            try:
                # Plain loop, not a comprehension: if a submit raises midway
                # (pool shutting down), the futures already submitted must
                # stay tracked so the except path can quiesce them.
                for slab_index, (lo, hi) in enumerate(
                    _slab_bounds(count, self._active)
                ):
                    futures.append(
                        executor.submit(
                            _run_slab,
                            in_lease.segment_name,
                            out_lease.segment_name,
                            run_shape,
                            lo,
                            hi,
                            in_lease.cacheable,
                            out_lease.cacheable,
                            directive if slab_index == 0 else None,
                        )
                    )
                for future in futures:
                    future.result()
            except BrokenProcessPool as exc:
                # A worker died.  The broken executor rejects all work
                # and its futures are already resolved — but *surviving*
                # worker processes may still be mid-write into the
                # output slab (the manager thread fails futures before
                # it finishes terminating the other workers).  Join the
                # whole broken executor first: releasing the slab while
                # a straggler still writes it would hand a
                # concurrently-mutating segment to the replay or a
                # neighbouring batch — silent cross-batch corruption.
                if token is not None:
                    self._watchdog.cancel(token)
                for future in futures:
                    future.cancel()
                wait(futures)
                self._shutdown_broken(executor)
                out_lease.release()
                stale = self._generation != generation
                self._respawn(generation)
                if token is not None and token.expired:
                    # The watchdog killed this attempt: a timeout, not an
                    # organic crash — spend the hedge budget, not the
                    # crash budget.
                    now = self._clock.now()
                    used = self._timeout_retries - hedge_spare
                    if hedge_spare <= 0:
                        raise ShardTimeoutError(
                            f"{count}-frame batch exceeded its execution "
                            f"budget ({(now - start) * 1e3:.0f} ms elapsed"
                            f", {used} hedged replay(s)) — workers killed "
                            "by the shard watchdog",
                            elapsed_ms=(now - start) * 1e3,
                            retries=used,
                        ) from exc
                    hedge_spare -= 1
                    with self._count_lock:
                        self._hedged_replays += 1
                elif not stale:
                    # Only fresh-generation crashes consume a retry: a
                    # batch that merely raced a concurrent respawn (its
                    # executor was already replaced) replays for free.
                    if spare <= 0:
                        raise ShardCrashError(
                            "shard worker died again while replaying a "
                            f"{count}-frame batch (respawns so far: "
                            f"{self._respawns}) — workload appears to "
                            "crash workers persistently"
                        ) from exc
                    spare -= 1
                continue
            except BaseException:
                # Quiesce before releasing: the surviving slab workers are
                # still writing into the output segment (and reading the
                # input), and release would recycle it to a concurrent batch
                # — silent cross-batch corruption.  Cancel what hasn't
                # started, wait out what has.
                if token is not None:
                    self._watchdog.cancel(token)
                for future in futures:
                    future.cancel()
                wait(futures)
                out_lease.release()
                raise
            if token is not None:
                self._watchdog.cancel(token)
            break
        # Batches complete concurrently on the service's pool threads;
        # the gate benchmarks divide by these, so no lost increments.
        with self._count_lock:
            self._batches += 1
            self._frames += count
            self._bytes_served += out_lease.nbytes
            self._durations.append(self._clock.now() - start)
        return out_lease

    def run_stack(
        self, stack: np.ndarray, zero_copy: bool = False
    ) -> np.ndarray | ArenaLease:
        """Tone-map an ``(N, H, W[, 3])`` float stack across the shards.

        One staging copy moves the caller's array into a pooled arena
        stack (callers that can write frames into :meth:`lease_input`
        directly skip even that — see :meth:`run_leased`).  By default
        returns a freshly materialized float32 stack, exactly as before;
        with ``zero_copy=True`` returns the output
        :class:`~repro.runtime.arena.ArenaLease` instead — read
        ``lease.array`` and ``release()`` (or ``materialize()``) it.
        """
        stack = np.ascontiguousarray(stack, dtype=np.float32)
        if stack.ndim not in (3, 4):
            raise ToneMapError(
                f"run_stack expects (N, H, W) or (N, H, W, 3), got {stack.shape}"
            )
        if stack.shape[0] == 0:
            raise ToneMapError("batch must contain at least one image")
        in_lease = self.arena.lease_input(stack.shape, np.float32)
        try:
            in_lease.array[:] = stack
            self.arena._count_copy_in(stack.nbytes)
            out_lease = self.run_leased(in_lease)
        finally:
            in_lease.release()
        if zero_copy:
            return out_lease
        return out_lease.materialize()

    def run_batch(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Tone-map a same-shape batch; drop-in for ``BatchToneMapper.map``.

        Frames are written straight into an arena input stack (no
        ``np.stack`` staging) and the outputs are read-only views into
        one materialized result buffer (no per-image re-copy or
        re-validation — the pipeline's output invariants hold by
        construction).
        """
        if len(images) == 0:
            raise ToneMapError("batch must contain at least one image")
        for image in images:
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
        shape = images[0].pixels.shape
        for image in images:
            if image.pixels.shape != shape:
                raise ToneMapError(
                    f"batch images must share one shape; got {shape} and "
                    f"{image.pixels.shape} (group by shape first)"
                )
        stack_shape = (len(images),) + shape
        in_lease = self.arena.lease_input(stack_shape, np.float32)
        try:
            for i, image in enumerate(images):
                in_lease.array[i] = image.pixels
            self.arena._count_copy_in(
                int(np.prod(stack_shape)) * 4
            )
            out = self.run_leased(in_lease).materialize()
        finally:
            in_lease.release()
        return tuple(
            HDRImage.adopt(out[i], name=f"{images[i].name}:tonemapped")
            for i in range(len(images))
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def data_plane_stats(self) -> DataPlaneStats:
        """Counters proving (or disproving) the zero-copy claims."""
        with self._count_lock:
            return DataPlaneStats(
                batches=self._batches,
                frames=self._frames,
                bytes_served=self._bytes_served,
                worker_respawns=self._respawns,
                arena=self.arena.stats,
            )

    def drain(self) -> None:
        """Graceful close: refuse new batches, then shut down.

        :meth:`close` already waits for running slabs — the executor
        shutdown blocks until in-flight batches finish — so the only
        thing drain adds is the admission cut: a ``run_leased`` /
        ``run_batch`` that arrives after this call fails fast with
        :class:`~repro.errors.ToneMapError` instead of racing the
        teardown.
        """
        self._draining = True
        self.close()

    def close(self) -> None:
        """Shut the workers down (waiting for running slabs), then the arena.

        The watchdog outlives the executor shutdown on purpose: if a
        hung batch is still in flight, ``shutdown(wait=True)`` only
        returns once the watchdog frees it.  Shutdown goes through the
        exactly-once guard — a crash-handling batch may be reaping this
        same executor concurrently (see :meth:`_shutdown_broken`).
        """
        self._shutdown_broken(self._executor)
        self._watchdog.close()
        if self._owns_arena:
            self.arena.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
