"""Process-pool sharding backend over a persistent shared-memory arena.

The thread-pooled :class:`~repro.runtime.service.ToneMapService` overlaps
the NumPy stages (which release the GIL), but the fixed-point model still
carries Python-level glue — the tap loop, quantization bookkeeping — that
serializes on the GIL.  :class:`ShardPool` escapes it: a batch's
``(N, H, W[, 3])`` pixel stack lives in a POSIX shared-memory segment,
the N images are partitioned into contiguous slabs, and each slab is
tone-mapped by a separate **worker process** that writes its results
straight back into a shared output slab.  Only segment names and slab
bounds cross the process boundary — never pixel data.

Unlike the PR 2 incarnation, segments are *persistent*: the pool owns a
:class:`~repro.runtime.arena.ShmArena` whose pooled input stacks and
output-slab ring are reused across batches, so steady-state serving does
zero SHM allocations and zero parent-side staging copies.  The data
plane has three entry points, fastest first:

* :meth:`run_leased` — fully zero-copy: the producer already wrote the
  frames into an arena input stack (leased via ``pool.arena`` or
  :meth:`lease_input`); results come back as a reference-counted
  :class:`~repro.runtime.arena.ArenaLease` view.  The streaming ingestor
  uses this path.
* :meth:`run_stack` — one staging copy in (the caller holds an ordinary
  array); zero-copy out with ``zero_copy=True``, else one materialize
  copy for safety.
* :meth:`run_batch` — the :class:`HDRImage` convenience; frames are
  written into the arena one by one (no intermediate ``np.stack``) and
  outputs are adopted views into one materialized buffer.

**Crash recovery.**  A worker dying (OOM kill, segfault) breaks the
whole ``ProcessPoolExecutor``; :meth:`ShardPool.run_leased` absorbs
that: it releases the batch's output slab, respawns the worker set
(once per crash, however many batches observed it — generation
counted), and replays the batch on the fresh workers, since its input
frames still sit untouched in the arena.  Only a persistently crashing
workload (the replay dies too) surfaces
:class:`~repro.errors.ShardCrashError`.  ``tests/test_fault_injection.py``
SIGKILLs real workers to hold the no-leak / no-hang / autoscaler-alive
contract.

Workers attach to a segment **once** and cache the mapping by name —
valid for the life of the arena, because pooled segments are only
unlinked at :meth:`close`.  Attachment never touches the resource
tracker: under the default ``fork`` start method the tracker process is
*shared* with the parent, so the historical attach-then-unregister dance
removed the parent's own registration — unlink then logged a KeyError
storm in the tracker and, had the parent died first, the segment would
have leaked in ``/dev/shm``.  ``tests/test_arena.py`` scans ``/dev/shm``
to keep the no-leak property honest.

Each worker holds its own :class:`~repro.runtime.batch.BatchToneMapper`,
so per-kernel Gaussian coefficients and (for fixed-point configs) the
quantized coefficient ROM are built once per process at pool start-up.
Because ``blur_fn`` closures do not pickle, the fixed-point path is
requested by shipping the frozen, picklable
:class:`~repro.tonemap.fixed_blur.FixedBlurConfig` instead.

**Autoscaling.**  With ``autoscale=True`` the pool starts ``max_shards``
worker processes eagerly (they are cheap, warm, and never forked after
caller threads exist) but fans batches out across only
:attr:`active_shards` of them.  :class:`ShardAutoscaler` widens the
active set when queue depth or p95 latency shows sustained pressure and
narrows it after sustained idleness — both with hysteresis
(:class:`AutoscalePolicy`), so a single burst does not flap the width.
Parked workers cost memory, not CPU; narrowing keeps cache-hot workers
busy instead of spraying small slabs across cold ones.  The service
feeds observations after every batch and surfaces the active width via
``ServiceStats``.

Outputs remain bit-identical to the in-process
:class:`~repro.runtime.batch.BatchToneMapper` path: workers run the same
stack code (:meth:`BatchToneMapper.run_stack`) and the float64→float32
store happens once either way.  Throughput and the zero-copy counters
are tracked by ``benchmarks/bench_runtime.py`` (see
``docs/benchmarks.md``).
"""

from __future__ import annotations

import inspect
import multiprocessing as mp
import os
import sys
import threading
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ShardCrashError, ToneMapError
from repro.image.hdr import HDRImage
from repro.runtime.arena import ArenaLease, ArenaStats, ShmArena
from repro.runtime.batch import BatchToneMapper
from repro.tonemap.fixed_blur import FixedBlurConfig, make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams

#: Worker-process global: the per-process mapper with warm caches.
_WORKER_MAPPER: Optional[BatchToneMapper] = None

#: Worker-process global: cached attachments to pooled arena segments,
#: keyed by POSIX name.  Pooled segments live until the arena closes, so
#: a cached mapping never goes stale; transient segments bypass this.
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}

#: Python 3.13+ can attach without registering with the resource tracker.
_SHM_HAS_TRACK = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters


def _init_worker(
    params: ToneMapParams,
    fixed_config: Optional[FixedBlurConfig],
    fused: bool = False,
    threads: Optional[int] = None,
    plan=None,
) -> None:
    """Build this worker's mapper once; subsequent slabs reuse its caches.

    ``plan`` is a pickled :class:`~repro.planner.plan.ExecutionPlan` (or
    ``None``): shipping the parent's plan means every worker replays the
    parent's dispatch decisions exactly, whatever env vars the worker
    process happens to see.
    """
    global _WORKER_MAPPER
    if fixed_config is not None:
        params = replace(params, blur_fn=make_fixed_blur_fn(fixed_config))
    _WORKER_MAPPER = BatchToneMapper(
        params, fused=fused, threads=threads, plan=plan
    )
    if fixed_config is not None:
        # Quantize the coefficient ROM now so the first slab pays nothing.
        fixed_config.quantized_coefficients(_WORKER_MAPPER.kernel)


def _worker_ready() -> bool:
    """No-op task used to force worker start-up at pool construction."""
    return _WORKER_MAPPER is not None


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without touching the resource tracker.

    The parent created the segment and owns its lifetime; it is already
    registered with the tracker there.  Under ``fork`` the tracker
    process is shared, so letting the attach register (and then
    unregistering, as the old code did) would delete the *parent's*
    registration: unlink later double-unregisters (KeyError noise in the
    tracker) and a parent crash before unlink would leak the segment.
    Python 3.13 exposes ``track=False`` for exactly this; earlier
    versions need the register call suppressed for the duration.
    """
    if _SHM_HAS_TRACK:
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _attach(name: str, cacheable: bool) -> shared_memory.SharedMemory:
    """Attach to a segment, caching pooled attachments for the pool's life."""
    if cacheable:
        shm = _WORKER_SEGMENTS.get(name)
        if shm is None:
            shm = _attach_untracked(name)
            _WORKER_SEGMENTS[name] = shm
        return shm
    return _attach_untracked(name)


def _run_slab(
    in_name: str,
    out_name: str,
    shape: tuple,
    lo: int,
    hi: int,
    in_cacheable: bool,
    out_cacheable: bool,
) -> tuple[int, int]:
    """Tone-map images ``lo:hi`` of the shared input stack in this worker.

    Robust against mid-flight errors: a transient attachment is closed on
    every exit path, and a failure before the output attach never leaks
    the input attachment.  Cached attachments are owned by the process
    and intentionally survive.
    """
    in_shm = _attach(in_name, in_cacheable)
    try:
        out_shm = _attach(out_name, out_cacheable)
        try:
            stack = np.ndarray(shape, dtype=np.float32, buffer=in_shm.buf)
            out = np.ndarray(shape, dtype=np.float32, buffer=out_shm.buf)
            _WORKER_MAPPER.run_stack(stack[lo:hi], out=out[lo:hi])
        finally:
            if not out_cacheable:
                out_shm.close()
    finally:
        if not in_cacheable:
            in_shm.close()
    return lo, hi


def _slab_bounds(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``count`` images into at most ``shards`` contiguous slabs."""
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoscalePolicy:
    """When the autoscaler widens or narrows the active shard set.

    Pressure (grow signal) is queue depth exceeding the active width —
    batches are waiting that an extra shard could absorb — or, when
    ``target_p95_ms`` is set, the p95 batch latency exceeding it.
    Idleness (shrink signal) is queue depth below the active width with
    no pressure.  Hysteresis: a grow needs ``grow_patience`` consecutive
    pressure observations, a shrink ``shrink_patience`` consecutive idle
    ones, and any contradicting observation resets both counters — so a
    lone burst or a lone quiet beat never flaps the width.
    """

    min_shards: int = 1
    max_shards: int = 2
    target_p95_ms: Optional[float] = None
    grow_patience: int = 2
    shrink_patience: int = 6

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ToneMapError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ToneMapError(
                f"max_shards ({self.max_shards}) must be >= min_shards "
                f"({self.min_shards})"
            )
        if self.grow_patience < 1 or self.shrink_patience < 1:
            raise ToneMapError("autoscale patience values must be >= 1")


class ShardAutoscaler:
    """Pure hysteresis logic: observations in, target width out.

    Deterministic and free of clocks or threads so tests can drive it
    observation by observation; :class:`ShardPool` owns the single
    instance and applies its decisions.
    """

    def __init__(self, policy: AutoscalePolicy):
        self.policy = policy
        self._hot = 0
        self._cold = 0

    def observe(
        self, active: int, queue_depth: int, p95_ms: Optional[float] = None
    ) -> int:
        """Feed one observation; returns the new target active width."""
        policy = self.policy
        pressure = queue_depth > active or (
            policy.target_p95_ms is not None
            and p95_ms is not None
            and p95_ms > policy.target_p95_ms
        )
        idle = not pressure and queue_depth < active
        if pressure:
            self._hot += 1
            self._cold = 0
        elif idle:
            self._cold += 1
            self._hot = 0
        else:
            self._hot = 0
            self._cold = 0
        if self._hot >= policy.grow_patience and active < policy.max_shards:
            self._hot = 0
            return active + 1
        if self._cold >= policy.shrink_patience and active > policy.min_shards:
            self._cold = 0
            return active - 1
        return min(max(active, policy.min_shards), policy.max_shards)


@dataclass(frozen=True)
class DataPlaneStats:
    """Per-pool data-plane counters (arena counters plus batch count).

    ``copies_per_frame`` is the headline number: parent-side staging
    bytes (copy-in plus materialize) per frame served, as a fraction of
    the frame size.  The PR 2 cycle measured 3.0 (stack, copy-in, copy
    out — and a fourth inside ``HDRImage``); the zero-copy path measures
    0.0.
    """

    batches: int = 0
    frames: int = 0
    bytes_served: int = 0
    worker_respawns: int = 0
    arena: ArenaStats = ArenaStats()

    @property
    def copies_per_frame(self) -> float:
        """Staging bytes per frame-byte served (3.0 legacy, 0.0 zero-copy)."""
        if self.bytes_served <= 0:
            return 0.0
        return self.bytes_staged / self.bytes_served

    @property
    def bytes_staged(self) -> int:
        """Total parent-side staging traffic (copy-in + materialize)."""
        return self.arena.bytes_copied_in + self.arena.bytes_materialized


class ShardPool:
    """Tone-maps batches by sharding them across worker processes.

    Parameters
    ----------
    params:
        Pipeline parameters.  ``params.blur_fn`` must be ``None`` — a
        closure cannot cross the process boundary; request the fixed-point
        path with ``fixed_config`` instead.
    shards:
        Initial (and, without autoscaling, fixed) active worker count.
    fixed_config:
        When given, every worker blurs with the bit-accurate fixed-point
        model built from this config (batched across its whole slab).
    start_method:
        Multiprocessing start method; defaults to ``fork`` on Linux (cheap
        start-up, inherited imports) and ``spawn`` elsewhere (forking
        after BLAS/framework threads start is unsafe on macOS).
    autoscale:
        Enable the queue-depth / latency autoscaler.  ``max_shards``
        workers are started eagerly (all forked before any caller thread
        exists); the *active* set grows and shrinks between ``shards``
        (as minimum) and ``max_shards`` under
        :class:`AutoscalePolicy` hysteresis.
    max_shards:
        Ceiling for the active set; defaults to the host's CPU count (at
        least ``shards``).  Ignored unless ``autoscale``.
    policy:
        Autoscale policy override; defaults to
        ``AutoscalePolicy(min_shards=shards, max_shards=max_shards)``.
    arena:
        Share an existing :class:`~repro.runtime.arena.ShmArena` instead
        of owning one (the owner closes it).
    arena_slots:
        Ring/pool depth per size class for an owned arena.
    fused:
        Workers run their slabs through the fused band engine
        (:mod:`repro.runtime.fused`) instead of the staged stack path.
        Float-only — incompatible with ``fixed_config``.
    fused_threads:
        Fused worker threads *per worker process*; defaults to **1** —
        the pool's parallelism model is one core per shard, so letting
        each of N workers spawn ``os.cpu_count()`` compute threads (the
        in-process default) would oversubscribe the host N-fold.  Raise
        it only when ``shards * fused_threads`` fits the core budget.
    plan:
        An :class:`~repro.planner.plan.ExecutionPlan`; it is pickled to
        every worker so each one replays the parent's dispatch decisions
        (engine, band budget, calibration profile) exactly.  Explicit
        ``fused``/``fused_threads`` arguments still win over the plan.
        The per-process thread default stays **1** even under a plan —
        the plan's ``threads`` describes the in-process engine, and N
        workers × plan-threads would oversubscribe the host.

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        params: Optional[ToneMapParams] = None,
        shards: int = 2,
        fixed_config: Optional[FixedBlurConfig] = None,
        start_method: Optional[str] = None,
        autoscale: bool = False,
        max_shards: Optional[int] = None,
        policy: Optional[AutoscalePolicy] = None,
        arena: Optional[ShmArena] = None,
        arena_slots: int = 4,
        fused: bool = False,
        fused_threads: Optional[int] = None,
        plan=None,
    ):
        params = params if params is not None else ToneMapParams()
        if shards < 1:
            raise ToneMapError(f"shards must be >= 1, got {shards}")
        if params.blur_fn is not None:
            raise ToneMapError(
                "blur_fn closures cannot cross the process boundary; pass "
                "fixed_config=FixedBlurConfig(...) and let workers rebuild it"
            )
        if plan is not None and not fused:
            fused = plan.engine == "fused" and fixed_config is None
        if fused and fixed_config is not None:
            raise ToneMapError(
                "the fused engine is float-only; drop fused or fixed_config"
            )
        if fused and fused_threads is None:
            # One fused thread per worker process: the pool already
            # claims one core per shard, so the in-process default
            # (cpu_count) would oversubscribe shards-fold.
            fused_threads = 1
        if start_method is None:
            # fork only on Linux: macOS lists it but CPython switched its
            # default to spawn because forking after BLAS/framework
            # threads start is unsafe there.
            start_method = (
                "fork"
                if sys.platform == "linux"
                and "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        self.shards = shards
        self.params = params
        self.fixed_config = fixed_config
        self.fused = fused
        self.fused_threads = fused_threads
        self.plan = plan
        if autoscale:
            if max_shards is None:
                max_shards = max(shards, os.cpu_count() or shards)
            if max_shards < shards:
                raise ToneMapError(
                    f"max_shards ({max_shards}) must be >= shards ({shards})"
                )
            self._policy = policy or AutoscalePolicy(
                min_shards=shards, max_shards=max_shards
            )
            if not (
                self._policy.min_shards
                <= shards
                <= self._policy.max_shards
            ):
                raise ToneMapError(
                    f"shards ({shards}) must lie within the autoscale "
                    f"bounds [{self._policy.min_shards}, "
                    f"{self._policy.max_shards}] — only that many worker "
                    "processes exist"
                )
            self._autoscaler: Optional[ShardAutoscaler] = ShardAutoscaler(
                self._policy
            )
            workers = self._policy.max_shards
        else:
            self._policy = None
            self._autoscaler = None
            workers = shards
        self._workers = workers
        self._active = shards
        self._scale_ups = 0
        self._scale_downs = 0
        self._scale_lock = threading.Lock()
        self._owns_arena = arena is None
        self.arena = arena if arena is not None else ShmArena(slots=arena_slots)
        self._batches = 0
        self._frames = 0
        self._bytes_served = 0
        self._count_lock = threading.Lock()
        self._mp_context = mp.get_context(start_method)
        self._respawn_lock = threading.Lock()
        self._generation = 0
        self._respawns = 0
        self._executor = self._spawn_executor()

    def _spawn_executor(self) -> ProcessPoolExecutor:
        """Start a full worker set and prove every initializer ran.

        One pending task per worker forces the executor to start all
        processes, and resolving the futures proves each initializer
        ran.  At construction no process is ever forked after caller
        threads exist — autoscaling only varies how many of these warm
        workers a batch fans out across.  (A *respawn* after a worker
        crash necessarily forks while service threads are live; the
        workers only run NumPy + repro code, which tolerates that, and
        the alternative — a permanently broken pool — is worse.)
        """
        executor = ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=self._mp_context,
            initializer=_init_worker,
            initargs=(
                self.params,
                self.fixed_config,
                self.fused,
                self.fused_threads,
                self.plan,
            ),
        )
        for future in [
            executor.submit(_worker_ready) for _ in range(self._workers)
        ]:
            if not future.result():  # pragma: no cover - defensive
                raise ToneMapError("shard worker failed to initialize")
        return executor

    def _respawn(self, generation: int) -> None:
        """Replace a broken executor with a fresh warm worker set.

        Idempotent per executor generation: concurrent batches that all
        observed the same crash race here, the first one rebuilds, the
        rest see the bumped generation and return — so one crash costs
        one respawn, not one per in-flight batch.
        """
        with self._respawn_lock:
            if self._generation != generation:
                return  # another thread already replaced this executor
            broken = self._executor
            self._executor = self._spawn_executor()
            self._generation += 1
            self._respawns += 1
        broken.shutdown(wait=False)

    @property
    def worker_respawns(self) -> int:
        """Worker-set rebuilds performed after crashes (0 in health)."""
        return self._respawns

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker processes.

        Exposed for operational tooling and the fault-injection tests
        (which SIGKILL one to prove the pool recovers); the list is a
        snapshot — workers may be respawned at any time.
        """
        return [
            process.pid for process in self._executor._processes.values()
        ]

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    @property
    def active_shards(self) -> int:
        """Workers a batch currently fans out across."""
        return self._active

    @property
    def autoscaling(self) -> bool:
        """Whether :meth:`observe` feeds a live autoscaler."""
        return self._autoscaler is not None

    @property
    def scale_ups(self) -> int:
        return self._scale_ups

    @property
    def scale_downs(self) -> int:
        return self._scale_downs

    def observe(
        self, queue_depth: int, p95_ms: Optional[float] = None
    ) -> int:
        """Feed one load observation (queue depth, optional p95 latency).

        The service calls this after every batch; the pool applies the
        autoscaler's decision and returns the (possibly new) active
        width.  A no-op without ``autoscale=True``.
        """
        if self._autoscaler is None:
            return self._active
        with self._scale_lock:
            target = self._autoscaler.observe(
                self._active, queue_depth, p95_ms
            )
            if target > self._active:
                self._scale_ups += 1
            elif target < self._active:
                self._scale_downs += 1
            self._active = target
            return target

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def lease_input(self, shape: tuple, dtype=np.float32) -> ArenaLease:
        """Lease an arena input stack for producers to write frames into."""
        return self.arena.lease_input(shape, dtype)

    def run_leased(
        self,
        in_lease: ArenaLease,
        count: Optional[int] = None,
        retries: int = 1,
    ) -> ArenaLease:
        """Tone-map a stack already resident in the arena (zero-copy).

        ``in_lease`` is an input lease whose array holds ``count`` frames
        (default: all of them; pass fewer for a partially filled stack).
        The caller keeps ownership of ``in_lease`` — release it when the
        slot is no longer needed (the ingestor reuses its stack across
        batches).  Returns an output lease viewing the results; release
        or materialize it.

        **Crash recovery.**  A worker dying mid-batch (OOM kill, crash)
        breaks the whole ``ProcessPoolExecutor``; this method then
        releases the batch's output slab, respawns the worker set once
        (see :meth:`_respawn`), and replays the batch up to ``retries``
        times — the input frames still sit untouched in ``in_lease``,
        so a replay is a pure re-dispatch.  A replay that crashes again
        raises :class:`~repro.errors.ShardCrashError`; either way no
        lease is leaked and the pool stays usable for later batches.
        """
        if in_lease.array is None:
            raise ToneMapError("cannot run a released arena lease")
        shape = in_lease.array.shape
        if count is None:
            count = shape[0]
        if not 1 <= count <= shape[0]:
            raise ToneMapError(
                f"count must be in [1, {shape[0]}], got {count}"
            )
        run_shape = (count,) + tuple(shape[1:])
        spare = retries
        while True:
            generation = self._generation
            executor = self._executor
            out_lease = self.arena.lease_output(run_shape, np.float32)
            futures = []
            try:
                # Plain loop, not a comprehension: if a submit raises midway
                # (pool shutting down), the futures already submitted must
                # stay tracked so the except path can quiesce them.
                for lo, hi in _slab_bounds(count, self._active):
                    futures.append(
                        executor.submit(
                            _run_slab,
                            in_lease.segment_name,
                            out_lease.segment_name,
                            run_shape,
                            lo,
                            hi,
                            in_lease.cacheable,
                            out_lease.cacheable,
                        )
                    )
                for future in futures:
                    future.result()
            except BrokenProcessPool as exc:
                # A worker died.  The broken executor rejects all work
                # and its futures are already resolved — but *surviving*
                # worker processes may still be mid-write into the
                # output slab (the manager thread fails futures before
                # it finishes terminating the other workers).  Join the
                # whole broken executor first: releasing the slab while
                # a straggler still writes it would hand a
                # concurrently-mutating segment to the replay or a
                # neighbouring batch — silent cross-batch corruption.
                for future in futures:
                    future.cancel()
                wait(futures)
                executor.shutdown(wait=True)
                out_lease.release()
                stale = self._generation != generation
                self._respawn(generation)
                if not stale:
                    # Only fresh-generation crashes consume a retry: a
                    # batch that merely raced a concurrent respawn (its
                    # executor was already replaced) replays for free.
                    if spare <= 0:
                        raise ShardCrashError(
                            "shard worker died again while replaying a "
                            f"{count}-frame batch (respawns so far: "
                            f"{self._respawns}) — workload appears to "
                            "crash workers persistently"
                        ) from exc
                    spare -= 1
                continue
            except BaseException:
                # Quiesce before releasing: the surviving slab workers are
                # still writing into the output segment (and reading the
                # input), and release would recycle it to a concurrent batch
                # — silent cross-batch corruption.  Cancel what hasn't
                # started, wait out what has.
                for future in futures:
                    future.cancel()
                wait(futures)
                out_lease.release()
                raise
            break
        # Batches complete concurrently on the service's pool threads;
        # the gate benchmarks divide by these, so no lost increments.
        with self._count_lock:
            self._batches += 1
            self._frames += count
            self._bytes_served += out_lease.nbytes
        return out_lease

    def run_stack(
        self, stack: np.ndarray, zero_copy: bool = False
    ) -> np.ndarray | ArenaLease:
        """Tone-map an ``(N, H, W[, 3])`` float stack across the shards.

        One staging copy moves the caller's array into a pooled arena
        stack (callers that can write frames into :meth:`lease_input`
        directly skip even that — see :meth:`run_leased`).  By default
        returns a freshly materialized float32 stack, exactly as before;
        with ``zero_copy=True`` returns the output
        :class:`~repro.runtime.arena.ArenaLease` instead — read
        ``lease.array`` and ``release()`` (or ``materialize()``) it.
        """
        stack = np.ascontiguousarray(stack, dtype=np.float32)
        if stack.ndim not in (3, 4):
            raise ToneMapError(
                f"run_stack expects (N, H, W) or (N, H, W, 3), got {stack.shape}"
            )
        if stack.shape[0] == 0:
            raise ToneMapError("batch must contain at least one image")
        in_lease = self.arena.lease_input(stack.shape, np.float32)
        try:
            in_lease.array[:] = stack
            self.arena._count_copy_in(stack.nbytes)
            out_lease = self.run_leased(in_lease)
        finally:
            in_lease.release()
        if zero_copy:
            return out_lease
        return out_lease.materialize()

    def run_batch(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Tone-map a same-shape batch; drop-in for ``BatchToneMapper.map``.

        Frames are written straight into an arena input stack (no
        ``np.stack`` staging) and the outputs are read-only views into
        one materialized result buffer (no per-image re-copy or
        re-validation — the pipeline's output invariants hold by
        construction).
        """
        if len(images) == 0:
            raise ToneMapError("batch must contain at least one image")
        for image in images:
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
        shape = images[0].pixels.shape
        for image in images:
            if image.pixels.shape != shape:
                raise ToneMapError(
                    f"batch images must share one shape; got {shape} and "
                    f"{image.pixels.shape} (group by shape first)"
                )
        stack_shape = (len(images),) + shape
        in_lease = self.arena.lease_input(stack_shape, np.float32)
        try:
            for i, image in enumerate(images):
                in_lease.array[i] = image.pixels
            self.arena._count_copy_in(
                int(np.prod(stack_shape)) * 4
            )
            out = self.run_leased(in_lease).materialize()
        finally:
            in_lease.release()
        return tuple(
            HDRImage.adopt(out[i], name=f"{images[i].name}:tonemapped")
            for i in range(len(images))
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def data_plane_stats(self) -> DataPlaneStats:
        """Counters proving (or disproving) the zero-copy claims."""
        with self._count_lock:
            return DataPlaneStats(
                batches=self._batches,
                frames=self._frames,
                bytes_served=self._bytes_served,
                worker_respawns=self._respawns,
                arena=self.arena.stats,
            )

    def close(self) -> None:
        """Shut the workers down (waiting for running slabs), then the arena."""
        self._executor.shutdown(wait=True)
        if self._owns_arena:
            self.arena.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
