"""Process-pool sharding backend: batches partitioned across workers.

The thread-pooled :class:`~repro.runtime.service.ToneMapService` overlaps
the NumPy stages (which release the GIL), but the fixed-point model still
carries Python-level glue — the tap loop, quantization bookkeeping — that
serializes on the GIL.  :class:`ShardPool` escapes it: a batch's
``(N, H, W[, 3])`` pixel stack is placed in POSIX shared memory, the N
images are partitioned into contiguous slabs, and each slab is tone-mapped
by a separate **worker process** that writes its results straight back
into a shared output stack.  Only shared-memory names and slab bounds
cross the process boundary — never pixel data.

Each worker holds its own :class:`~repro.runtime.batch.BatchToneMapper`,
so the per-kernel Gaussian coefficients and (for fixed-point configs) the
quantized coefficient ROM are built once per process at pool start-up and
reused for every slab.  Because ``blur_fn`` closures do not pickle, the
fixed-point path is requested by shipping the frozen, picklable
:class:`~repro.tonemap.fixed_blur.FixedBlurConfig` instead; workers
rebuild the closure with :func:`~repro.tonemap.fixed_blur.make_fixed_blur_fn`.

Outputs are bit-identical to the in-process
:class:`~repro.runtime.batch.BatchToneMapper` path: workers run the same
stack code (:meth:`BatchToneMapper.run_stack`) and the float64→float32
store happens once either way.  Throughput of the sharded path is tracked
by ``benchmarks/bench_runtime.py`` (see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import multiprocessing as mp
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from multiprocessing import shared_memory
from typing import Optional, Sequence

import numpy as np

from repro.errors import ToneMapError
from repro.image.hdr import HDRImage
from repro.runtime.batch import BatchToneMapper
from repro.tonemap.fixed_blur import FixedBlurConfig, make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams

#: Worker-process global: the per-process mapper with warm caches.
_WORKER_MAPPER: Optional[BatchToneMapper] = None


def _init_worker(
    params: ToneMapParams, fixed_config: Optional[FixedBlurConfig]
) -> None:
    """Build this worker's mapper once; subsequent slabs reuse its caches."""
    global _WORKER_MAPPER
    if fixed_config is not None:
        params = replace(params, blur_fn=make_fixed_blur_fn(fixed_config))
    _WORKER_MAPPER = BatchToneMapper(params)
    if fixed_config is not None:
        # Quantize the coefficient ROM now so the first slab pays nothing.
        fixed_config.quantized_coefficients(_WORKER_MAPPER.kernel)


def _worker_ready() -> bool:
    """No-op task used to force worker start-up at pool construction."""
    return _WORKER_MAPPER is not None


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without re-registering it.

    Before Python 3.13 (``track=False``), attaching registers the segment
    with this process's resource tracker a second time; the parent — which
    created the segment and owns its lifetime — already unlinks it, so the
    duplicate registration only produces spurious "leaked shared_memory"
    warnings at worker shutdown.  Undo it (best-effort: the private API
    may move).
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return shm


def _run_slab(
    in_name: str, out_name: str, shape: tuple, lo: int, hi: int
) -> tuple[int, int]:
    """Tone-map images ``lo:hi`` of the shared input stack in this worker."""
    in_shm = _attach(in_name)
    out_shm = _attach(out_name)
    try:
        stack = np.ndarray(shape, dtype=np.float32, buffer=in_shm.buf)
        out = np.ndarray(shape, dtype=np.float32, buffer=out_shm.buf)
        _WORKER_MAPPER.run_stack(stack[lo:hi], out=out[lo:hi])
    finally:
        in_shm.close()
        out_shm.close()
    return lo, hi


def _slab_bounds(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``count`` images into at most ``shards`` contiguous slabs."""
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ShardPool:
    """Tone-maps batches by sharding them across worker processes.

    Parameters
    ----------
    params:
        Pipeline parameters.  ``params.blur_fn`` must be ``None`` — a
        closure cannot cross the process boundary; request the fixed-point
        path with ``fixed_config`` instead.
    shards:
        Number of worker processes.  All are started (and their caches
        warmed) eagerly in the constructor, so no process is ever forked
        after caller threads exist.
    fixed_config:
        When given, every worker blurs with the bit-accurate fixed-point
        model built from this config (batched across its whole slab).
    start_method:
        Multiprocessing start method; defaults to ``fork`` on Linux (cheap
        start-up, inherited imports) and ``spawn`` elsewhere (forking
        after BLAS/framework threads start is unsafe on macOS).

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        params: ToneMapParams = ToneMapParams(),
        shards: int = 2,
        fixed_config: Optional[FixedBlurConfig] = None,
        start_method: Optional[str] = None,
    ):
        if shards < 1:
            raise ToneMapError(f"shards must be >= 1, got {shards}")
        if params.blur_fn is not None:
            raise ToneMapError(
                "blur_fn closures cannot cross the process boundary; pass "
                "fixed_config=FixedBlurConfig(...) and let workers rebuild it"
            )
        if start_method is None:
            # fork only on Linux: macOS lists it but CPython switched its
            # default to spawn because forking after BLAS/framework
            # threads start is unsafe there.
            start_method = (
                "fork"
                if sys.platform == "linux"
                and "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        self.shards = shards
        self.params = params
        self.fixed_config = fixed_config
        self._executor = ProcessPoolExecutor(
            max_workers=shards,
            mp_context=mp.get_context(start_method),
            initializer=_init_worker,
            initargs=(params, fixed_config),
        )
        # Spawn every worker now: one pending task per worker forces the
        # executor to start all processes, and resolving the futures proves
        # each initializer ran.
        for future in [
            self._executor.submit(_worker_ready) for _ in range(shards)
        ]:
            if not future.result():  # pragma: no cover - defensive
                raise ToneMapError("shard worker failed to initialize")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_stack(self, stack: np.ndarray) -> np.ndarray:
        """Tone-map an ``(N, H, W[, 3])`` float stack across the shards.

        Returns a float32 stack of the same shape (the :class:`HDRImage`
        storage dtype, so wrapping the result loses nothing).
        """
        stack = np.ascontiguousarray(stack, dtype=np.float32)
        if stack.ndim not in (3, 4):
            raise ToneMapError(
                f"run_stack expects (N, H, W) or (N, H, W, 3), got {stack.shape}"
            )
        count = stack.shape[0]
        if count == 0:
            raise ToneMapError("batch must contain at least one image")
        in_shm = shared_memory.SharedMemory(create=True, size=stack.nbytes)
        out_shm = shared_memory.SharedMemory(create=True, size=stack.nbytes)
        try:
            shared_in = np.ndarray(
                stack.shape, dtype=np.float32, buffer=in_shm.buf
            )
            shared_in[:] = stack
            futures = [
                self._executor.submit(
                    _run_slab, in_shm.name, out_shm.name, stack.shape, lo, hi
                )
                for lo, hi in _slab_bounds(count, self.shards)
            ]
            for future in futures:
                future.result()
            shared_out = np.ndarray(
                stack.shape, dtype=np.float32, buffer=out_shm.buf
            )
            return shared_out.copy()
        finally:
            in_shm.close()
            in_shm.unlink()
            out_shm.close()
            out_shm.unlink()

    def run_batch(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Tone-map a same-shape batch; drop-in for ``BatchToneMapper.map``."""
        if len(images) == 0:
            raise ToneMapError("batch must contain at least one image")
        for image in images:
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
        shape = images[0].pixels.shape
        for image in images:
            if image.pixels.shape != shape:
                raise ToneMapError(
                    f"batch images must share one shape; got {shape} and "
                    f"{image.pixels.shape} (group by shape first)"
                )
        out = self.run_stack(np.stack([image.pixels for image in images]))
        return tuple(
            HDRImage(out[i], name=f"{images[i].name}:tonemapped")
            for i in range(len(images))
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker processes down, waiting for running slabs."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
