"""Injectable monotonic time for the serving runtime.

The reliability layer is built out of timers: the ingestor's coalescing
deadline and per-frame latency budgets, the shard watchdog's hang
threshold, the circuit breaker's failure window and cooldown.  Testing
timers with real sleeps makes the chaos suite slow and flaky, so every
component that *reads* time takes a :class:`Clock` and defaults to the
singleton :data:`MONOTONIC` — production code pays one attribute lookup,
tests swap in a :class:`FakeClock` and advance it by hand.

One source, one epoch: everything uses ``time.perf_counter`` (monotonic,
sub-microsecond), never wall-clock ``time.time`` — deadlines must not
jump when NTP steps the host clock.  Values from two different ``Clock``
instances are not comparable; components must thread one instance
through (the service hands its clock to the breaker, the ingestor to its
deadline bookkeeping).
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Monotonic time source interface (seconds as ``float``)."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real thing: ``time.perf_counter`` + ``time.sleep``."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class FakeClock(Clock):
    """A hand-cranked clock for deterministic timer tests.

    ``now()`` returns the current fake instant; :meth:`advance` moves it
    forward (never backward — the contract is monotonic, same as the
    real clock).  ``sleep`` advances instead of blocking, so code under
    test that sleeps completes instantly and deterministically.
    Thread-safe: the chaos tests advance it while runtime threads read.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new instant."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backward ({seconds})")
        with self._lock:
            self._now += float(seconds)
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))


#: Shared default instance — stateless, so one is enough for everyone.
MONOTONIC = MonotonicClock()
