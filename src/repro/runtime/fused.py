"""Fused single-pass tone mapping: tiled band dataflow + worker threads.

The paper's accelerator owes its throughput to a fused streaming
dataflow — normalization, Gaussian blur, masking, and adjustment run
concurrently over line buffers with **no intermediate frame buffers**
(the HLS ``DATAFLOW`` pragma).  The staged software path
(:meth:`repro.runtime.batch.BatchToneMapper._run_stack`) is the
opposite: each stage materializes a full-stack float64 temporary and the
whole working set streams through main memory four-plus times.  This
module is the software analogue of the pragma:

* :class:`FusedToneMapPlan` decomposes every image into **row bands**
  sized so one band's scratch stays resident in last-level cache
  (:data:`FUSED_BAND_BYTES`), and runs normalize → separable blur →
  mask → adjust over each band in one pass, writing the output band
  straight into the caller's buffer.
* The vertical blur halo (``radius`` rows above and below a band) comes
  from a reusable **line-buffer ring** of horizontally-blurred rows,
  mirroring the paper's line-buffer architecture: consecutive bands
  share ``2 * radius`` ring rows, so every image row is horizontally
  convolved exactly once.
* :class:`FusedExecutor` adds the ROADMAP's threaded row-partitioned
  execution: a persistent worker pool partitions the ``(image, row)``
  space into contiguous per-thread chunks (NumPy's ufunc inner loops
  release the GIL, so bands on different threads really overlap),
  auto-sized from ``os.cpu_count()`` with a ``REPRO_FUSED_THREADS``
  override.

**Tolerance contract** (tested in ``tests/test_fused.py``): wherever the
staged path's blur resolves to the folded/tiled row convolution (narrow
kernels), fused masks and outputs are **bit-identical** to the staged
path — the horizontal pass shares :func:`~repro.tonemap.gaussian.fold_rows_into`
and the vertical pass replays the same multiply-add sequence over ring
rows.  Where the staged path resolves to the FFT
(``taps >= FFT_CROSSOVER_TAPS``), the fused vertical pass is still the
folded arithmetic, so outputs agree to the blur module's documented
1e-9 absolute band instead.

**Steady-state allocation contract**: per-thread scratch is allocated on
first use (or when the frame geometry changes) and reused forever after;
:class:`FusedStats.intermediate_bytes` counts every scratch byte
allocated, so a steady-state delta of zero *proves* the fused path
materializes no stage temporaries — the claim
``benchmarks/baseline.json`` gates strictly.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ToneMapError
from repro.image.color import LUMA_WEIGHTS
from repro.planner.profile import (
    DEFAULT_FUSED_BAND_BYTES,
    DEFAULT_FUSED_FFT_MIN_TAPS,
    DEFAULT_FUSED_POOLED_GEOMETRIES,
    CalibrationProfile,
    _env_positive_int,
    active_profile,
    select_fused_h_method,
)
from repro.tonemap.adjust import adjust_brightness_contrast_into
from repro.tonemap.gaussian import fold_rows_into
from repro.tonemap.masking import (
    masking_exponent_into,
    nonlinear_masking_into,
)
from repro.tonemap.pipeline import ToneMapParams

#: Default byte budget for one band's float64 scratch working set.
#: 4 MiB keeps a band plus its halo ring resident in commodity
#: last-level caches (the same neighbourhood as the blur module's
#: tiled crossover) while leaving bands wide enough to amortize the
#: per-band Python overhead (measured best of 2-32 MiB at 1024² on the
#: reference host).  This is the *built-in default* — the live value
#: comes from :func:`repro.planner.profile.active_profile` at plan
#: construction, so ``REPRO_FUSED_BAND_BYTES`` (read at call time, not
#: import time) and calibration profiles re-tune it without a reload.
FUSED_BAND_BYTES = DEFAULT_FUSED_BAND_BYTES

#: Default for how many distinct scratch geometries (frame shape ×
#: radius × band budget) one executor keeps warm.  Each geometry
#: retains up to ``threads`` workspaces; beyond the cap the
#: least-recently-used geometry's scratch is dropped (and re-warmed on
#: return — visible as an ``intermediate_bytes`` bump), so
#: arbitrarily-shaped traffic cannot grow resident scratch without
#: bound.  Live value: ``active_profile().fused_pooled_geometries``,
#: captured per executor (``REPRO_FUSED_POOLED_GEOMETRIES`` overrides).
FUSED_POOLED_GEOMETRIES = DEFAULT_FUSED_POOLED_GEOMETRIES

#: Default kernel width at which the fused *horizontal* pass switches
#: from the folded sliding window to the per-band FFT.  Deliberately
#: above the staged path's FFT crossover: a band-sized FFT amortizes
#: its setup over far fewer rows than the staged full-plane transform,
#: so the folded window stays ahead longer (taps 25: folded 1.62x vs
#: FFT 1.55x over staged at 1024²; taps 49: FFT 1.02x vs folded 0.66x).
#: Live value: ``active_profile().fused_fft_min_taps``, consulted per
#: run through :func:`repro.planner.profile.select_fused_h_method`
#: (``REPRO_FUSED_FFT_MIN_TAPS`` overrides at call time).
FUSED_FFT_MIN_TAPS = DEFAULT_FUSED_FFT_MIN_TAPS


def _default_threads() -> int:
    """Worker-thread default: ``REPRO_FUSED_THREADS`` env, else CPU count."""
    override = _env_positive_int("REPRO_FUSED_THREADS", 0)
    if override > 0:
        return override
    return os.cpu_count() or 1


def band_rows_for(
    height: int, width: int, color: bool, radius: int, band_bytes: int
) -> int:
    """Rows per fused band such that the band scratch stays cache-resident.

    The scratch working set is ~7 float64 row buffers for gray plus
    ~2.5 more per color channel (ring, padded rows, pair, luminance,
    vertical accumulator, exponent, output band, float32 staging,
    bool floor mask).  The floor of ``max(8, radius)`` keeps the
    2·radius-row ring copy between bands amortized over at least a
    comparable amount of compute.  Single definition shared by
    :meth:`FusedToneMapPlan.band_rows` and the planner's band-partition
    reporting.
    """
    channels = 3 if color else 1
    per_row = 8 * width * (6 + 3 * channels) + 8 * (width + 2 * radius)
    rows = int(band_bytes // per_row)
    rows = max(rows, 8, radius)
    return min(rows, height)


@dataclass(frozen=True)
class FusedStats:
    """Counters proving (or disproving) the fused-dataflow claims.

    Attributes
    ----------
    runs / frames:
        Fused stack executions and frames processed so far.
    bands_executed:
        Row bands run through the fused normalize→blur→mask→adjust pass.
    halo_rows_reused:
        Horizontally-blurred ring rows carried from one band to the next
        instead of being recomputed (the line-buffer win).
    intermediate_bytes:
        Bytes of engine-managed scratch allocated, cumulative.  Warm-up
        allocates each workspace's band buffers once; a steady-state
        delta of zero is the machine-independent proof that the fused
        path materializes **no** full-frame stage temporaries.  NumPy's
        FFT has no ``out=`` parameter, so in the FFT-horizontal regime
        (``taps >= FUSED_FFT_MIN_TAPS``) each band additionally churns
        transform buffers the engine cannot pool — those are *band*-
        sized by construction (bounded by the band budget, never
        frame-sized) and reported separately as ``fft_scratch_bytes``
        rather than hidden; the strictly gated zero-allocation claim
        applies to the folded regime, where both counters stay flat.
    fft_scratch_bytes:
        Estimated bytes of per-band FFT transform buffers (spectrum +
        inverse output) churned by the horizontal FFT pass, cumulative.
        0 in the folded regime; grows per run — but band-bounded — in
        the FFT regime.
    threads_used:
        Row partitions of the most recent run (≤ configured threads).
    scratch_bytes:
        Resident pooled-workspace footprint (all workspaces summed) —
        the fused path's whole persistent memory overhead, in place of
        the staged path's several full-stack float64 temporaries.
    """

    runs: int = 0
    frames: int = 0
    bands_executed: int = 0
    halo_rows_reused: int = 0
    intermediate_bytes: int = 0
    fft_scratch_bytes: int = 0
    threads_used: int = 0
    scratch_bytes: int = 0


class _Workspace:
    """Pooled scratch arrays, reused across bands, spans, and runs.

    ``get`` returns the cached array for a key when shape and dtype still
    match, else (re)allocates and counts the bytes — the counter behind
    :attr:`FusedStats.intermediate_bytes`.

    ``bytes_allocated`` and ``resident_bytes`` are plain ints maintained
    inside :meth:`get` so that a stats poll from another thread reads
    GIL-atomic counters instead of iterating ``_arrays`` while a worker
    mutates it (dict mutation during iteration raises).
    """

    __slots__ = ("_arrays", "bytes_allocated", "resident_bytes")

    def __init__(self) -> None:
        self._arrays: Dict[str, np.ndarray] = {}
        self.bytes_allocated = 0
        self.resident_bytes = 0

    def get(self, key: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        arr = self._arrays.get(key)
        if arr is None or arr.shape != shape or arr.dtype != np.dtype(dtype):
            if arr is not None:
                self.resident_bytes -= arr.nbytes
            arr = np.empty(shape, dtype=dtype)
            self._arrays[key] = arr
            self.bytes_allocated += arr.nbytes
            self.resident_bytes += arr.nbytes
        return arr


def _partition_spans(
    count: int, height: int, parts: int
) -> List[List[Tuple[int, int, int]]]:
    """Split the ``(image, row)`` space into ``parts`` contiguous chunks.

    Returns one span list per chunk; a span is ``(image, row_lo, row_hi)``.
    Chunks are balanced to within one row over the flattened
    ``count * height`` row space, and each chunk's spans are contiguous so
    the line-buffer ring stays valid within a span (only chunk boundaries
    pay a halo recompute).
    """
    total = count * height
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    chunks: List[List[Tuple[int, int, int]]] = []
    start = 0
    for part in range(parts):
        end = start + base + (1 if part < extra else 0)
        spans: List[Tuple[int, int, int]] = []
        flat = start
        while flat < end:
            image, row = divmod(flat, height)
            row_hi = min(height, row + (end - flat))
            spans.append((image, row, row_hi))
            flat += row_hi - row
        chunks.append(spans)
        start = end
    return chunks


class FusedToneMapPlan:
    """Band decomposition + stage fusion for one parameter set.

    The plan is stateless across runs (all scratch lives in the
    executor's per-thread workspaces), so one plan instance may be shared
    by any number of concurrent :class:`FusedExecutor` runs.

    Parameters
    ----------
    params:
        Pipeline parameters.  ``params.blur_fn`` must be ``None`` — the
        fused engine *is* the blur implementation (custom/fixed-point
        blurs take the staged path).
    band_bytes:
        Scratch budget per band; defaults to the active calibration
        profile's ``fused_band_bytes`` (resolved at construction, so
        ``REPRO_FUSED_BAND_BYTES`` takes effect without a reload).
    profile:
        Calibration profile pinning the horizontal-pass dispatch.  When
        ``None`` (the default), :meth:`h_method` consults
        :func:`repro.planner.profile.active_profile` per call; an
        :class:`~repro.planner.plan.ExecutionPlan` passes its own
        profile here so a planned decision stays pinned for the plan's
        lifetime.
    """

    def __init__(
        self,
        params: Optional[ToneMapParams] = None,
        band_bytes: Optional[int] = None,
        profile: Optional[CalibrationProfile] = None,
    ):
        params = params if params is not None else ToneMapParams()
        if params.blur_fn is not None:
            raise ToneMapError(
                "the fused engine is float-only: params.blur_fn must be "
                "None (custom and fixed-point blurs run the staged path)"
            )
        self.params = params
        self.kernel = params.kernel()
        self.profile = profile
        if band_bytes is None:
            source = profile if profile is not None else active_profile()
            band_bytes = source.fused_band_bytes
        self.band_bytes = band_bytes
        # Kernel spectra for the FFT horizontal pass, keyed by transform
        # length.  rfft of the same coefficients at the same length is
        # deterministic, so caching (vs the staged path recomputing per
        # call) cannot change results; the benign compute-twice race on
        # concurrent first use is idempotent.
        self._kernel_spectrum: Dict[int, np.ndarray] = {}

    def kernel_spectrum(self, n_fft: int) -> np.ndarray:
        spectrum = self._kernel_spectrum.get(n_fft)
        if spectrum is None:
            spectrum = np.fft.rfft(self.kernel.coefficients, n=n_fft)
            self._kernel_spectrum[n_fft] = spectrum
        return spectrum

    def h_method(self, height: int, width: int) -> str:
        """Row-convolution strategy for the horizontal pass.

        Wherever the staged ``method="auto"`` dispatch resolves to
        folded/tiled, this returns ``"folded"`` — the bit-identity
        contract requires it.  In the staged FFT regime (where only the
        1e-9 band is promised anyway) the band engine keeps the folded
        window up to the profile's ``fused_fft_min_taps``, because a
        band-sized FFT amortizes worse than the staged full-plane
        transform.  Consults the plan's pinned profile when one was
        given, else the active profile — at call time, like every
        dispatch decision.
        """
        return select_fused_h_method(
            self.kernel.coefficients.size, height * width * 8, self.profile
        )

    def band_rows(self, height: int, width: int, color: bool) -> int:
        """Rows per band such that the band scratch stays cache-resident.

        Delegates to :func:`band_rows_for`, the single definition shared
        with the planner's :class:`~repro.planner.plan.ExecutionPlan`.
        """
        return band_rows_for(
            height, width, color, self.kernel.radius, self.band_bytes
        )


def _process_span(
    plan: FusedToneMapPlan,
    ws: _Workspace,
    stack32: np.ndarray,
    out: np.ndarray,
    masks_out: Optional[np.ndarray],
    index: int,
    row_lo: int,
    row_hi: int,
    peak: float,
) -> Tuple[int, int, int]:
    """Run the fused four-stage pass over rows ``[row_lo, row_hi)``.

    Returns ``(bands_executed, halo_rows_reused, fft_scratch_bytes)``.
    The dataflow per band ``[lo, hi)``:

    1. The line-buffer ring is topped up with horizontally-blurred
       normalized-luminance rows covering ``[lo - radius, hi + radius)``
       (virtual rows beyond the image clamp to the edge row, matching
       the staged path's edge-replicate padding); ``2 * radius`` rows
       carry over from the previous band.
    2. The vertical folded pass accumulates the band's blurred rows from
       ring rows using the exact multiply-add order of the staged folded
       convolution.
    3. The clipped mask band (written through to ``masks_out`` when the
       caller wants masks), its exponent, and the masked, adjusted
       output band are produced in-place in band scratch, and the result
       lands in ``out[index, lo:hi]`` — nothing frame-sized is ever
       allocated.
    """
    height, width = stack32.shape[1], stack32.shape[2]
    color = stack32.ndim == 4
    coeffs = plan.kernel.coefficients
    radius = (coeffs.size - 1) // 2
    band = plan.band_rows(height, width, color)
    cap = band + 2 * radius
    use_fft = plan.h_method(height, width) == "fft"
    masking = plan.params.masking
    adjust = plan.params.adjust
    # Normalization denominator, float32 exactly as the staged path's
    # ``stack32 / np.where(peaks == 0, 1, peaks)`` computes it.
    denom = np.float32(1.0) if peak == 0.0 else np.float32(peak)
    plane32 = stack32[index]

    ring = ws.get("ring", (cap, width))
    pair = ws.get("pair", (cap, width))
    padded = ws.get("pad", (cap, width + 2 * radius))
    if color:
        src32 = ws.get("src32", (cap, width, 3), np.float32)
        rgb = ws.get("rgb", (cap, width, 3))
        lum = ws.get("lum", (cap, width))
    else:
        src32 = ws.get("src32", (cap, width), np.float32)
    vert = ws.get("vert", (band, width))
    expo = ws.get("expo", (band, width))
    mask_scratch = (
        ws.get("mask", (band, width)) if masks_out is None else None
    )
    out_shape = (band, width, 3) if color else (band, width)
    oband32 = ws.get("oband32", out_shape, np.float32)
    oband = ws.get("oband", out_shape)
    black = ws.get("black", out_shape, bool)
    if use_fft:
        # Same transform length as the staged FFT pass on these rows.
        n_fft = (width + 2 * radius) + coeffs.size - 1
        kernel_spectrum = plan.kernel_spectrum(n_fft)

    fft_bytes = 0

    def fill_ring(dest: int, virtual_lo: int, virtual_hi: int) -> None:
        """H-blur normalized luminance for virtual rows [lo, hi) → ring."""
        nonlocal fft_bytes
        n = virtual_hi - virtual_lo
        # Normalize in float32 (the staged division dtype).  Interior
        # rows read the plane view directly; virtual rows beyond the
        # image replicate the edge row — the vertical clamp applied at
        # the source, so the ring consumes like a pre-padded array.
        interior_lo = min(max(virtual_lo, 0), height)
        interior_hi = max(min(virtual_hi, height), 0)
        if interior_hi > interior_lo:
            at = interior_lo - virtual_lo
            np.divide(
                plane32[interior_lo:interior_hi],
                denom,
                out=src32[at : at + interior_hi - interior_lo],
            )
        for virtual in range(virtual_lo, min(virtual_hi, 0)):
            np.divide(plane32[0], denom, out=src32[virtual - virtual_lo])
        for virtual in range(max(virtual_lo, height), virtual_hi):
            np.divide(
                plane32[height - 1], denom, out=src32[virtual - virtual_lo]
            )
        # Luminance (float64), cast straight into the padded band with
        # edge-replicated columns — one pass, no unpadded staging row.
        center = padded[:n, radius : radius + width]
        if color:
            np.copyto(rgb[:n], src32[:n])
            np.matmul(rgb[:n], LUMA_WEIGHTS, out=lum[:n])
            np.copyto(center, lum[:n])
        else:
            np.copyto(center, src32[:n])
        padded[:n, :radius] = center[:, :1]
        padded[:n, radius + width :] = center[:, -1:]
        if use_fft:
            # The staged `_convolve_fft` arithmetic with the kernel
            # spectrum cached: same padded rows, same length, same ops.
            # np.fft has no out= parameter, so these two buffers cannot
            # come from the workspace — count them honestly (they are
            # band-sized, never frame-sized; see FusedStats).
            spectrum = np.fft.rfft(padded[:n], n=n_fft)
            spectrum *= kernel_spectrum
            full = np.fft.irfft(spectrum, n=n_fft)
            ring[dest : dest + n] = full[..., 2 * radius : 2 * radius + width]
            fft_bytes += spectrum.nbytes + full.nbytes
        else:
            fold_rows_into(
                padded[:n], coeffs, ring[dest : dest + n], pair[:n]
            )

    bands_executed = 0
    halo_reused = 0
    previous_n = 0  # output rows of the previous band (0 = no band yet)
    lo = row_lo
    while lo < row_hi:
        hi = min(lo + band, row_hi)
        n = hi - lo
        if previous_n == 0:
            fill_ring(0, lo - radius, hi + radius)
        else:
            # The ring holds virtual [lo - radius, lo + radius) at
            # positions [previous_n, previous_n + 2*radius): slide it to
            # the front (NumPy buffers overlapping assignments) and only
            # compute the genuinely new rows.
            keep = 2 * radius
            ring[:keep] = ring[previous_n : previous_n + keep]
            halo_reused += keep
            fill_ring(keep, lo + radius, hi + radius)

        # Vertical folded pass: the staged folded convolution's exact
        # multiply-add order, with ring rows standing in for the padded
        # columns (output row lo+t reads ring rows [t, t + 2*radius]).
        # Always folded, whatever the horizontal strategy — a band-local
        # vertical FFT was measured slower than this loop at every band
        # size that fits the cache budget (the staged full-plane FFT wins
        # on transform-length amortization the band engine gives up).
        np.multiply(coeffs[radius], ring[radius : radius + n], out=vert[:n])
        for k in range(radius):
            mirror = 2 * radius - k
            np.add(ring[k : k + n], ring[mirror : mirror + n], out=pair[:n])
            pair[:n] *= coeffs[k]
            vert[:n] += pair[:n]

        mask_band = (
            masks_out[index, lo:hi] if masks_out is not None
            else mask_scratch[:n]
        )
        np.clip(vert[:n], 0.0, 1.0, out=mask_band)
        masking_exponent_into(mask_band, expo[:n], masking)

        np.divide(plane32[lo:hi], denom, out=oband32[:n])
        np.copyto(oband[:n], oband32[:n])
        exponent = expo[:n, :, np.newaxis] if color else expo[:n]
        nonlinear_masking_into(
            oband[:n], exponent, masking, where_black=black[:n]
        )
        adjust_brightness_contrast_into(oband[:n], adjust)
        out[index, lo:hi] = oband[:n]

        bands_executed += 1
        previous_n = n
        lo = hi
    return bands_executed, halo_reused, fft_bytes


class FusedExecutor:
    """Persistent worker pool running fused plans over row partitions.

    Parameters
    ----------
    threads:
        Worker-thread count; ``None`` reads ``REPRO_FUSED_THREADS`` and
        falls back to ``os.cpu_count()``.  With one thread the caller's
        thread executes inline (no pool hop).

    One executor may serve many concurrent callers (the service's batch
    threads all funnel through their mapper's executor): scratch lives
    in a checked-out workspace pool — a span chunk acquires a free
    workspace for its duration and returns it — so steady-state reuse
    is guaranteed by the pool, not by which executor thread happened to
    pick the chunk up (thread-local scratch would re-allocate whenever
    the schedule shifted).  Use as a context manager or call
    :meth:`close` to retire the pool; an unreferenced executor's
    threads also exit on garbage collection.
    """

    def __init__(self, threads: Optional[int] = None):
        if threads is None:
            threads = _default_threads()
        if threads < 1:
            raise ToneMapError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self._pool = (
            ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="fused"
            )
            if threads > 1
            else None
        )
        self._workspaces: List[_Workspace] = []  # live pooled workspaces
        # Free lists are keyed by scratch geometry (frame shape, radius,
        # band budget): a workspace sized for one geometry is only ever
        # reissued to runs of the same geometry, so mixed-shape traffic
        # through one executor keeps one warm scratch set per shape
        # instead of reallocating on every alternation (the same
        # size-classing idea as the arena's input pools).  Insertion
        # order tracks recency; geometries beyond
        # :data:`FUSED_POOLED_GEOMETRIES` are evicted LRU-first so
        # unbounded shape diversity cannot grow scratch without bound.
        self._free: "OrderedDict[tuple, List[_Workspace]]" = OrderedDict()
        # Captured once per executor: the scratch cap is host-memory
        # calibration, not per-call dispatch, so it rides the profile
        # active when the pool is built.
        self._pooled_geometries = active_profile().fused_pooled_geometries
        self._lock = threading.Lock()
        self._runs = 0
        self._frames = 0
        self._bands = 0
        self._halo = 0
        self._fft_bytes = 0
        self._retired_bytes = 0
        self._threads_last = 0

    def _acquire_workspaces(self, key: tuple, count: int) -> List[_Workspace]:
        """Check out ``count`` distinct workspaces for one run.

        A run takes its whole set up front and pins chunk *i* to
        workspace *i*, so how the executor threads interleave (or
        whether they overlap at all) cannot change which scratch gets
        touched — the warm-up run allocates exactly the set every later
        run of the same geometry ``key`` reuses, which is what makes
        the steady-state ``intermediate_bytes == 0`` gate
        deterministic.
        """
        with self._lock:
            free = self._free.setdefault(key, [])
            self._free.move_to_end(key)  # most recently used
            acquired = []
            for _ in range(count):
                if free:
                    acquired.append(free.pop())
                else:
                    ws = _Workspace()
                    self._workspaces.append(ws)
                    acquired.append(ws)
            return acquired

    def _release_workspaces(
        self, key: tuple, workspaces: List[_Workspace]
    ) -> None:
        with self._lock:
            # setdefault, not indexing: while this run was in flight its
            # geometry's free-list entry may have been LRU-evicted by
            # releases of other geometries — the returning workspaces
            # then re-seed the entry (as most-recently-used) instead of
            # raising and leaking.
            self._free.setdefault(key, []).extend(workspaces)
            self._free.move_to_end(key)
            while len(self._free) > self._pooled_geometries:
                _, evicted = self._free.popitem(last=False)  # LRU geometry
                gone = set(map(id, evicted))
                # Keep the cumulative-allocation counter monotonic: an
                # evicted workspace's history moves to the retired sum.
                self._retired_bytes += sum(
                    ws.bytes_allocated for ws in evicted
                )
                self._workspaces = [
                    ws for ws in self._workspaces if id(ws) not in gone
                ]

    def run(
        self,
        plan: FusedToneMapPlan,
        stack32: np.ndarray,
        out: np.ndarray,
        masks_out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Tone-map ``stack32`` into ``out`` through the fused dataflow.

        ``stack32`` is a float32 ``(N, H, W[, 3])`` stack (the staged
        path's storage dtype at the normalization boundary — outputs are
        bit-compatible only from float32 inputs).  ``out`` is written
        band by band (float64 values cast to ``out``'s dtype on
        assignment, exactly like the staged ``run_stack``).  With
        ``masks_out`` (float64 ``(N, H, W)``) the clipped blurred
        luminance is written through as it is produced.
        """
        stack32 = np.asarray(stack32)
        if stack32.dtype != np.float32:
            raise ToneMapError(
                f"fused run expects a float32 stack, got {stack32.dtype}"
            )
        if stack32.ndim not in (3, 4) or (
            stack32.ndim == 4 and stack32.shape[3] != 3
        ):
            raise ToneMapError(
                f"fused run expects (N, H, W) or (N, H, W, 3), got "
                f"{stack32.shape}"
            )
        if out.shape != stack32.shape:
            raise ToneMapError(
                f"out shape {out.shape} does not match stack {stack32.shape}"
            )
        if masks_out is not None:
            want = stack32.shape[:3]
            if masks_out.shape != want or masks_out.dtype != np.float64:
                raise ToneMapError(
                    f"masks_out must be float64 of shape {want}, got "
                    f"{masks_out.dtype} {masks_out.shape}"
                )
        count, height = stack32.shape[0], stack32.shape[1]
        # Per-image normalization peaks, computed once over the float32
        # stack (max is exact, so the reduction order is irrelevant).
        peaks = np.amax(stack32, axis=tuple(range(1, stack32.ndim)))

        chunks = _partition_spans(count, height, self.threads)
        # Everything that sizes band scratch: frame geometry, kernel
        # radius, and the band budget.
        geometry = (
            tuple(stack32.shape[1:]),
            plan.kernel.radius,
            plan.band_bytes,
        )
        workspaces = self._acquire_workspaces(geometry, len(chunks))

        def work(index: int) -> Tuple[int, int, int]:
            ws = workspaces[index]
            bands = halo = fft_bytes = 0
            for image, lo, hi in chunks[index]:
                b, h, f = _process_span(
                    plan, ws, stack32, out, masks_out,
                    image, lo, hi, float(peaks[image]),
                )
                bands += b
                halo += h
                fft_bytes += f
            return bands, halo, fft_bytes

        try:
            if self._pool is None or len(chunks) == 1:
                results = [work(i) for i in range(len(chunks))]
            else:
                futures = [
                    self._pool.submit(work, i) for i in range(len(chunks))
                ]
                results = [future.result() for future in futures]
        finally:
            self._release_workspaces(geometry, workspaces)

        with self._lock:
            self._runs += 1
            self._frames += count
            self._bands += sum(r[0] for r in results)
            self._halo += sum(r[1] for r in results)
            self._fft_bytes += sum(r[2] for r in results)
            self._threads_last = len(chunks)
        return out

    @property
    def stats(self) -> FusedStats:
        """Snapshot of the fused-dataflow counters."""
        with self._lock:
            workspaces = list(self._workspaces)
            return FusedStats(
                runs=self._runs,
                frames=self._frames,
                bands_executed=self._bands,
                halo_rows_reused=self._halo,
                intermediate_bytes=self._retired_bytes + sum(
                    ws.bytes_allocated for ws in workspaces
                ),
                fft_scratch_bytes=self._fft_bytes,
                threads_used=self._threads_last,
                scratch_bytes=sum(
                    ws.resident_bytes for ws in workspaces
                ),
            )

    def close(self) -> None:
        """Retire the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "FusedExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
