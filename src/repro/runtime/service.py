"""A thread-pool tone-mapping service over :class:`BatchToneMapper`.

:class:`ToneMapService` is the serving layer the ROADMAP's north star asks
for: callers hand it images (any mix of shapes), it groups them by shape,
chops each group into batches, runs the batches on a thread pool, and
keeps aggregate throughput statistics.  Heavy NumPy stages release the
GIL, so the pool overlaps real work.

Per-kernel state — the Gaussian coefficient array and, for fixed-point
blur functions, the quantized coefficient ROM — is cached: the kernel is
built once per parameter set (coefficients are precomputed on the frozen
:class:`~repro.tonemap.gaussian.GaussianKernel`), and
``FixedBlurConfig.quantized_coefficients`` memoizes per (config, kernel).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ToneMapError
from repro.image.hdr import HDRImage
from repro.runtime.batch import BatchToneMapper
from repro.tonemap.pipeline import ToneMapParams


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate counters of a service instance.

    Attributes
    ----------
    images:
        Images tone-mapped so far.
    pixels:
        Pixels tone-mapped so far (``H * W`` per image).
    seconds:
        Total wall-clock seconds spent inside batch runs (summed across
        workers, so it can exceed elapsed time under concurrency).
    """

    images: int = 0
    pixels: int = 0
    seconds: float = 0.0

    @property
    def pixels_per_sec(self) -> float:
        """Aggregate throughput; 0 before any work completes."""
        if self.seconds <= 0.0:
            return 0.0
        return self.pixels / self.seconds


class ToneMapService:
    """Batched, thread-pooled tone mapping with per-kernel caches.

    Parameters
    ----------
    params:
        Pipeline parameters applied to every image.
    max_workers:
        Thread-pool width (``None`` = executor default).
    batch_size:
        Maximum images per batched run; larger batches amortize array
        passes better, smaller ones spread across more workers.

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        params: ToneMapParams = ToneMapParams(),
        max_workers: Optional[int] = None,
        batch_size: int = 8,
    ):
        if batch_size < 1:
            raise ToneMapError(f"batch_size must be >= 1, got {batch_size}")
        self.params = params
        self.batch_size = batch_size
        self._mapper = BatchToneMapper(params)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="tonemap"
        )
        self._lock = threading.Lock()
        self._stats = ServiceStats()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_batch(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        start = time.perf_counter()
        result = self._mapper.run(images)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._stats = ServiceStats(
                images=self._stats.images + len(images),
                pixels=self._stats.pixels + result.pixels,
                seconds=self._stats.seconds + elapsed,
            )
        return result.outputs

    def submit(self, image: HDRImage) -> "Future[HDRImage]":
        """Queue a single image; resolves to its tone-mapped output."""
        return self._executor.submit(lambda: self._run_batch([image])[0])

    def map_many(self, images: Sequence[HDRImage]) -> list[HDRImage]:
        """Tone-map many images, preserving input order.

        Images are grouped by shape (a batch must be rectangular), each
        group is chopped into ``batch_size`` chunks, and the chunks run
        concurrently on the pool.
        """
        images = list(images)
        if not images:
            return []
        groups: dict[tuple, list[int]] = {}
        for index, image in enumerate(images):
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
            groups.setdefault(image.pixels.shape, []).append(index)

        futures: list[tuple[list[int], Future]] = []
        for indices in groups.values():
            for lo in range(0, len(indices), self.batch_size):
                chunk = indices[lo : lo + self.batch_size]
                batch = [images[i] for i in chunk]
                futures.append(
                    (chunk, self._executor.submit(self._run_batch, batch))
                )

        outputs: list[Optional[HDRImage]] = [None] * len(images)
        for chunk, future in futures:
            for position, output in zip(chunk, future.result()):
                outputs[position] = output
        return outputs  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """A snapshot of the aggregate counters."""
        with self._lock:
            return self._stats

    def close(self) -> None:
        """Shut the pool down, waiting for queued work."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ToneMapService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
