"""A pooled tone-mapping service over :class:`BatchToneMapper`.

:class:`ToneMapService` is the serving layer the ROADMAP's north star asks
for: callers hand it images (any mix of shapes), it groups them by shape,
chops each group into batches, runs the batches on a thread pool, and
keeps aggregate throughput statistics.  Heavy NumPy stages release the
GIL, so the pool overlaps real work; with ``shards=N`` the batches are
additionally partitioned across worker **processes**
(:class:`~repro.runtime.shard.ShardPool`), which frees the fixed-point
model's Python-level glue from the GIL entirely.

Per-kernel state — the Gaussian coefficient array and, for fixed-point
blur functions, the quantized coefficient ROM — is cached: the kernel is
built once per parameter set (coefficients are precomputed on the frozen
:class:`~repro.tonemap.gaussian.GaussianKernel`), and
``FixedBlurConfig.quantized_coefficients`` memoizes per (config, kernel).
Sharded pools warm both caches per worker process at start-up.

The service executes work as fast as it arrives; admission control
(bounded queueing, deadline coalescing, the async API) is layered on top
by :class:`~repro.runtime.ingest.ToneMapIngestor`.  The data path and the
backpressure policies are documented in ``docs/architecture.md``; the
throughput benchmarks that track this module are described in
``docs/benchmarks.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.errors import ToneMapError
from repro.image.hdr import HDRImage
from repro.runtime.batch import BatchToneMapper
from repro.runtime.shard import ShardPool
from repro.tonemap.fixed_blur import FixedBlurConfig, make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams

#: How many recent completion latencies feed the percentile stats.
LATENCY_WINDOW = 1024


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(fraction * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate counters of a runtime instance.

    Attributes
    ----------
    images:
        Images tone-mapped so far.
    pixels:
        Pixels tone-mapped so far (``H * W`` per image).
    seconds:
        Total wall-clock seconds spent inside batch runs (summed across
        workers, so it can exceed elapsed time under concurrency).
    batches:
        Batch runs completed so far.
    queue_depth:
        Work currently admitted but not finished — batches for a bare
        :class:`ToneMapService`, images for a
        :class:`~repro.runtime.ingest.ToneMapIngestor`.
    queue_peak:
        High-water mark of ``queue_depth``.
    rejected:
        Submissions refused with
        :class:`~repro.errors.ServiceOverloadedError` (``reject`` policy).
    shed:
        Queued submissions dropped to admit newer arrivals
        (``shed-oldest`` policy).
    latency_p50_ms / latency_p95_ms / latency_p99_ms:
        Percentiles over a sliding window of recent completion latencies
        (:data:`LATENCY_WINDOW` samples): batch execution time for the
        bare service, per-image submit-to-result time for the ingestor.
    """

    images: int = 0
    pixels: int = 0
    seconds: float = 0.0
    batches: int = 0
    queue_depth: int = 0
    queue_peak: int = 0
    rejected: int = 0
    shed: int = 0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0

    @property
    def pixels_per_sec(self) -> float:
        """Aggregate throughput; 0 before any work completes."""
        if self.seconds <= 0.0:
            return 0.0
        return self.pixels / self.seconds


class ToneMapService:
    """Batched, pooled tone mapping with per-kernel caches.

    Parameters
    ----------
    params:
        Pipeline parameters applied to every image.
    max_workers:
        Thread-pool width (``None`` = executor default).
    batch_size:
        Maximum images per batched run; larger batches amortize array
        passes better, smaller ones spread across more workers.
    shards:
        When given, each batch is partitioned across this many worker
        processes via :class:`~repro.runtime.shard.ShardPool` (outputs are
        bit-identical to the in-process path).  ``params.blur_fn`` must
        then be ``None``; request the fixed-point model with
        ``fixed_config``.
    fixed_config:
        Convenience for the bit-accurate fixed-point blur: equivalent to
        ``blur_fn=make_fixed_blur_fn(fixed_config)`` in-process, and the
        only way to request fixed point from sharded workers (closures do
        not pickle).

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        params: ToneMapParams = ToneMapParams(),
        max_workers: Optional[int] = None,
        batch_size: int = 8,
        shards: Optional[int] = None,
        fixed_config: Optional[FixedBlurConfig] = None,
    ):
        if batch_size < 1:
            raise ToneMapError(f"batch_size must be >= 1, got {batch_size}")
        if fixed_config is not None and params.blur_fn is not None:
            raise ToneMapError(
                "pass either params.blur_fn or fixed_config, not both"
            )
        self.params = params
        self.batch_size = batch_size
        self.shards = shards
        self._pool: Optional[ShardPool] = None
        if shards is not None:
            self._pool = ShardPool(
                params, shards=shards, fixed_config=fixed_config
            )
        local_params = params
        if fixed_config is not None:
            local_params = replace(
                params, blur_fn=make_fixed_blur_fn(fixed_config)
            )
        self._mapper = BatchToneMapper(local_params)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="tonemap"
        )
        self._lock = threading.Lock()
        self._stats = ServiceStats()
        self._latencies_ms: deque = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _admit_batch(self) -> None:
        """Count one batch into the queue-depth stat at submission time."""
        with self._lock:
            self._stats = replace(
                self._stats,
                queue_depth=self._stats.queue_depth + 1,
                queue_peak=max(
                    self._stats.queue_peak, self._stats.queue_depth + 1
                ),
            )

    def run_batch(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Tone-map one same-shape batch synchronously, recording stats.

        Runs on the shard pool when one is configured, else on the
        in-process batch mapper; either way the caller's thread blocks for
        the duration (use :meth:`submit_batch` to overlap batches).
        """
        self._admit_batch()
        return self._run_admitted(images)

    def _run_admitted(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Execute one batch already counted by :meth:`_admit_batch`."""
        start = time.perf_counter()
        try:
            if self._pool is not None:
                outputs = self._pool.run_batch(images)
                pixels = sum(
                    int(im.pixels.shape[0]) * int(im.pixels.shape[1])
                    for im in images
                )
            else:
                result = self._mapper.run(images)
                outputs = result.outputs
                pixels = result.pixels
        except BaseException:
            with self._lock:
                self._stats = replace(
                    self._stats, queue_depth=self._stats.queue_depth - 1
                )
            raise
        elapsed = time.perf_counter() - start
        with self._lock:
            self._latencies_ms.append(elapsed * 1e3)
            self._stats = replace(
                self._stats,
                images=self._stats.images + len(images),
                pixels=self._stats.pixels + pixels,
                seconds=self._stats.seconds + elapsed,
                batches=self._stats.batches + 1,
                queue_depth=self._stats.queue_depth - 1,
            )
        return outputs

    def submit_batch(
        self, images: Sequence[HDRImage]
    ) -> "Future[tuple[HDRImage, ...]]":
        """Queue one same-shape batch on the pool; resolves to its outputs.

        The batch counts toward ``queue_depth`` from this moment — queued
        behind the thread pool is still "admitted but not finished".
        """
        self._admit_batch()
        return self._executor.submit(self._run_admitted, list(images))

    def submit(self, image: HDRImage) -> "Future[HDRImage]":
        """Queue a single image; resolves to its tone-mapped output."""
        self._admit_batch()
        return self._executor.submit(lambda: self._run_admitted([image])[0])

    def map_many(self, images: Sequence[HDRImage]) -> list[HDRImage]:
        """Tone-map many images, preserving input order.

        Images are grouped by shape (a batch must be rectangular), each
        group is chopped into ``batch_size`` chunks, and the chunks run
        concurrently on the pool.
        """
        images = list(images)
        if not images:
            return []
        groups: dict[tuple, list[int]] = {}
        for index, image in enumerate(images):
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
            groups.setdefault(image.pixels.shape, []).append(index)

        futures: list[tuple[list[int], Future]] = []
        for indices in groups.values():
            for lo in range(0, len(indices), self.batch_size):
                chunk = indices[lo : lo + self.batch_size]
                futures.append(
                    (chunk, self.submit_batch([images[i] for i in chunk]))
                )

        outputs: list[Optional[HDRImage]] = [None] * len(images)
        for chunk, future in futures:
            for position, output in zip(chunk, future.result()):
                outputs[position] = output
        return outputs  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """A snapshot of the aggregate counters (latency = batch run time)."""
        with self._lock:
            ordered = sorted(self._latencies_ms)
            return replace(
                self._stats,
                latency_p50_ms=_percentile(ordered, 0.50),
                latency_p95_ms=_percentile(ordered, 0.95),
                latency_p99_ms=_percentile(ordered, 0.99),
            )

    def close(self) -> None:
        """Shut the pools down, waiting for queued work."""
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ToneMapService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
