"""A pooled tone-mapping service over :class:`BatchToneMapper`.

:class:`ToneMapService` is the serving layer the ROADMAP's north star asks
for: callers hand it images (any mix of shapes), it groups them by shape,
chops each group into batches, runs the batches on a thread pool, and
keeps aggregate throughput statistics.  Heavy NumPy stages release the
GIL, so the pool overlaps real work; with ``shards=N`` the batches are
additionally partitioned across worker **processes**
(:class:`~repro.runtime.shard.ShardPool`), which frees the fixed-point
model's Python-level glue from the GIL entirely.

Per-kernel state — the Gaussian coefficient array and, for fixed-point
blur functions, the quantized coefficient ROM — is cached: the kernel is
built once per parameter set (coefficients are precomputed on the frozen
:class:`~repro.tonemap.gaussian.GaussianKernel`), and
``FixedBlurConfig.quantized_coefficients`` memoizes per (config, kernel).
Sharded pools warm both caches per worker process at start-up.

The service executes work as fast as it arrives; admission control
(bounded queueing, deadline coalescing, the async API) is layered on top
by :class:`~repro.runtime.ingest.ToneMapIngestor`.  The data path and the
backpressure policies are documented in ``docs/architecture.md``; the
throughput benchmarks that track this module are described in
``docs/benchmarks.md``.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.errors import ShardCrashError, ShardTimeoutError, ToneMapError
from repro.image.hdr import HDRImage
from repro.runtime.arena import ArenaLease, ResultHandle
from repro.runtime.batch import BatchToneMapper
from repro.runtime.clock import MONOTONIC, Clock
from repro.runtime.faults import resolve_injector
from repro.runtime.overload import (
    LADDER_BROWNOUT,
    LADDER_DEGRADED,
    rung_index,
)
from repro.runtime.reliability import (
    BreakerPolicy,
    CircuitBreaker,
    ReliabilityStats,
)
from repro.runtime.shard import AutoscalePolicy, ShardPool
from repro.tonemap.fixed_blur import FixedBlurConfig, make_fixed_blur_fn
from repro.tonemap.pipeline import ToneMapParams

#: How many recent completion latencies feed the percentile stats.
LATENCY_WINDOW = 1024


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(fraction * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant counters of a multi-tenant ingestor.

    Attributes
    ----------
    tenant:
        The tenant identity frames were submitted under.
    weight:
        The tenant's deficit-round-robin scheduling weight.
    submitted / served / rejected / shed:
        Admission outcomes: frames submitted, frames tone-mapped to
        completion, frames refused at admission (``reject`` policy),
        frames dropped to admit newer arrivals (``shed-oldest``).
    queue_depth / queue_peak:
        This tenant's frames currently in flight (admitted, unfinished)
        and the high-water mark.
    latency_p50_ms / latency_p95_ms:
        Submit-to-result percentiles over this tenant's recent frames —
        the per-tenant p95 is what the fairness benchmark compares
        against a solo run.
    """

    tenant: str
    weight: float = 1.0
    submitted: int = 0
    served: int = 0
    rejected: int = 0
    shed: int = 0
    queue_depth: int = 0
    queue_peak: int = 0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate counters of a runtime instance.

    Attributes
    ----------
    images:
        Images tone-mapped so far.
    pixels:
        Pixels tone-mapped so far (``H * W`` per image).
    seconds:
        Total wall-clock seconds spent inside batch runs (summed across
        workers, so it can exceed elapsed time under concurrency).
    batches:
        Batch runs completed so far.
    queue_depth:
        Work currently admitted but not finished — batches for a bare
        :class:`ToneMapService`, images for a
        :class:`~repro.runtime.ingest.ToneMapIngestor`.
    queue_peak:
        High-water mark of ``queue_depth``.
    rejected:
        Submissions refused with
        :class:`~repro.errors.ServiceOverloadedError` (``reject`` policy).
    shed:
        Queued submissions dropped to admit newer arrivals
        (``shed-oldest`` policy).
    latency_p50_ms / latency_p95_ms / latency_p99_ms:
        Percentiles over a sliding window of recent completion latencies
        (:data:`LATENCY_WINDOW` samples): batch execution time for the
        bare service, per-image submit-to-result time for the ingestor.
    shards_active:
        Worker processes batches currently fan out across (0 without a
        shard pool).  Moves between the configured bounds when
        autoscaling is on.
    scale_ups / scale_downs:
        Autoscaler decisions applied so far.
    shard_respawns:
        Worker-set rebuilds performed after worker crashes (0 in
        health; see :meth:`~repro.runtime.shard.ShardPool.run_leased`).
    reliability:
        Reliability-layer counters
        (:class:`~repro.runtime.reliability.ReliabilityStats`): deadline
        sheds, watchdog kills, hedged replays, breaker state and
        brownout batches.  All zeros / ``disabled`` for a service built
        without deadlines or a breaker.
    tenants:
        Per-tenant :class:`TenantStats`, filled in by a multi-tenant
        :class:`~repro.runtime.ingest.ToneMapIngestor` (empty for the
        bare service, which is tenant-blind by design).
    """

    images: int = 0
    pixels: int = 0
    seconds: float = 0.0
    batches: int = 0
    queue_depth: int = 0
    queue_peak: int = 0
    rejected: int = 0
    shed: int = 0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    shards_active: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    shard_respawns: int = 0
    reliability: ReliabilityStats = ReliabilityStats()
    tenants: tuple[TenantStats, ...] = ()

    @property
    def pixels_per_sec(self) -> float:
        """Aggregate throughput; 0 before any work completes."""
        if self.seconds <= 0.0:
            return 0.0
        return self.pixels / self.seconds

    @property
    def fairness_index(self) -> float:
        """Jain's fairness index over per-tenant weighted service rates.

        Computed over ``served / weight`` for every tenant that has
        submitted work: 1.0 means every tenant received service exactly
        proportional to its weight, ``1/n`` means one tenant of *n*
        monopolized the pool.  1.0 (vacuously fair) when fewer than two
        tenants have submitted.
        """
        rates = [
            t.served / t.weight for t in self.tenants if t.submitted > 0
        ]
        if len(rates) < 2 or sum(rates) == 0.0:
            return 1.0
        return sum(rates) ** 2 / (len(rates) * sum(r * r for r in rates))


class ToneMapService:
    """Batched, pooled tone mapping with per-kernel caches.

    Parameters
    ----------
    params:
        Pipeline parameters applied to every image.
    max_workers:
        Thread-pool width (``None`` = executor default).
    batch_size:
        Maximum images per batched run; larger batches amortize array
        passes better, smaller ones spread across more workers.
    shards:
        When given, each batch is partitioned across this many worker
        processes via :class:`~repro.runtime.shard.ShardPool` (outputs are
        bit-identical to the in-process path).  ``params.blur_fn`` must
        then be ``None``; request the fixed-point model with
        ``fixed_config``.
    hosts:
        Route batches across shard *hosts* over the network instead of
        local worker processes: an ``int`` spawns that many localhost
        host-server processes (each a
        :class:`~repro.runtime.shard.ShardPool`-backed
        :class:`~repro.runtime.hostpool.HostServer`), a sequence of
        ``"host:port"`` addresses connects to externally started
        servers (CLI ``serve-host``), and a ready
        :class:`~repro.runtime.hostpool.HostPool` is adopted as-is
        (the service closes it).  Mutually exclusive with ``shards`` /
        ``autoscale``; the breaker, ``shard_timeout_ms``, and the
        zero-copy admission path all apply to hosts exactly as they do
        to shards.
    fixed_config:
        Convenience for the bit-accurate fixed-point blur: equivalent to
        ``blur_fn=make_fixed_blur_fn(fixed_config)`` in-process, and the
        only way to request fixed point from sharded workers (closures do
        not pickle).
    autoscale:
        Grow/shrink the active shard set from queue-depth and p95-latency
        signals (hysteresis per
        :class:`~repro.runtime.shard.AutoscalePolicy`).  Implies a shard
        pool; ``shards`` (default 1) is the floor, ``max_shards``
        (default: host CPU count) the ceiling.
    max_shards / autoscale_policy:
        Autoscaler bounds / full policy override (see
        :class:`~repro.runtime.shard.ShardPool`).  With ``hosts``
        instead of ``shards``, ``autoscale_policy`` attaches the
        **advisory** host-level autoscaler on the
        :class:`~repro.runtime.hostpool.HostPool` — membership stays
        static, but the pool reports when the host set is sized wrong.
    arena_slots:
        Depth of the pool's shared-memory arena per size class (see
        :class:`~repro.runtime.arena.ShmArena`).
    fused:
        Run batches through the fused band engine
        (:mod:`repro.runtime.fused`) — single-pass tiled stages with no
        full-frame intermediates — instead of the staged stack path.
        Applies to the in-process mapper and to sharded workers alike.
        Float-only: incompatible with ``fixed_config``/``blur_fn``.
    fused_threads:
        Fused worker threads per mapper; ``None`` reads
        ``REPRO_FUSED_THREADS``, else CPU count for the in-process
        mapper — but **1 per worker process** when sharded (the shard
        pool already claims one core per worker; see
        :class:`~repro.runtime.shard.ShardPool`).
    plan:
        An :class:`~repro.planner.plan.ExecutionPlan` describing the
        expected traffic: supplies the engine choice, thread count, band
        budget, and calibration profile to the in-process mapper and
        (pickled) to every shard worker, so the whole service replays
        one recorded set of dispatch decisions.  Explicit
        ``fused``/``fused_threads`` arguments still win over the plan.
    degraded_plan:
        The cheaper :class:`~repro.planner.plan.ExecutionPlan` the
        service pins its in-process execution onto while the overload
        ladder sits at ``degraded_plan`` or above (see
        :meth:`apply_overload_rung`).  ``None`` derives one from
        ``plan`` via :func:`repro.planner.pinned` (staged engine,
        folded blur — the predictable cheap regime), or disables the
        rung's plan swap entirely when there is no ``plan`` to degrade
        from.
    shard_timeout_ms:
        Default execution budget per sharded batch; an attempt still
        running at the budget is killed by the pool's watchdog and
        hedge-replayed (see :class:`~repro.runtime.shard.ShardPool`).
        Requires ``shards``.
    breaker:
        Circuit-breaker brownout: after repeated shard failures the
        service stops offering batches to the pool and runs them on the
        in-process mapper (bit-identical outputs, honestly slower),
        probing the pool again after a cooldown.  Pass ``True`` for the
        default :class:`~repro.runtime.reliability.BreakerPolicy`, a
        policy to tune it, or a ready
        :class:`~repro.runtime.reliability.CircuitBreaker` (tests share
        one with a fake clock).  Requires ``shards``; without a breaker
        shard failures keep raising, exactly as before.
    faults:
        Chaos injection plan shared by the pool and the brownout mapper
        (see :mod:`repro.runtime.faults`).  ``None`` consults the
        ``REPRO_FAULT_PLAN`` environment variable.
    clock:
        Injectable monotonic time source for the breaker and watchdog.

    Use as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        params: Optional[ToneMapParams] = None,
        max_workers: Optional[int] = None,
        batch_size: int = 8,
        shards: Optional[int] = None,
        fixed_config: Optional[FixedBlurConfig] = None,
        autoscale: bool = False,
        max_shards: Optional[int] = None,
        autoscale_policy: Optional[AutoscalePolicy] = None,
        arena_slots: int = 4,
        fused: bool = False,
        fused_threads: Optional[int] = None,
        plan=None,
        degraded_plan=None,
        shard_timeout_ms: Optional[float] = None,
        breaker=None,
        faults=None,
        hosts=None,
        clock: Clock = MONOTONIC,
    ):
        params = params if params is not None else ToneMapParams()
        if batch_size < 1:
            raise ToneMapError(f"batch_size must be >= 1, got {batch_size}")
        if fixed_config is not None and params.blur_fn is not None:
            raise ToneMapError(
                "pass either params.blur_fn or fixed_config, not both"
            )
        if plan is not None and not fused:
            fused = (
                plan.engine == "fused"
                and fixed_config is None
                and params.blur_fn is None
            )
        if fused and fixed_config is not None:
            raise ToneMapError(
                "the fused engine is float-only; drop fused or fixed_config"
            )
        if hosts is not None and (shards is not None or autoscale):
            raise ToneMapError(
                "hosts and shards/autoscale are mutually exclusive — a "
                "hosted service fans out across shard hosts, each of "
                "which runs its own worker pool"
            )
        if autoscale and shards is None:
            shards = 1
        if shards is None and hosts is None and (
            shard_timeout_ms is not None or breaker is not None
        ):
            raise ToneMapError(
                "shard_timeout_ms and breaker require a sharded or hosted "
                "service (construct with shards=N or hosts=...) — the "
                "in-process path has no workers to watch or brown out from"
            )
        self.params = params
        self.batch_size = batch_size
        self.shards = shards
        self.plan = plan
        self._clock = clock
        self._faults = resolve_injector(faults)
        if breaker is None or isinstance(breaker, CircuitBreaker):
            self._breaker: Optional[CircuitBreaker] = breaker
        elif breaker is True:
            self._breaker = CircuitBreaker(BreakerPolicy(), clock=clock)
        elif isinstance(breaker, BreakerPolicy):
            self._breaker = CircuitBreaker(breaker, clock=clock)
        else:
            raise ToneMapError(
                "breaker must be True, a BreakerPolicy or a CircuitBreaker, "
                f"got {type(breaker)!r}"
            )
        self._brownout_batches = 0
        # A ShardPool, a HostPool (duck-typed to the same execution
        # surface), or None for the in-process path.
        self._pool = None
        if shards is not None:
            self._pool = ShardPool(
                params,
                shards=shards,
                fixed_config=fixed_config,
                autoscale=autoscale,
                max_shards=max_shards,
                policy=autoscale_policy,
                arena_slots=arena_slots,
                fused=fused,
                fused_threads=fused_threads,
                plan=plan,
                default_timeout_ms=shard_timeout_ms,
                faults=self._faults,
                clock=clock,
            )
        elif hosts is not None:
            # Imported here so the single-host stack never pays for the
            # networking module.
            from repro.runtime.hostpool import HostPool

            if isinstance(hosts, HostPool):
                self._pool = hosts
            elif isinstance(hosts, int):
                self._pool = HostPool.spawn_local(
                    hosts,
                    params,
                    fixed_config=fixed_config,
                    fused=fused,
                    fused_threads=fused_threads,
                    plan=plan,
                    arena_slots=arena_slots,
                    default_timeout_ms=shard_timeout_ms,
                    faults=self._faults,
                    clock=clock,
                    autoscale_policy=autoscale_policy,
                )
            else:
                self._pool = HostPool(
                    hosts,
                    arena_slots=arena_slots,
                    default_timeout_ms=shard_timeout_ms,
                    faults=self._faults,
                    clock=clock,
                    autoscale_policy=autoscale_policy,
                )
        local_params = params
        if fixed_config is not None:
            local_params = replace(
                params, blur_fn=make_fixed_blur_fn(fixed_config)
            )
        self._local_params = local_params
        self._mapper = BatchToneMapper(
            local_params,
            fused=fused,
            threads=fused_threads,
            plan=plan,
            # Share the pool's injector: slow-batch jitter keeps applying
            # when the breaker browns batches out to this mapper.
            faults=self._faults,
        )
        self._degraded_plan = degraded_plan
        self._degraded_mapper: Optional[BatchToneMapper] = None
        self._degraded_active = False
        self._forced_brownout = False
        self._draining = False
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="tonemap"
        )
        self._lock = threading.Lock()
        self._stats = ServiceStats()
        self._latencies_ms: deque = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _admit_batch(self) -> None:
        """Count one batch into the queue-depth stat at submission time."""
        with self._lock:
            if self._draining or self._closed:
                raise ToneMapError(
                    "service is draining" if self._draining
                    else "service is closed"
                )
            self._stats = replace(
                self._stats,
                queue_depth=self._stats.queue_depth + 1,
                queue_peak=max(
                    self._stats.queue_peak, self._stats.queue_depth + 1
                ),
            )

    def run_batch(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Tone-map one same-shape batch synchronously, recording stats.

        Runs on the shard pool when one is configured, else on the
        in-process batch mapper; either way the caller's thread blocks for
        the duration (use :meth:`submit_batch` to overlap batches).
        """
        self._admit_batch()
        return self._run_admitted(images)

    def _abort_batch(self) -> None:
        """Undo :meth:`_admit_batch` for a batch that failed."""
        with self._lock:
            self._stats = replace(
                self._stats, queue_depth=self._stats.queue_depth - 1
            )

    def _finish_batch(self, start: float, images: int, pixels: int) -> None:
        """Record one completed batch and feed the pool's autoscaler.

        ``start`` was read from ``self._clock`` — all service timing
        goes through the injected clock, so a ``FakeClock`` drives the
        latency window (and the autoscaler's p95) deterministically and
        deadline math never mixes epochs with the stats.
        """
        elapsed = self._clock.now() - start
        # Sorting the latency window costs O(W log W) under the lock, so
        # pay it only when an autoscaler actually consumes the p95.
        wants_p95 = self._pool is not None and self._pool.autoscaling
        with self._lock:
            self._latencies_ms.append(elapsed * 1e3)
            self._stats = replace(
                self._stats,
                images=self._stats.images + images,
                pixels=self._stats.pixels + pixels,
                seconds=self._stats.seconds + elapsed,
                batches=self._stats.batches + 1,
                queue_depth=self._stats.queue_depth - 1,
            )
            depth = self._stats.queue_depth
            p95_ms = (
                _percentile(sorted(self._latencies_ms), 0.95)
                if wants_p95
                else None
            )
        if self._pool is not None:
            self._pool.observe(depth, p95_ms)

    def _note_brownout(self) -> None:
        with self._lock:
            self._brownout_batches += 1

    # ------------------------------------------------------------------
    # Overload ladder hooks
    # ------------------------------------------------------------------
    def apply_overload_rung(self, rung: str) -> None:
        """Adopt one degradation-ladder rung (idempotent, any order).

        ``degraded_plan`` and above swap the *in-process* execution onto
        the cheaper pinned plan (see ``degraded_plan`` in the
        constructor); ``brownout`` additionally stops offering batches
        to the shard/host pool — the breaker's brownout path, entered
        deliberately, still serving bit-identical outputs from the
        full-fidelity mapper.  Called by the ingestor's
        :class:`~repro.runtime.overload.OverloadController` wiring;
        harmless to call directly.
        """
        index = rung_index(rung)
        degraded = index >= rung_index(LADDER_DEGRADED)
        if degraded:
            self._ensure_degraded_mapper()
        with self._lock:
            self._degraded_active = (
                degraded and self._degraded_mapper is not None
            )
            self._forced_brownout = index >= rung_index(LADDER_BROWNOUT)

    def _ensure_degraded_mapper(self) -> None:
        """Build the cheap-plan mapper on first use (never on the
        constructor's critical path)."""
        with self._lock:
            if self._degraded_mapper is not None:
                return
            plan = self._degraded_plan
            if plan is None:
                if self.plan is None:
                    return  # nothing to degrade from; the rung is a no-op
                from repro.planner import pinned

                plan = pinned(
                    self.plan, engine="staged", blur_method="folded"
                )
                self._degraded_plan = plan
            self._degraded_mapper = BatchToneMapper(
                self._local_params,
                fused=(plan.engine == "fused"),
                plan=plan,
                faults=self._faults,
            )

    def _local_mapper(self) -> BatchToneMapper:
        """The mapper in-process batches run on right now (ladder-aware)."""
        with self._lock:
            if self._degraded_active and self._degraded_mapper is not None:
                return self._degraded_mapper
        return self._mapper

    def _run_admitted(self, images: Sequence[HDRImage]) -> tuple[HDRImage, ...]:
        """Execute one batch already counted by :meth:`_admit_batch`.

        With a breaker configured, shard failures that exhausted the
        pool's own retry budgets (:class:`~repro.errors.ShardCrashError`,
        :class:`~repro.errors.ShardTimeoutError`) are recorded and the
        batch browns out to the in-process mapper — bit-identical
        outputs, so the caller sees latency, not an exception.  Without
        a breaker those errors propagate exactly as before.
        """
        start = self._clock.now()
        try:
            if self._pool is not None:
                outputs = None
                with self._lock:
                    forced = self._forced_brownout
                if forced or (
                    self._breaker is not None
                    and not self._breaker.allow_shard()
                ):
                    self._note_brownout()
                    outputs = self._mapper.run(images).outputs
                else:
                    try:
                        outputs = self._pool.run_batch(images)
                    except (ShardCrashError, ShardTimeoutError):
                        if self._breaker is None:
                            raise
                        self._breaker.record_failure()
                        self._note_brownout()
                        outputs = self._mapper.run(images).outputs
                    else:
                        if self._breaker is not None:
                            self._breaker.record_success()
                pixels = sum(
                    int(im.pixels.shape[0]) * int(im.pixels.shape[1])
                    for im in images
                )
            else:
                result = self._local_mapper().run(images)
                outputs = result.outputs
                pixels = result.pixels
        except BaseException:
            self._abort_batch()
            raise
        self._finish_batch(start, len(images), pixels)
        return outputs

    def _brownout_stack(self, in_lease: ArenaLease, count: int) -> ArenaLease:
        """Run one arena stack on the in-process mapper (breaker open).

        Same contract as ``pool.run_leased``: reads ``in_lease``, returns
        a fresh output lease the caller owns.  The workers run the same
        stack code, so the outputs stay bit-identical to the sharded
        path — the brownout trades throughput, never correctness.
        """
        self._note_brownout()
        run_shape = (count,) + tuple(in_lease.array.shape[1:])
        out_lease = self._pool.arena.lease_output(run_shape, np.float32)
        try:
            self._mapper.run_stack(
                in_lease.array[:count], out=out_lease.array
            )
        except BaseException:
            out_lease.release()
            raise
        return out_lease

    def _execute_stack(
        self, in_lease: ArenaLease, count: int, timeout: Optional[float]
    ) -> ArenaLease:
        """Route one arena stack: shard pool, unless the breaker (or the
        overload ladder's brownout rung) says no."""
        with self._lock:
            forced = self._forced_brownout
        if forced or (
            self._breaker is not None and not self._breaker.allow_shard()
        ):
            return self._brownout_stack(in_lease, count)
        try:
            out_lease = self._pool.run_leased(
                in_lease, count, timeout=timeout
            )
        except (ShardCrashError, ShardTimeoutError):
            if self._breaker is None:
                raise
            self._breaker.record_failure()
            return self._brownout_stack(in_lease, count)
        if self._breaker is not None:
            self._breaker.record_success()
        return out_lease

    def _run_leased_admitted(
        self,
        in_lease: ArenaLease,
        count: int,
        names: Sequence[str],
        lease_results: bool = False,
        timeout: Optional[float] = None,
    ) -> tuple:
        """Execute one arena-resident batch (zero-copy ingest path).

        Owns ``in_lease`` — released on every exit path.  By default the
        outputs are materialized once (the futures safety fallback: an
        arbitrary future consumer cannot be trusted to release a lease
        promptly) and fanned out as adopted, copy-free views of that one
        buffer.  With ``lease_results`` the copy disappears entirely:
        each output is a :class:`~repro.runtime.arena.ResultHandle`
        holding its own reference on the batch's output slab — the
        caller opted into the release contract, so the slab goes back to
        the ring when the last frame's handle is released.

        ``timeout`` (seconds) is the batch's remaining execution budget,
        forwarded to the pool's watchdog machinery.
        """
        start = self._clock.now()
        try:
            try:
                out_lease = self._execute_stack(in_lease, count, timeout)
            finally:
                in_lease.release()
            height = int(out_lease.array.shape[1])
            width = int(out_lease.array.shape[2])
            if lease_results:
                outputs = tuple(
                    ResultHandle(
                        out_lease, slot=i, name=f"{names[i]}:tonemapped"
                    )
                    for i in range(count)
                )
                # Drop the batch's own reference: the slab now lives
                # exactly as long as the longest-held frame handle.
                out_lease.release()
            else:
                out = out_lease.materialize()
                outputs = tuple(
                    HDRImage.adopt(out[i], name=f"{names[i]}:tonemapped")
                    for i in range(count)
                )
            pixels = count * height * width
        except BaseException:
            self._abort_batch()
            raise
        self._finish_batch(start, count, pixels)
        return outputs

    def submit_stack(
        self,
        in_lease: ArenaLease,
        count: int,
        names: Sequence[str],
        lease_results: bool = False,
        timeout: Optional[float] = None,
    ) -> "Future[tuple]":
        """Queue an arena-resident stack: zero-copy batch admission.

        ``in_lease`` must view a stack whose first ``count`` frames were
        written by the producer (the ingestor fills slots at dispatch
        time); ``names`` labels each frame slot.  The service takes
        ownership of the lease once this returns.  Requires a sharded
        service — the arena belongs to the pool.

        The future resolves to a tuple of :class:`HDRImage` (default:
        one materialize copy per batch, unbounded lifetime) or, with
        ``lease_results``, of zero-copy
        :class:`~repro.runtime.arena.ResultHandle` views the caller must
        release (see the lease lifecycle table in
        ``docs/architecture.md``).
        """
        if self._pool is None:
            raise ToneMapError(
                "zero-copy stack admission requires a sharded or hosted "
                "service (construct with shards=N or hosts=...)"
            )
        self._admit_batch()
        try:
            return self._executor.submit(
                self._run_leased_admitted,
                in_lease,
                count,
                list(names),
                lease_results,
                timeout,
            )
        except BaseException:
            self._abort_batch()
            raise

    def lease_input(self, frame_shape: tuple) -> ArenaLease:
        """Lease an arena input stack sized for one coalesced batch.

        Producers write frames into ``lease.array[slot]`` and hand the
        lease to :meth:`submit_stack`.
        """
        if self._pool is None:
            raise ToneMapError(
                "zero-copy leasing requires a sharded or hosted service "
                "(construct with shards=N or hosts=...)"
            )
        return self._pool.lease_input(
            (self.batch_size,) + tuple(frame_shape), np.float32
        )

    def submit_batch(
        self, images: Sequence[HDRImage]
    ) -> "Future[tuple[HDRImage, ...]]":
        """Queue one same-shape batch on the pool; resolves to its outputs.

        The batch counts toward ``queue_depth`` from this moment — queued
        behind the thread pool is still "admitted but not finished".
        """
        self._admit_batch()
        try:
            return self._executor.submit(self._run_admitted, list(images))
        except BaseException:
            # Executor shut down mid-submit: the batch never entered the
            # pool, so it must not haunt queue_depth forever.
            self._abort_batch()
            raise

    def submit(self, image: HDRImage) -> "Future[HDRImage]":
        """Queue a single image; resolves to its tone-mapped output."""
        self._admit_batch()
        try:
            return self._executor.submit(
                lambda: self._run_admitted([image])[0]
            )
        except BaseException:
            self._abort_batch()
            raise

    def map_many(self, images: Sequence[HDRImage]) -> list[HDRImage]:
        """Tone-map many images, preserving input order.

        Images are grouped by shape (a batch must be rectangular), each
        group is chopped into ``batch_size`` chunks, and the chunks run
        concurrently on the pool.
        """
        images = list(images)
        if not images:
            return []
        groups: dict[tuple, list[int]] = {}
        for index, image in enumerate(images):
            if not isinstance(image, HDRImage):
                raise ToneMapError(f"expected HDRImage, got {type(image)!r}")
            groups.setdefault(image.pixels.shape, []).append(index)

        futures: list[tuple[list[int], Future]] = []
        for indices in groups.values():
            for lo in range(0, len(indices), self.batch_size):
                chunk = indices[lo : lo + self.batch_size]
                futures.append(
                    (chunk, self.submit_batch([images[i] for i in chunk]))
                )

        outputs: list[Optional[HDRImage]] = [None] * len(images)
        for chunk, future in futures:
            for position, output in zip(chunk, future.result()):
                outputs[position] = output
        return outputs  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self):
        """The shard pool or host pool backing this service (``None``
        in-process)."""
        return self._pool

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        """The circuit breaker guarding the pool (``None`` when disabled)."""
        return self._breaker

    @property
    def workers(self) -> int:
        """Width of the batch thread pool (the ingestor's dispatch gate
        defaults to this, so it can keep every pool thread busy)."""
        return self._executor._max_workers

    @property
    def stats(self) -> ServiceStats:
        """A snapshot of the aggregate counters (latency = batch run time)."""
        with self._lock:
            ordered = sorted(self._latencies_ms)
            snapshot = replace(
                self._stats,
                latency_p50_ms=_percentile(ordered, 0.50),
                latency_p95_ms=_percentile(ordered, 0.95),
                latency_p99_ms=_percentile(ordered, 0.99),
            )
        if self._pool is not None:
            with self._lock:
                brownouts = self._brownout_batches
            snapshot = replace(
                snapshot,
                shards_active=self._pool.active_shards,
                scale_ups=self._pool.scale_ups,
                scale_downs=self._pool.scale_downs,
                shard_respawns=self._pool.worker_respawns,
                reliability=ReliabilityStats(
                    hedged_replays=self._pool.hedged_replays,
                    watchdog_kills=self._pool.watchdog_kills,
                    hosts_lost=getattr(self._pool, "hosts_lost", 0),
                    breaker_state=(
                        self._breaker.state
                        if self._breaker is not None
                        else ReliabilityStats().breaker_state
                    ),
                    breaker_transitions=(
                        self._breaker.transitions
                        if self._breaker is not None
                        else 0
                    ),
                    brownout_batches=brownouts,
                ),
            )
        return snapshot

    def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish everything, close.

        New submissions are refused with :class:`ToneMapError` from the
        moment this is called; every batch already admitted runs to a
        real result (the executor flushes its queue, then the pool is
        drained — :meth:`~repro.runtime.shard.ShardPool.drain` /
        :meth:`~repro.runtime.hostpool.HostPool.drain` complete
        in-flight leases before tearing workers down).  Idempotent, and
        a later :meth:`close` is a no-op.
        """
        with self._lock:
            if self._closed:
                return
            self._draining = True
        self._shutdown(graceful=True)

    def close(self) -> None:
        """Shut the pools down, waiting for queued work."""
        with self._lock:
            if self._closed:
                return
            self._draining = True
        self._shutdown(graceful=False)

    def _shutdown(self, graceful: bool) -> None:
        self._executor.shutdown(wait=True)
        self._mapper.close()
        with self._lock:
            degraded = self._degraded_mapper
        if degraded is not None:
            degraded.close()
        if self._pool is not None:
            stop = (
                getattr(self._pool, "drain", None) if graceful else None
            )
            (stop or self._pool.close)()
        with self._lock:
            self._closed = True

    def __enter__(self) -> "ToneMapService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
