"""Length-prefixed zero-copy wire protocol for the multi-host data plane.

The single-host stack moves batches between processes as *pointers*
(segment name + slab bounds into a shared :class:`~repro.runtime.arena.
ShmArena`).  Across hosts there is no shared memory — the batch must
cross a socket, which is this repo's model of the paper's CPU→FPGA AXI
transfer: the hop exists, so the only honest goal is to make it cost
exactly one kernel-mediated transfer per direction and **zero userspace
staging copies** on either side.

The protocol keeps that discipline with scatter-gather I/O:

* **Send** — ``socket.sendmsg([prelude, metadata, payload])`` writes the
  frame in one call straight *from* the arena slot's buffer.  No
  concatenation, no intermediate ``bytes``: the payload ``memoryview``
  is handed to the kernel as-is.
* **Receive** — the fixed prelude and the metadata are read into small
  reusable buffers, then the payload is read with
  ``socket.recv_into`` directly *into* a buffer the caller supplies
  (an arena slot on both the serving host and the client).  A caller
  that cannot supply a sink gets a fresh ``bytearray`` — and that
  fallback is **counted** in :class:`NetStats.bytes_staged`, the same
  honesty contract as :class:`~repro.runtime.arena.ArenaStats`.

Frame layout (big-endian)::

    offset  size  field
    0       4     magic  b"RTMP"
    4       1     protocol version (1)
    5       1     message type (MSG_*)
    6       2     reserved (0)
    8       4     metadata length  M  (u32, JSON bytes)
    12      8     payload length   P  (u64, raw array bytes)
    20      M     metadata: a JSON object (shape, dtype, count, ...)
    20+M    P     payload: C-contiguous array bytes

Every frame is self-delimiting, so a connection carries any number of
frames back to back and a partially-delivered frame is always
detectable (:class:`~repro.errors.WireProtocolError` on short reads —
the host pool treats that as a dead host and replays elsewhere).

This module is pure protocol: it knows sockets and buffers, never
pools or mappers.  The serving endpoint and the routing client live in
:mod:`repro.runtime.hostpool`.
"""

from __future__ import annotations

import json
import struct
import threading
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple

from repro.errors import WireProtocolError

#: Frame magic — rejects peers that are not speaking this protocol.
MAGIC = b"RTMP"

#: Protocol version; bumped on any incompatible layout change.
VERSION = 1

#: Message types.
MSG_RUN = 1   #: client → host: tone-map the payload stack
MSG_OK = 2    #: host → client: the tone-mapped result stack
MSG_ERR = 3   #: host → client: execution failed (metadata carries why)
MSG_PING = 4  #: client → host: health probe
MSG_PONG = 5  #: host → client: health probe reply

_MSG_TYPES = frozenset((MSG_RUN, MSG_OK, MSG_ERR, MSG_PING, MSG_PONG))

_PRELUDE = struct.Struct(">4sBBHIQ")

#: Fixed prelude size in bytes (20).
PRELUDE_BYTES = _PRELUDE.size

#: Metadata is a small JSON object; anything bigger is a corrupt frame.
MAX_META_BYTES = 1 << 20

#: Payload ceiling — far above any real batch, well below a u64 that
#: would make a corrupted length field allocate the host to death.
MAX_PAYLOAD_BYTES = 1 << 34


@dataclass(frozen=True)
class NetStats:
    """Counters of one wire endpoint (a consistent snapshot).

    Attributes
    ----------
    messages_sent / messages_received:
        Whole frames moved, all message types.
    bytes_sent / bytes_received:
        Total wire traffic including preludes and metadata.
    payload_bytes_sent / payload_bytes_received:
        Array payload bytes only — the batch traffic the copies-per-hop
        table in ``docs/architecture.md`` accounts for.
    bytes_staged:
        Userspace staging copies on this endpoint: payload bytes that
        landed in (or left from) a temporary buffer instead of moving
        arena-slot ↔ socket directly.  The zero-copy framing keeps this
        **0**; any fallback path is counted here, never hidden — the
        same honesty contract as
        :class:`~repro.runtime.arena.ArenaStats`.
    """

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    payload_bytes_sent: int = 0
    payload_bytes_received: int = 0
    bytes_staged: int = 0


class NetCounters:
    """Thread-safe mutable accumulator behind :class:`NetStats`.

    One instance per endpoint (client connection set or serving host);
    the frame functions take it as an optional ``counters`` argument so
    the protocol layer stays usable without any bookkeeping.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats = NetStats()

    def _bump(self, **deltas: int) -> None:
        with self._lock:
            self._stats = replace(
                self._stats,
                **{
                    name: getattr(self._stats, name) + delta
                    for name, delta in deltas.items()
                },
            )

    def count_sent(self, wire_bytes: int, payload_bytes: int) -> None:
        self._bump(
            messages_sent=1,
            bytes_sent=wire_bytes,
            payload_bytes_sent=payload_bytes,
        )

    def count_received(self, wire_bytes: int, payload_bytes: int) -> None:
        self._bump(
            messages_received=1,
            bytes_received=wire_bytes,
            payload_bytes_received=payload_bytes,
        )

    def count_staged(self, nbytes: int) -> None:
        self._bump(bytes_staged=nbytes)

    @property
    def stats(self) -> NetStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return self._stats


def _byte_view(buffer) -> memoryview:
    """A flat writable-or-readable byte view of ``buffer``.

    Requires C-contiguity — the protocol hands buffers to the kernel
    as-is, and a strided view would silently serialize garbage.
    """
    view = memoryview(buffer)
    if not view.contiguous:
        raise WireProtocolError(
            "wire payloads must be C-contiguous (got a strided view); "
            "copy the array first if it cannot be made contiguous"
        )
    return view.cast("B")


def _sendmsg_all(sock, buffers) -> int:
    """Write every buffer with scatter-gather, absorbing partial sends.

    ``sendmsg`` on a stream socket may accept fewer bytes than offered
    (full send buffer); the loop advances the iovec list past what the
    kernel took and re-offers the rest — no coalescing copy, ever.
    """
    pending = [view for view in buffers if view.nbytes > 0]
    total = 0
    while pending:
        try:
            sent = sock.sendmsg(pending)
        except TimeoutError:
            # Socket timeouts are a *budget* signal (the host pool's
            # hedge machinery consumes them), not a protocol error.
            raise
        except OSError as exc:
            raise WireProtocolError(
                f"connection lost mid-frame while sending: {exc}"
            ) from exc
        if sent <= 0:  # pragma: no cover - kernels return >0 or raise
            raise WireProtocolError("socket refused to accept frame bytes")
        total += sent
        while sent > 0:
            head = pending[0]
            if sent >= head.nbytes:
                sent -= head.nbytes
                pending.pop(0)
            else:
                pending[0] = head[sent:]
                sent = 0
    return total


def _recv_exact_into(sock, view: memoryview, allow_eof: bool = False) -> int:
    """Fill ``view`` completely from the socket (looping partial reads).

    Returns the byte count read (``view.nbytes``), or 0 when
    ``allow_eof`` and the peer closed cleanly *before the first byte*
    — how a serving loop distinguishes "client hung up between frames"
    from "frame truncated mid-flight" (always an error).
    """
    got = 0
    while got < view.nbytes:
        try:
            n = sock.recv_into(view[got:])
        except TimeoutError:
            raise  # a budget signal, not a protocol error — see above
        except OSError as exc:
            raise WireProtocolError(
                f"connection lost mid-frame while receiving: {exc}"
            ) from exc
        if n == 0:
            if got == 0 and allow_eof:
                return 0
            raise WireProtocolError(
                f"peer closed the connection mid-frame "
                f"({got}/{view.nbytes} bytes received)"
            )
        got += n
    return got


def send_message(
    sock,
    msg_type: int,
    meta: dict,
    payload=None,
    counters: Optional[NetCounters] = None,
) -> int:
    """Send one frame; returns the wire bytes written.

    ``payload`` is any C-contiguous buffer (typically an arena slot's
    NumPy array) — it is handed to ``sendmsg`` by reference, so the
    call performs **zero** payload copies.  The caller must keep the
    buffer alive and unmodified until this returns (trivially true for
    a held :class:`~repro.runtime.arena.ArenaLease`).
    """
    if msg_type not in _MSG_TYPES:
        raise WireProtocolError(f"unknown message type {msg_type}")
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    if len(meta_bytes) > MAX_META_BYTES:
        raise WireProtocolError(
            f"frame metadata too large ({len(meta_bytes)} bytes)"
        )
    payload_view = _byte_view(payload) if payload is not None else None
    payload_nbytes = 0 if payload_view is None else payload_view.nbytes
    if payload_nbytes > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(
            f"frame payload too large ({payload_nbytes} bytes)"
        )
    prelude = _PRELUDE.pack(
        MAGIC, VERSION, msg_type, 0, len(meta_bytes), payload_nbytes
    )
    buffers = [memoryview(prelude), memoryview(meta_bytes)]
    if payload_view is not None:
        buffers.append(payload_view)
    total = _sendmsg_all(sock, buffers)
    if counters is not None:
        counters.count_sent(total, payload_nbytes)
    return total


def recv_message(
    sock,
    sink: Optional[Callable[[int, dict], object]] = None,
    counters: Optional[NetCounters] = None,
) -> Optional[Tuple[int, dict, object]]:
    """Receive one frame; returns ``(msg_type, meta, payload)``.

    ``sink(msg_type, meta)`` supplies the buffer the payload is read
    *into* — a writable C-contiguous buffer of exactly the payload
    length (the serving host and the client both hand over a freshly
    leased arena slot, which is what makes the hop zero-copy).  A
    ``None`` sink (or a sink returning ``None``) falls back to a fresh
    ``bytearray``, and that staging allocation is counted in
    ``counters.bytes_staged``.

    Returns ``None`` on a clean peer close *between* frames; raises
    :class:`~repro.errors.WireProtocolError` on truncation, bad magic,
    a version mismatch, or a mis-sized sink buffer.
    """
    prelude = bytearray(PRELUDE_BYTES)
    if _recv_exact_into(sock, memoryview(prelude), allow_eof=True) == 0:
        return None
    magic, version, msg_type, _, meta_len, payload_len = _PRELUDE.unpack(
        bytes(prelude)
    )
    if magic != MAGIC:
        raise WireProtocolError(
            f"bad frame magic {magic!r} (peer is not speaking the "
            "repro wire protocol)"
        )
    if version != VERSION:
        raise WireProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this end speaks {VERSION}"
        )
    if msg_type not in _MSG_TYPES:
        raise WireProtocolError(f"unknown message type {msg_type}")
    if meta_len > MAX_META_BYTES:
        raise WireProtocolError(f"frame metadata too large ({meta_len})")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(f"frame payload too large ({payload_len})")
    meta_bytes = bytearray(meta_len)
    if meta_len:
        _recv_exact_into(sock, memoryview(meta_bytes))
    try:
        meta = json.loads(bytes(meta_bytes).decode("utf-8")) if meta_len else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"undecodable frame metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise WireProtocolError(
            f"frame metadata must be a JSON object, got {type(meta)!r}"
        )
    payload: object = None
    if payload_len:
        if sink is not None:
            payload = sink(msg_type, meta)
        if payload is None:
            payload = bytearray(payload_len)
            if counters is not None:
                counters.count_staged(payload_len)
        view = _byte_view(payload)
        if view.nbytes != payload_len:
            raise WireProtocolError(
                f"payload sink supplied {view.nbytes} bytes for a "
                f"{payload_len}-byte payload"
            )
        if view.readonly:
            raise WireProtocolError("payload sink buffer is read-only")
        _recv_exact_into(sock, view)
    wire_bytes = PRELUDE_BYTES + meta_len + payload_len
    if counters is not None:
        counters.count_received(wire_bytes, payload_len)
    return msg_type, meta, payload
