"""Exact scalar fixed-point numbers with ``ap_fixed`` semantics.

An :class:`ApFixed` holds an integer *raw* value together with a
:class:`~repro.fixedpoint.format.FixedFormat`.  Arithmetic between two
``ApFixed`` values is **exact**: results use the widened format given by the
ap_fixed rules (see :meth:`FixedFormat.add_result` /
:meth:`FixedFormat.mul_result`), so no precision is lost until the value is
explicitly :meth:`cast` to a narrower format — mirroring how Vivado HLS
evaluates expressions at full precision and quantizes on assignment.
"""

from __future__ import annotations

import math
from typing import Union

from repro.errors import FixedPointError
from repro.fixedpoint.format import FixedFormat, Overflow, Quant

Number = Union[int, float]


def _quantize_scaled(value_num: int, value_den_log2: int, fmt: FixedFormat) -> int:
    """Quantize the exact rational ``value_num / 2**value_den_log2``.

    Returns the raw integer in *fmt* (before overflow handling).  All
    arithmetic is integer, so the result is exact for every mode.
    """
    # We need raw = Q(value * 2**F) = Q(value_num * 2**(F - value_den_log2)).
    shift = fmt.frac_length - value_den_log2
    if shift >= 0:
        scaled_num = value_num << shift if shift else value_num
        rem = 0
        div = 1
    else:
        div = 1 << (-shift)
        scaled_num, rem = divmod(value_num, div)  # floor division, rem >= 0
    if rem == 0:
        return scaled_num

    # scaled value = scaled_num + rem/div with 0 < rem < div.
    quant = fmt.quant
    half = div // 2  # div is a power of two >= 2 here
    if quant is Quant.TRN:
        return scaled_num
    if quant is Quant.TRN_ZERO:
        # Truncation toward zero: floor is already correct for positives;
        # for negatives floor went one step too low.
        if value_num < 0:
            return scaled_num + 1
        return scaled_num
    if quant is Quant.RND:
        # Round half toward plus infinity: floor(x + 1/2).
        return scaled_num + (1 if rem >= half else 0)
    if quant is Quant.RND_MIN_INF:
        # Round half toward minus infinity: ceil(x - 1/2).
        return scaled_num + (1 if rem > half else 0)
    if quant is Quant.RND_ZERO:
        # Ties toward zero.
        if value_num >= 0:
            return scaled_num + (1 if rem > half else 0)
        return scaled_num + (1 if rem >= half else 0)
    if quant is Quant.RND_INF:
        # Ties away from zero.
        if value_num >= 0:
            return scaled_num + (1 if rem >= half else 0)
        return scaled_num + (1 if rem > half else 0)
    if quant is Quant.RND_CONV:
        if rem > half:
            return scaled_num + 1
        if rem < half:
            return scaled_num
        # Exact tie: round to even.
        return scaled_num + (scaled_num & 1)
    raise FixedPointError(f"unsupported quantization mode {quant!r}")


def _overflow(raw: int, fmt: FixedFormat) -> int:
    """Apply *fmt*'s overflow mode to an unconstrained raw integer."""
    lo, hi = fmt.raw_min, fmt.raw_max
    if lo <= raw <= hi:
        return raw
    mode = fmt.overflow
    if mode is Overflow.SAT or mode is Overflow.SAT_SYM:
        return hi if raw > hi else lo
    if mode is Overflow.SAT_ZERO:
        return 0
    if mode is Overflow.WRAP:
        span = 1 << fmt.word_length
        wrapped = raw & (span - 1)
        if fmt.signed and wrapped >= (1 << (fmt.word_length - 1)):
            wrapped -= span
        return wrapped
    raise FixedPointError(f"unsupported overflow mode {mode!r}")


class ApFixed:
    """A scalar fixed-point value: raw integer plus format.

    Use :meth:`from_float` to quantize a Python float into a format, or the
    constructor with ``raw=`` for bit-exact construction.  Arithmetic
    operators return exact, widened results; :meth:`cast` quantizes back to
    a target format.
    """

    __slots__ = ("_raw", "_fmt")

    def __init__(self, raw: int, fmt: FixedFormat):
        if not isinstance(raw, int) or isinstance(raw, bool):
            raise FixedPointError(f"raw value must be an int, got {raw!r}")
        if not (fmt.raw_min <= raw <= fmt.raw_max):
            raise FixedPointError(
                f"raw value {raw} out of range [{fmt.raw_min}, {fmt.raw_max}] "
                f"for {fmt}"
            )
        self._raw = raw
        self._fmt = fmt

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_float(cls, value: Number, fmt: FixedFormat) -> "ApFixed":
        """Quantize *value* into *fmt* (quantization then overflow)."""
        if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
            raise FixedPointError(f"cannot quantize non-finite value {value!r}")
        num, den_log2 = _float_to_scaled(value)
        raw = _quantize_scaled(num, den_log2, fmt)
        return cls(_overflow(raw, fmt), fmt)

    @property
    def raw(self) -> int:
        """The underlying integer (two's-complement value of the bits)."""
        return self._raw

    @property
    def fmt(self) -> FixedFormat:
        """The fixed-point format of this value."""
        return self._fmt

    def to_float(self) -> float:
        """Exact real value as a Python float (``raw * 2**-F``)."""
        return self._raw * (2.0 ** (-self._fmt.frac_length))

    __float__ = to_float

    def cast(self, fmt: FixedFormat) -> "ApFixed":
        """Re-quantize into *fmt*, applying its quantization and overflow."""
        raw = _quantize_scaled(self._raw, self._fmt.frac_length, fmt)
        return ApFixed(_overflow(raw, fmt), fmt)

    # ------------------------------------------------------------------
    # Exact arithmetic (widening)
    # ------------------------------------------------------------------
    def __add__(self, other: "ApFixed") -> "ApFixed":
        other = self._coerce(other)
        fmt = self._fmt.add_result(other._fmt)
        raw = (self._raw << (fmt.frac_length - self._fmt.frac_length)) + (
            other._raw << (fmt.frac_length - other._fmt.frac_length)
        )
        return ApFixed(raw, fmt)

    def __sub__(self, other: "ApFixed") -> "ApFixed":
        other = self._coerce(other)
        return self + (-other)

    def __neg__(self) -> "ApFixed":
        # Negating the most negative value needs one extra integer bit.
        fmt = FixedFormat(
            word_length=self._fmt.word_length + 1,
            int_length=self._fmt.int_length + 1,
            signed=True,
            quant=self._fmt.quant,
            overflow=self._fmt.overflow,
        )
        return ApFixed(-self._raw, fmt)

    def __mul__(self, other: "ApFixed") -> "ApFixed":
        other = self._coerce(other)
        fmt = self._fmt.mul_result(other._fmt)
        return ApFixed(self._raw * other._raw, fmt)

    def __rshift__(self, bits: int) -> "ApFixed":
        """Arithmetic shift right: divides by ``2**bits`` exactly by moving
        the binary point (no precision loss; the format's integer length
        shrinks)."""
        if bits < 0:
            raise FixedPointError("shift amount must be non-negative")
        fmt = FixedFormat(
            word_length=self._fmt.word_length,
            int_length=self._fmt.int_length - bits,
            signed=self._fmt.signed,
            quant=self._fmt.quant,
            overflow=self._fmt.overflow,
        )
        return ApFixed(self._raw, fmt)

    def __lshift__(self, bits: int) -> "ApFixed":
        """Multiply by ``2**bits`` exactly by moving the binary point."""
        if bits < 0:
            raise FixedPointError("shift amount must be non-negative")
        fmt = FixedFormat(
            word_length=self._fmt.word_length,
            int_length=self._fmt.int_length + bits,
            signed=self._fmt.signed,
            quant=self._fmt.quant,
            overflow=self._fmt.overflow,
        )
        return ApFixed(self._raw, fmt)

    def _coerce(self, other: "ApFixed") -> "ApFixed":
        if isinstance(other, ApFixed):
            return other
        raise TypeError(
            f"ApFixed arithmetic requires ApFixed operands, got {type(other)!r}; "
            "quantize explicitly with ApFixed.from_float"
        )

    # ------------------------------------------------------------------
    # Comparison (exact, across formats)
    # ------------------------------------------------------------------
    def _key(self, other: "ApFixed") -> tuple:
        f = max(self._fmt.frac_length, other._fmt.frac_length)
        return (
            self._raw << (f - self._fmt.frac_length),
            other._raw << (f - other._fmt.frac_length),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ApFixed):
            return NotImplemented
        a, b = self._key(other)
        return a == b

    def __lt__(self, other: "ApFixed") -> bool:
        a, b = self._key(self._coerce(other))
        return a < b

    def __le__(self, other: "ApFixed") -> bool:
        a, b = self._key(self._coerce(other))
        return a <= b

    def __gt__(self, other: "ApFixed") -> bool:
        a, b = self._key(self._coerce(other))
        return a > b

    def __ge__(self, other: "ApFixed") -> bool:
        a, b = self._key(self._coerce(other))
        return a >= b

    def __hash__(self) -> int:
        # Equal values in different formats must hash equally; normalize by
        # stripping trailing zero fraction bits.
        raw, f = self._raw, self._fmt.frac_length
        while raw and raw % 2 == 0:
            raw //= 2
            f -= 1
        return hash((raw, f))

    def __repr__(self) -> str:
        return f"ApFixed({self.to_float()!r}, raw={self._raw}, fmt={self._fmt})"


def _float_to_scaled(value: Number) -> tuple[int, int]:
    """Represent a finite float exactly as ``num / 2**den_log2``."""
    if isinstance(value, int) and not isinstance(value, bool):
        return value, 0
    mantissa, exponent = math.frexp(value)
    # mantissa in [0.5, 1); mantissa * 2**53 is an integer for IEEE doubles.
    num = int(mantissa * (1 << 53))
    den_log2 = 53 - exponent
    if den_log2 < 0:
        return num << (-den_log2), 0
    return num, den_log2
