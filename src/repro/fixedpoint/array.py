"""Vectorized fixed-point arrays backed by NumPy ``int64`` raw values.

The accelerator functional models process whole images, so a scalar
:class:`~repro.fixedpoint.apfixed.ApFixed` per pixel would be prohibitively
slow.  :class:`FixedArray` stores the raw integers of an entire array in an
``int64`` ndarray and applies quantization / overflow / widening rules
vectorized.  The semantics match ``ApFixed`` exactly (property-tested in
``tests/test_properties_fixedpoint.py``).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import FixedPointError
from repro.fixedpoint.apfixed import ApFixed
from repro.fixedpoint.format import MAX_WORD_LENGTH, FixedFormat, Overflow, Quant

ArrayLike = Union[np.ndarray, float, int]


def quantize_array(values: np.ndarray, fmt: FixedFormat) -> np.ndarray:
    """Quantize a float array into raw integers of *fmt*.

    Returns an ``int64`` array of raw values (quantization then overflow
    applied).  Uses float64 intermediates: exact for word lengths up to 52
    bits, which covers every format used in the paper (max 32).
    """
    values = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(values)):
        raise FixedPointError("cannot quantize non-finite values")
    scaled = values * (2.0 ** fmt.frac_length)
    raw = _quantize_scaled_array(scaled, fmt.quant)
    return _overflow_array(raw, fmt)


def raw_to_float(raw: np.ndarray, fmt: FixedFormat) -> np.ndarray:
    """Convert raw integers of *fmt* back to float64 real values."""
    return np.asarray(raw, dtype=np.float64) * (2.0 ** (-fmt.frac_length))


def _quantize_scaled_array(scaled: np.ndarray, quant: Quant) -> np.ndarray:
    """Apply a quantization mode to pre-scaled float values."""
    if quant is Quant.TRN:
        out = np.floor(scaled)
    elif quant is Quant.TRN_ZERO:
        out = np.trunc(scaled)
    elif quant is Quant.RND:
        out = np.floor(scaled + 0.5)
    elif quant is Quant.RND_MIN_INF:
        out = np.ceil(scaled - 0.5)
    elif quant is Quant.RND_ZERO:
        out = np.where(scaled >= 0, np.ceil(scaled - 0.5), np.floor(scaled + 0.5))
    elif quant is Quant.RND_INF:
        out = np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
    elif quant is Quant.RND_CONV:
        out = np.rint(scaled)  # ties to even
    else:  # pragma: no cover - exhaustive over enum
        raise FixedPointError(f"unsupported quantization mode {quant!r}")
    return out.astype(np.int64)


def _overflow_array(raw: np.ndarray, fmt: FixedFormat) -> np.ndarray:
    """Apply *fmt*'s overflow mode to an unconstrained raw integer array."""
    lo, hi = fmt.raw_min, fmt.raw_max
    mode = fmt.overflow
    if mode is Overflow.SAT or mode is Overflow.SAT_SYM:
        return np.clip(raw, lo, hi)
    if mode is Overflow.SAT_ZERO:
        return np.where((raw < lo) | (raw > hi), 0, raw)
    if mode is Overflow.WRAP:
        span = np.int64(1) << np.int64(fmt.word_length)
        wrapped = np.bitwise_and(raw, span - 1)
        if fmt.signed:
            high = np.int64(1) << np.int64(fmt.word_length - 1)
            wrapped = np.where(wrapped >= high, wrapped - span, wrapped)
        return wrapped
    raise FixedPointError(f"unsupported overflow mode {mode!r}")  # pragma: no cover


class FixedArray:
    """An ndarray of fixed-point values sharing one format.

    Like :class:`ApFixed`, arithmetic widens exactly and :meth:`cast`
    quantizes.  The combined word length of exact intermediates must stay
    within ``int64``; :func:`_check_width` raises otherwise, which in
    practice forces accelerator models to insert the same intermediate
    casts a hardware designer would.
    """

    __slots__ = ("_raw", "_fmt")

    def __init__(self, raw: np.ndarray, fmt: FixedFormat):
        raw = np.asarray(raw)
        if not np.issubdtype(raw.dtype, np.integer):
            raise FixedPointError(
                f"raw array must be integer-typed, got dtype {raw.dtype}"
            )
        raw = raw.astype(np.int64)
        if raw.size and (raw.min() < fmt.raw_min or raw.max() > fmt.raw_max):
            raise FixedPointError(
                f"raw values out of range [{fmt.raw_min}, {fmt.raw_max}] for {fmt}"
            )
        self._raw = raw
        self._fmt = fmt

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_float(cls, values: ArrayLike, fmt: FixedFormat) -> "FixedArray":
        """Quantize a float array into *fmt*."""
        return cls(quantize_array(np.asarray(values, dtype=np.float64), fmt), fmt)

    @classmethod
    def zeros(cls, shape: tuple, fmt: FixedFormat) -> "FixedArray":
        """An all-zero fixed-point array."""
        return cls(np.zeros(shape, dtype=np.int64), fmt)

    @classmethod
    def full(cls, shape: tuple, value: ApFixed) -> "FixedArray":
        """An array filled with the bit pattern of a scalar."""
        return cls(np.full(shape, value.raw, dtype=np.int64), value.fmt)

    @property
    def raw(self) -> np.ndarray:
        """Raw integer values (a view; treat as read-only)."""
        return self._raw

    @property
    def fmt(self) -> FixedFormat:
        """Shared fixed-point format."""
        return self._fmt

    @property
    def shape(self) -> tuple:
        return self._raw.shape

    @property
    def size(self) -> int:
        return self._raw.size

    def to_float(self) -> np.ndarray:
        """Exact real values as float64."""
        return raw_to_float(self._raw, self._fmt)

    def cast(self, fmt: FixedFormat) -> "FixedArray":
        """Re-quantize every element into *fmt*.

        Narrowing in the TRN and RND modes stays in pure integer
        arithmetic — an arithmetic right shift is exactly ``floor(x/2^s)``
        and ``(x + 2^(s-1)) >> s`` is exactly ``floor(x/2^s + 1/2)`` — so
        the blur hot path never round-trips raws through float64.  The
        remaining modes (and extreme shifts) use the float64 intermediate,
        exact for word lengths up to 52 bits.
        """
        shift = fmt.frac_length - self._fmt.frac_length
        if shift >= 0:
            _check_width(self._fmt.word_length + shift)
            raw = self._raw << np.int64(shift)
        else:
            s = -shift
            if fmt.quant is Quant.TRN and s < 63:
                raw = self._raw >> np.int64(s)
            elif fmt.quant is Quant.RND and s < 62 and self._fmt.word_length < 62:
                raw = (self._raw + (np.int64(1) << np.int64(s - 1))) >> np.int64(s)
            else:
                scaled = self._raw.astype(np.float64) * (2.0 ** shift)
                raw = _quantize_scaled_array(scaled, fmt.quant)
        return FixedArray(_overflow_array(raw, fmt), fmt)

    # ------------------------------------------------------------------
    # Exact widening arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "FixedArray") -> "FixedArray":
        other = self._coerce(other)
        _check_add_width(self._fmt, other._fmt)
        fmt = self._fmt.add_result(other._fmt)
        a = self._raw << np.int64(fmt.frac_length - self._fmt.frac_length)
        b = other._raw << np.int64(fmt.frac_length - other._fmt.frac_length)
        return FixedArray(a + b, fmt)

    def __sub__(self, other: "FixedArray") -> "FixedArray":
        other = self._coerce(other)
        _check_add_width(self._fmt, other._fmt)
        fmt = self._fmt.add_result(other._fmt)
        a = self._raw << np.int64(fmt.frac_length - self._fmt.frac_length)
        b = other._raw << np.int64(fmt.frac_length - other._fmt.frac_length)
        return FixedArray(a - b, fmt)

    def __mul__(self, other: Union["FixedArray", ApFixed]) -> "FixedArray":
        other = self._coerce(other)
        _check_width(self._fmt.word_length + other._fmt.word_length)
        fmt = self._fmt.mul_result(other._fmt)
        return FixedArray(self._raw * other._raw, fmt)

    def mul_scalar(self, coeff: ApFixed) -> "FixedArray":
        """Multiply every element by a scalar coefficient (exact)."""
        _check_width(self._fmt.word_length + coeff.fmt.word_length)
        fmt = self._fmt.mul_result(coeff.fmt)
        return FixedArray(self._raw * np.int64(coeff.raw), fmt)

    def _coerce(self, other: Union["FixedArray", ApFixed]) -> "FixedArray":
        if isinstance(other, FixedArray):
            return other
        if isinstance(other, ApFixed):
            return FixedArray(
                np.full(self._raw.shape, other.raw, dtype=np.int64), other.fmt
            )
        raise TypeError(
            f"FixedArray arithmetic requires FixedArray or ApFixed operands, "
            f"got {type(other)!r}"
        )

    # ------------------------------------------------------------------
    # Indexing and iteration
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "FixedArray":
        item = self._raw[key]
        return FixedArray(np.asarray(item), self._fmt)

    def element(self, key) -> ApFixed:
        """A single element as a scalar :class:`ApFixed`."""
        return ApFixed(int(self._raw[key]), self._fmt)

    def __len__(self) -> int:
        return len(self._raw)

    def __repr__(self) -> str:
        return f"FixedArray(shape={self.shape}, fmt={self._fmt})"


def _check_width(word_length: int) -> None:
    if word_length > MAX_WORD_LENGTH:
        raise FixedPointError(
            f"intermediate word length {word_length} exceeds {MAX_WORD_LENGTH} "
            "bits; insert an explicit cast() to narrow the accumulator, as a "
            "hardware design would"
        )


def _check_add_width(a: FixedFormat, b: FixedFormat) -> None:
    int_bits = max(a.int_length, b.int_length) + 1
    frac_bits = max(a.frac_length, b.frac_length)
    _check_width(int_bits + frac_bits)
