"""Fixed-point format descriptions (the ``<W, I, Q, O>`` of ``ap_fixed``).

A :class:`FixedFormat` fully determines how a real number is mapped onto a
machine integer: total word length ``W``, integer bits ``I`` (which may lie
outside ``[0, W]`` exactly as in Vivado HLS), signedness, a quantization
mode applied when precision is lost, and an overflow mode applied when the
value exceeds the representable range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import BusAlignmentError, FixedPointError

#: Widths accepted for accelerator arguments by SDSoC (paper section III-C).
BUS_ALIGNED_WIDTHS = (8, 16, 32, 64)

#: Maximum word length supported by the NumPy-backed implementation.  Raw
#: values are held in ``int64``, so full-precision products must fit 63 bits.
MAX_WORD_LENGTH = 63


class Quant(enum.Enum):
    """Quantization modes, named after their Vivado HLS counterparts."""

    #: Truncate toward minus infinity (``floor``); the HLS default.
    TRN = "TRN"
    #: Truncate toward zero.
    TRN_ZERO = "TRN_ZERO"
    #: Round half up (toward plus infinity).
    RND = "RND"
    #: Round, ties toward zero.
    RND_ZERO = "RND_ZERO"
    #: Round, ties away from zero.
    RND_INF = "RND_INF"
    #: Round, ties toward minus infinity.
    RND_MIN_INF = "RND_MIN_INF"
    #: Convergent rounding, ties to even (banker's rounding).
    RND_CONV = "RND_CONV"


class Overflow(enum.Enum):
    """Overflow modes, named after their Vivado HLS counterparts."""

    #: Saturate to the most positive / most negative value; the mode used
    #: by the paper's accelerator (saturating a blurred pixel is benign,
    #: wrapping would create severe artifacts).
    SAT = "SAT"
    #: Saturate to zero on overflow.
    SAT_ZERO = "SAT_ZERO"
    #: Saturate symmetrically (signed minimum becomes ``-(2**(W-1) - 1)``).
    SAT_SYM = "SAT_SYM"
    #: Two's-complement wrap-around; the HLS default.
    WRAP = "WRAP"


@dataclass(frozen=True)
class FixedFormat:
    """An ``ap_fixed``-style fixed-point format.

    Parameters
    ----------
    word_length:
        Total number of bits ``W`` (including the sign bit when signed).
    int_length:
        Number of integer bits ``I``.  The number of fractional bits is
        ``W - I`` and may be negative (coarse formats) or exceed ``W``
        (formats representing only tiny magnitudes), as in Vivado HLS.
    signed:
        Whether the format is two's complement (``ap_fixed``) or unsigned
        (``ap_ufixed``).
    quant:
        Quantization mode applied when a value has more precision than the
        format can hold.
    overflow:
        Overflow mode applied when a value is out of range.
    """

    word_length: int
    int_length: int
    signed: bool = True
    quant: Quant = Quant.TRN
    overflow: Overflow = Overflow.WRAP

    def __post_init__(self) -> None:
        if not isinstance(self.word_length, int) or isinstance(self.word_length, bool):
            raise FixedPointError(
                f"word_length must be an int, got {self.word_length!r}"
            )
        if not isinstance(self.int_length, int) or isinstance(self.int_length, bool):
            raise FixedPointError(f"int_length must be an int, got {self.int_length!r}")
        if self.word_length < 1:
            raise FixedPointError(
                f"word_length must be >= 1, got {self.word_length}"
            )
        if self.word_length > MAX_WORD_LENGTH:
            raise FixedPointError(
                f"word_length {self.word_length} exceeds the supported maximum "
                f"of {MAX_WORD_LENGTH} bits"
            )
        if self.signed and self.word_length < 1:
            raise FixedPointError("signed formats need at least 1 bit")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def frac_length(self) -> int:
        """Number of fractional bits ``F = W - I`` (may be negative)."""
        return self.word_length - self.int_length

    @property
    def resolution(self) -> float:
        """The value of one least-significant bit, ``2**-F``."""
        return 2.0 ** (-self.frac_length)

    @property
    def raw_min(self) -> int:
        """Smallest representable raw (integer) value."""
        if not self.signed:
            return 0
        if self.overflow is Overflow.SAT_SYM:
            return -(2 ** (self.word_length - 1) - 1)
        return -(2 ** (self.word_length - 1))

    @property
    def raw_max(self) -> int:
        """Largest representable raw (integer) value."""
        if self.signed:
            return 2 ** (self.word_length - 1) - 1
        return 2**self.word_length - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.resolution

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.resolution

    @property
    def range_span(self) -> float:
        """Width of the representable interval, ``max_value - min_value``."""
        return self.max_value - self.min_value

    @property
    def is_bus_aligned(self) -> bool:
        """Whether ``W`` is a legal SDSoC accelerator-argument width."""
        return self.word_length in BUS_ALIGNED_WIDTHS

    # ------------------------------------------------------------------
    # Format algebra (ap_fixed widening rules)
    # ------------------------------------------------------------------
    def add_result(self, other: "FixedFormat") -> "FixedFormat":
        """Format of a full-precision sum, per ap_fixed widening rules.

        The integer part grows by one bit to hold the carry; the fractional
        part is the finer of the two operands.
        """
        int_bits = max(self.int_length, other.int_length) + 1
        frac_bits = max(self.frac_length, other.frac_length)
        signed = self.signed or other.signed
        return FixedFormat(
            word_length=int_bits + frac_bits,
            int_length=int_bits,
            signed=signed,
            quant=self.quant,
            overflow=self.overflow,
        )

    def mul_result(self, other: "FixedFormat") -> "FixedFormat":
        """Format of a full-precision product, per ap_fixed widening rules."""
        return FixedFormat(
            word_length=self.word_length + other.word_length,
            int_length=self.int_length + other.int_length,
            signed=self.signed or other.signed,
            quant=self.quant,
            overflow=self.overflow,
        )

    def with_modes(
        self, quant: Quant | None = None, overflow: Overflow | None = None
    ) -> "FixedFormat":
        """Return a copy with different quantization/overflow modes."""
        return replace(
            self,
            quant=quant if quant is not None else self.quant,
            overflow=overflow if overflow is not None else self.overflow,
        )

    def representable(self, value: float) -> bool:
        """Whether *value* lies within this format's range (pre-quantization)."""
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:
        kind = "ap_fixed" if self.signed else "ap_ufixed"
        return (
            f"{kind}<{self.word_length},{self.int_length},"
            f"{self.quant.value},{self.overflow.value}>"
        )


def check_bus_alignment(fmt: FixedFormat) -> None:
    """Raise :class:`BusAlignmentError` unless *fmt* can cross the PS/PL bus.

    SDSoC requires hardware-function argument widths of 8, 16, 32 or 64
    bits to guarantee AXI bus alignment (paper section III-C).  The paper
    chose 16 bits for the fixed-point blur for exactly this reason.
    """
    if not fmt.is_bus_aligned:
        raise BusAlignmentError(
            f"{fmt} has word length {fmt.word_length}; SDSoC accelerator "
            f"arguments must be one of {BUS_ALIGNED_WIDTHS} bits wide"
        )
