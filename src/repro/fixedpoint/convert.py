"""Float-to-fixed conversion analysis.

Converting the Gaussian blur from 32-bit float to 16-bit fixed point
(paper section III-C) requires choosing integer/fraction splits that cover
the dynamic range of each signal while minimizing quantization noise.
This module provides the range analysis and error reporting used to make
(and document) that choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import FixedPointError
from repro.fixedpoint.array import quantize_array, raw_to_float
from repro.fixedpoint.format import FixedFormat, Overflow, Quant


@dataclass(frozen=True)
class RangeReport:
    """Observed dynamic range of a signal."""

    min_value: float
    max_value: float

    @property
    def max_abs(self) -> float:
        return max(abs(self.min_value), abs(self.max_value))

    @property
    def needs_sign(self) -> bool:
        return self.min_value < 0.0


@dataclass(frozen=True)
class QuantizationErrorStats:
    """Error statistics of quantizing a signal into a format.

    ``snr_db`` is the signal-to-quantization-noise ratio; ``inf`` when the
    quantization is exact.
    """

    max_abs_error: float
    rms_error: float
    snr_db: float
    saturated_fraction: float

    @property
    def is_exact(self) -> bool:
        return self.max_abs_error == 0.0


def value_range(values: np.ndarray) -> RangeReport:
    """Observed min/max of a float array."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise FixedPointError("cannot analyse the range of an empty array")
    if not np.all(np.isfinite(values)):
        raise FixedPointError("range analysis requires finite values")
    return RangeReport(float(values.min()), float(values.max()))


def integer_bits_required(max_abs: float, signed: bool) -> int:
    """Minimum integer bits so that ``|value| <= max_abs`` is representable.

    For signed formats this counts the sign bit (as ap_fixed's ``I`` does).
    A ``max_abs`` of 0 needs no magnitude bits.
    """
    if max_abs < 0:
        raise FixedPointError("max_abs must be non-negative")
    if max_abs == 0:
        magnitude_bits = 0
    else:
        # Smallest i with max_abs < 2**i.  Values exactly at a power of two
        # still need that power representable, hence the nudge for exact
        # powers: 1.0 needs i=1 (unsigned range [0, 2) at resolution below).
        magnitude_bits = math.floor(math.log2(max_abs)) + 1
        if 2.0 ** (magnitude_bits - 1) > max_abs:
            magnitude_bits -= 1
    return magnitude_bits + (1 if signed else 0)


def suggest_format(
    values: np.ndarray,
    word_length: int,
    signed: bool | None = None,
    quant: Quant = Quant.RND,
    overflow: Overflow = Overflow.SAT,
    headroom_bits: int = 0,
) -> FixedFormat:
    """Pick the finest format of *word_length* bits covering *values*.

    The integer length is the minimum needed for the observed range plus
    *headroom_bits* (use headroom when downstream accumulation can grow the
    magnitude, e.g. a convolution accumulator).  The paper's blur operates
    on normalized pixels in ``[0, 1]``, for which this yields the
    ``ap_fixed<16, 1>``-style formats used by the fixed-point accelerator.
    """
    report = value_range(values)
    if signed is None:
        signed = report.needs_sign
    if report.needs_sign and not signed:
        raise FixedPointError(
            "values contain negatives but an unsigned format was requested"
        )
    int_length = integer_bits_required(report.max_abs, signed) + headroom_bits
    # A value exactly equal to 2**(i_magnitude) (e.g. max == 1.0 with one
    # integer bit) saturates to one LSB below; that is accepted and reported
    # by quantization_error_stats rather than silently widened, matching
    # what a designer sees in practice.
    return FixedFormat(
        word_length=word_length,
        int_length=int_length,
        signed=signed,
        quant=quant,
        overflow=overflow,
    )


def quantization_error_stats(
    values: np.ndarray, fmt: FixedFormat
) -> QuantizationErrorStats:
    """Quantize *values* into *fmt* and report the resulting error."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise FixedPointError("cannot quantize an empty array")
    raw = quantize_array(values, fmt)
    recon = raw_to_float(raw, fmt)
    err = recon - values
    max_abs_error = float(np.max(np.abs(err)))
    rms = float(np.sqrt(np.mean(err**2)))
    signal_power = float(np.mean(values**2))
    if rms == 0.0:
        snr_db = math.inf
    elif signal_power == 0.0:
        snr_db = -math.inf
    else:
        snr_db = 10.0 * math.log10(signal_power / rms**2)
    saturated = np.logical_or(
        values > fmt.max_value + 0.5 * fmt.resolution,
        values < fmt.min_value - 0.5 * fmt.resolution,
    )
    return QuantizationErrorStats(
        max_abs_error=max_abs_error,
        rms_error=rms,
        snr_db=snr_db,
        saturated_fraction=float(np.mean(saturated)),
    )
