"""Bit-accurate fixed-point arithmetic, emulating Vivado HLS ``ap_fixed``.

The paper converts the Gaussian-blur accelerator from 32-bit floating point
to a 16-bit fixed-point representation using the Vivado HLS ``ap_fixed``
arbitrary-precision type (section III-C).  This package provides a Python
equivalent:

* :class:`FixedFormat` — a word-length / integer-length / signedness /
  quantization / overflow specification, mirroring
  ``ap_fixed<W, I, Q, O>``.
* :class:`ApFixed` — an exact scalar fixed-point number with ap_fixed
  widening arithmetic semantics.
* :class:`FixedArray` — a vectorized (NumPy-backed) fixed-point array used
  by the bit-accurate accelerator models.
* :func:`quantize_array` — vectorized float→raw quantization.
* :func:`suggest_format` / :func:`quantization_error_stats` — the
  float-to-fixed conversion analysis used when choosing blur coefficients.

SDSoC's bus-alignment restriction (hardware-function argument widths must
be 8, 16, 32 or 64 bits) is enforced by :func:`check_bus_alignment`.
"""

from repro.fixedpoint.format import (
    Overflow,
    Quant,
    FixedFormat,
    check_bus_alignment,
    BUS_ALIGNED_WIDTHS,
)
from repro.fixedpoint.apfixed import ApFixed
from repro.fixedpoint.array import FixedArray, quantize_array, raw_to_float
from repro.fixedpoint.convert import (
    RangeReport,
    QuantizationErrorStats,
    value_range,
    integer_bits_required,
    suggest_format,
    quantization_error_stats,
)

__all__ = [
    "Overflow",
    "Quant",
    "FixedFormat",
    "check_bus_alignment",
    "BUS_ALIGNED_WIDTHS",
    "ApFixed",
    "FixedArray",
    "quantize_array",
    "raw_to_float",
    "RangeReport",
    "QuantizationErrorStats",
    "value_range",
    "integer_bits_required",
    "suggest_format",
    "quantization_error_stats",
]
