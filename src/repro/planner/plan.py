"""Workload → :class:`ExecutionPlan`: the model-driven dispatch planner.

The runtime used to pick execution paths through env-var thresholds
scattered across modules and captured at import.  This module is the
replacement: describe a workload (shape, sigma/taps, batch, dtype,
threads), and :class:`Planner` consults the host calibration
(:mod:`repro.planner.profile`) plus the analytic cost model
(:mod:`repro.planner.cost`) to emit one :class:`ExecutionPlan` — the
record of every dispatch decision (engine, blur strategy, band budget,
thread partition) with a human-readable cost rationale.  Runtime
constructors (:class:`repro.runtime.batch.BatchToneMapper`,
:class:`repro.runtime.shard.ShardPool`,
:class:`repro.runtime.service.ToneMapService`) accept a plan and follow
it verbatim; without one they fall back to the same call-time decision
formulas, so planned and unplanned execution cannot diverge.

Plans are frozen, JSON-round-trippable (golden snapshot tests pin them),
and picklable (a :class:`~repro.runtime.shard.ShardPool` ships its plan
to worker processes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from repro.errors import ToneMapError
from repro.planner import cost as _cost
from repro.planner.profile import (
    CalibrationProfile,
    active_profile,
    select_blur_method,
    select_engine,
    select_fused_h_method,
)

#: Workload dtypes the planner understands.  ``float32``/``float64``
#: take the float pipeline (fused-eligible); ``fixed`` is the Q-format
#: fixed-point pipeline, which is staged-only (the fused engine *is*
#: the float blur).
WORKLOAD_DTYPES = ("float32", "float64", "fixed")


@dataclass(frozen=True)
class Workload:
    """What the planner plans for: one tone-mapping traffic description.

    ``sigma``/``radius`` follow :class:`repro.tonemap.gaussian.GaussianKernel`
    semantics exactly (``radius=None`` → ``ceil(3 * sigma)``), so the
    planner's notion of kernel width cannot drift from the kernel the
    runtime actually builds.
    """

    height: int
    width: int
    batch: int = 1
    sigma: float = 16.0
    radius: Optional[int] = None
    dtype: str = "float32"
    color: bool = False
    threads: Optional[int] = None

    def __post_init__(self) -> None:
        if self.height < 1 or self.width < 1:
            raise ToneMapError(
                f"workload shape must be positive, got "
                f"{self.height}x{self.width}"
            )
        if self.batch < 1:
            raise ToneMapError(f"batch must be >= 1, got {self.batch}")
        if self.sigma <= 0:
            raise ToneMapError(f"sigma must be positive, got {self.sigma}")
        if self.radius is not None and self.radius < 1:
            raise ToneMapError(f"radius must be >= 1, got {self.radius}")
        if self.dtype not in WORKLOAD_DTYPES:
            raise ToneMapError(
                f"unknown workload dtype {self.dtype!r}; expected one of "
                f"{WORKLOAD_DTYPES}"
            )
        if self.threads is not None and self.threads < 1:
            raise ToneMapError(f"threads must be >= 1, got {self.threads}")

    @property
    def effective_radius(self) -> int:
        """Kernel radius, defaulted the way :class:`GaussianKernel` does."""
        if self.radius is not None:
            return self.radius
        return max(1, math.ceil(3.0 * self.sigma))

    @property
    def taps(self) -> int:
        return 2 * self.effective_radius + 1

    @property
    def plane_bytes(self) -> int:
        """Float64 working-set bytes of one luminance plane — the unit
        every calibrated size crossover is expressed in."""
        return self.height * self.width * 8

    @property
    def fixed(self) -> bool:
        return self.dtype == "fixed"

    def to_json_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json_dict(cls, data: dict) -> "Workload":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def _resolve_threads(requested: Optional[int]) -> int:
    """Fused worker-thread count: explicit request, else the runtime
    default (``REPRO_FUSED_THREADS`` env, else CPU count)."""
    if requested is not None:
        return requested
    from repro.runtime.fused import _default_threads

    return _default_threads()


@dataclass(frozen=True)
class ExecutionPlan:
    """Every dispatch decision for one workload, with its rationale.

    Attributes
    ----------
    workload / profile:
        What was planned and against which host calibration.  The
        profile is embedded so executing the plan later (or in another
        process — plans are picklable) replays exactly the decisions
        recorded here, whatever the environment does in between.
    engine:
        ``"fused"`` (single-pass band dataflow) or ``"staged"``
        (stage-at-a-time with full-frame temporaries).
    blur_method:
        Staged row-convolution strategy (``folded``/``tiled``/``fft``)
        — the path the staged engine runs, and the reference the fused
        engine's tolerance contract is stated against.
    fused_h_method:
        Horizontal-pass strategy the fused engine would use
        (``folded``/``fft``); meaningful when ``engine == "fused"``.
    band_bytes / band_rows:
        Fused band scratch budget and the resulting rows per band for
        this workload's geometry.
    threads / partitions:
        Fused worker threads and how many ``(image, row)`` chunks the
        row space actually splits into (≤ threads for small workloads).
    rationale:
        Human-readable lines: which calibrated crossover decided what,
        plus the cost model's candidate estimates.
    cost_estimates:
        ``(candidate, model_seconds)`` pairs from
        :func:`repro.planner.cost.estimate_candidates`, cheapest first.
        These *explain* the plan (and golden tests pin their ordering);
        the decisions come from the calibrated crossovers.
    """

    workload: Workload
    profile: CalibrationProfile
    engine: str
    blur_method: str
    fused_h_method: str
    band_bytes: int
    band_rows: int
    threads: int
    partitions: int
    rationale: Tuple[str, ...] = ()
    cost_estimates: Tuple[Tuple[str, float], ...] = ()

    def decision(self) -> dict:
        """The plan's load-bearing choices (what golden tests pin)."""
        return {
            "engine": self.engine,
            "blur_method": self.blur_method,
            "fused_h_method": self.fused_h_method,
            "band_bytes": self.band_bytes,
            "band_rows": self.band_rows,
            "partitions": self.partitions,
        }

    def describe(self) -> str:
        """Multi-line human-readable plan dump (the CLI's output)."""
        w = self.workload
        lines = [
            f"workload: {w.batch}x{w.height}x{w.width} "
            f"{'color' if w.color else 'gray'} {w.dtype}, "
            f"sigma={w.sigma} ({w.taps} taps)",
            f"profile: {self.profile.source} "
            f"({'calibrated' if self.profile.calibrated else 'defaults'}, "
            f"host: {self.profile.host})",
            f"plan: engine={self.engine} blur={self.blur_method} "
            f"fused_h={self.fused_h_method} band_bytes={self.band_bytes} "
            f"band_rows={self.band_rows} threads={self.threads} "
            f"partitions={self.partitions}",
            "rationale:",
        ]
        lines.extend(f"  - {line}" for line in self.rationale)
        lines.append("cost model (relative, not wall-clock):")
        lines.extend(
            f"  - {line}"
            for line in _cost.format_candidates(dict(self.cost_estimates))
        )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "workload": self.workload.to_json_dict(),
            "profile": self.profile.to_json_dict(),
            "engine": self.engine,
            "blur_method": self.blur_method,
            "fused_h_method": self.fused_h_method,
            "band_bytes": self.band_bytes,
            "band_rows": self.band_rows,
            "threads": self.threads,
            "partitions": self.partitions,
            "rationale": list(self.rationale),
            "cost_estimates": [list(pair) for pair in self.cost_estimates],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ExecutionPlan":
        return cls(
            workload=Workload.from_json_dict(data["workload"]),
            profile=CalibrationProfile.from_json_dict(data["profile"]),
            engine=data["engine"],
            blur_method=data["blur_method"],
            fused_h_method=data["fused_h_method"],
            band_bytes=data["band_bytes"],
            band_rows=data["band_rows"],
            threads=data["threads"],
            partitions=data["partitions"],
            rationale=tuple(data.get("rationale", ())),
            cost_estimates=tuple(
                (name, float(seconds))
                for name, seconds in data.get("cost_estimates", ())
            ),
        )


class Planner:
    """Emits :class:`ExecutionPlan` objects from a calibration profile.

    ``profile=None`` (the default) resolves the active profile *per
    plan* — env overrides and ``override()`` scopes take effect
    immediately; pass a profile to pin one calibration for the
    planner's lifetime (the golden tests pin the checked-in reference
    profile this way).
    """

    def __init__(self, profile: Optional[CalibrationProfile] = None):
        self._profile = profile

    @property
    def profile(self) -> CalibrationProfile:
        return (
            self._profile if self._profile is not None else active_profile()
        )

    def plan(self, workload: Workload) -> ExecutionPlan:
        from repro.runtime.fused import _partition_spans, band_rows_for

        profile = self.profile
        taps = workload.taps
        plane_bytes = workload.plane_bytes

        engine = select_engine(taps, profile, fixed=workload.fixed)
        blur_method = select_blur_method(taps, plane_bytes, profile)
        fused_h = select_fused_h_method(taps, plane_bytes, profile)
        band_bytes = profile.fused_band_bytes
        band_rows = band_rows_for(
            workload.height,
            workload.width,
            workload.color,
            workload.effective_radius,
            band_bytes,
        )
        threads = _resolve_threads(workload.threads)
        partitions = len(
            _partition_spans(workload.batch, workload.height, threads)
        )

        costs = _cost.estimate_candidates(
            workload.batch, workload.height, workload.width, taps
        )
        rationale = self._rationale(
            workload, profile, engine, blur_method, fused_h, band_rows,
            partitions,
        )
        return ExecutionPlan(
            workload=workload,
            profile=profile,
            engine=engine,
            blur_method=blur_method,
            fused_h_method=fused_h,
            band_bytes=band_bytes,
            band_rows=band_rows,
            threads=threads,
            partitions=partitions,
            rationale=tuple(rationale),
            cost_estimates=tuple(
                sorted(costs.items(), key=lambda item: item[1])
            ),
        )

    @staticmethod
    def _rationale(
        workload: Workload,
        profile: CalibrationProfile,
        engine: str,
        blur_method: str,
        fused_h: str,
        band_rows: int,
        partitions: int,
    ) -> list:
        taps = workload.taps
        lines = []
        if workload.fixed:
            lines.append(
                "engine=staged: fixed-point pipeline — the fused engine "
                "is float-only (it is the float blur)"
            )
        elif engine == "fused":
            lines.append(
                f"engine=fused: taps {taps} < fused_fft_min_taps "
                f"{profile.fused_fft_min_taps} — the band engine's folded "
                "window beats staged execution for narrow kernels "
                "(measured 1.4-1.9x on the reference host)"
            )
        else:
            lines.append(
                f"engine=staged: taps {taps} >= fused_fft_min_taps "
                f"{profile.fused_fft_min_taps} — the staged full-plane "
                "FFT's transform-length amortization wins for wide "
                "kernels (fused measured ~0.5x at sigma 16)"
            )
        if blur_method == "fft":
            lines.append(
                f"blur=fft: taps {taps} >= fft_crossover_taps "
                f"{profile.fft_crossover_taps} — O(W log W) per row beats "
                f"{(taps + 1) // 2} folded multiply passes"
            )
        elif blur_method == "tiled":
            lines.append(
                f"blur=tiled: taps {taps} < fft_crossover_taps "
                f"{profile.fft_crossover_taps} and plane "
                f"{workload.plane_bytes} B >= tiled_min_plane_bytes "
                f"{profile.tiled_min_plane_bytes} — block rows so the "
                "folded working set stays cache-resident"
            )
        else:
            lines.append(
                f"blur=folded: taps {taps} < fft_crossover_taps "
                f"{profile.fft_crossover_taps} and plane "
                f"{workload.plane_bytes} B < tiled_min_plane_bytes "
                f"{profile.tiled_min_plane_bytes} — temporaries stay "
                "cached, blocking would only add loop overhead"
            )
        if engine == "fused":
            lines.append(
                f"fused horizontal={fused_h}, band_rows={band_rows} "
                f"(band budget {profile.fused_band_bytes} B), "
                f"{partitions} row partition(s)"
            )
        return lines


def plan_for(
    height: int,
    width: int,
    batch: int = 1,
    sigma: float = 16.0,
    radius: Optional[int] = None,
    dtype: str = "float32",
    color: bool = False,
    threads: Optional[int] = None,
    profile: Optional[CalibrationProfile] = None,
) -> ExecutionPlan:
    """One-call convenience: build the workload and plan it."""
    return Planner(profile).plan(
        Workload(
            height=height,
            width=width,
            batch=batch,
            sigma=sigma,
            radius=radius,
            dtype=dtype,
            color=color,
            threads=threads,
        )
    )


def pinned(plan: ExecutionPlan, **changes) -> ExecutionPlan:
    """A copy of *plan* with explicit decision overrides applied.

    The escape hatch for operators who want the planner's record-keeping
    but a specific path: ``pinned(plan, engine="staged")`` keeps the
    workload, profile, and rationale but notes the pin.
    """
    allowed = {
        "engine", "blur_method", "fused_h_method", "band_bytes", "threads",
    }
    unknown = set(changes) - allowed
    if unknown:
        raise ToneMapError(
            f"cannot pin unknown plan fields: {sorted(unknown)}"
        )
    note = ", ".join(f"{k}={v}" for k, v in sorted(changes.items()))
    return replace(
        plan,
        **changes,
        rationale=plan.rationale + (f"pinned by caller: {note}",),
    )
