"""Analytic candidate costing: the planner's cost-model consult.

The planner's *decisions* come from the calibrated crossovers (see
``repro.planner.profile`` — absolute host constants can only come from
measurement), but every emitted plan carries a **cost rationale**: the
candidate execution paths priced through the same platform cost model
the HLS side of this repo schedules against
(:class:`repro.platform.cpu.ArmCortexA9Model` pricing a
:class:`~repro.platform.cpu.SwKernelTrace` of per-path operation
counts, the software twin of the ``repro.hls`` operator-latency
library).  The model's relative ordering is what makes a rationale
legible — "folded streams 3x the memory traffic of tiled here", "the
FFT does O(W log W) work per row regardless of taps" — and the tests
pin that its ordering *agrees* with the calibrated decision in the
regimes the crossover defaults were measured in.

All estimates cover the blur of one ``(batch, H, W)`` luminance volume
plus, for the engine comparison, the surrounding stage traffic (the
staged path streams several full-frame temporaries per stage; the fused
path touches the frame roughly once and keeps its scratch band-resident).
Element counts are priced in float64 unless noted.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.platform.cpu import ArmCortexA9Model, SwKernelTrace

#: One shared pricing model.  The A9 constants are not this host — no
#: analytic model is — but the *ratios* between candidate paths (flop
#: counts, cache-class memory traffic) are what the rationale reports,
#: and those transfer.
_MODEL = ArmCortexA9Model()

#: Full real-FFT butterfly constant: ~5 real ops per point per log2
#: level, and a row pass does forward transform, spectrum multiply, and
#: inverse transform.
_FFT_OPS_PER_POINT_LEVEL = 5.0


def _blur_trace_sliding(
    rows: int, width: int, taps: int, cache_resident: bool
) -> SwKernelTrace:
    """Operation counts of a folded sliding-window row pass over *rows*.

    ``ceil(taps/2)`` multiply passes (mirrored taps share a
    coefficient): each output element reads two mirrored inputs, adds
    them, multiplies by the coefficient, and accumulates.
    ``cache_resident`` distinguishes the tiled traversal (block working
    set stays in L2-class cache) from the unblocked folded pass on
    planes whose three full-plane temporaries stream through memory.
    """
    pairs = (taps + 1) // 2
    elements = rows * width
    flops = elements * pairs * 3  # add + mul + accumulate per pair
    loads = elements * pairs * 2
    trace = SwKernelTrace(
        name="sliding",
        flops=flops,
        sequential_loads=loads if cache_resident else 0,
        strided_loads=0 if cache_resident else loads,
        strided_working_set_bytes=0 if cache_resident else width * 8 * 3,
        stores=elements * pairs,
        element_bytes=8,
    )
    return trace


def _blur_trace_fft(rows: int, width: int, taps: int) -> SwKernelTrace:
    """Operation counts of an FFT row pass over *rows*."""
    radius = (taps - 1) // 2
    n = width + 2 * radius + taps - 1  # linear-convolution length
    levels = max(1.0, math.log2(n))
    per_row = 2 * _FFT_OPS_PER_POINT_LEVEL * n * levels + 6 * n
    elements = rows * width
    return SwKernelTrace(
        name="fft",
        flops=int(rows * per_row),
        sequential_loads=rows * n * 4,  # transform buffers stream
        stores=elements,
        element_bytes=8,
    )


def _stage_traffic_trace(frames: int, height: int, width: int, passes: float) -> SwKernelTrace:
    """Memory traffic of the non-blur stages: *passes* full-frame
    read+write sweeps (normalize, mask, adjust materializations)."""
    elements = int(frames * height * width * passes)
    return SwKernelTrace(
        name="stages",
        sequential_loads=elements,
        stores=elements,
        element_bytes=8,
    )


def estimate_blur_seconds(
    method: str, frames: int, height: int, width: int, taps: int
) -> float:
    """Model-seconds for both separable passes of one blur method."""
    rows = frames * height  # a vertical pass transposes: same row count
    if method == "fft":
        trace = _blur_trace_fft(rows, width, taps)
    elif method == "tiled":
        trace = _blur_trace_sliding(rows, width, taps, cache_resident=True)
    elif method == "folded":
        resident = height * width * 8 * 3 <= _MODEL.l2.size_bytes
        trace = _blur_trace_sliding(rows, width, taps, cache_resident=resident)
    else:
        raise ValueError(f"unknown blur method {method!r}")
    return 2.0 * _MODEL.seconds(trace)


def estimate_candidates(
    frames: int, height: int, width: int, taps: int
) -> Dict[str, float]:
    """Model-seconds for every candidate execution path of a workload.

    Keys: ``staged-folded``, ``staged-tiled``, ``staged-fft`` (blur via
    each staged row-convolution strategy plus the staged stage traffic)
    and ``fused-folded`` (folded blur arithmetic with band-resident
    stage traffic — roughly one frame sweep instead of several).
    """
    stage_staged = _MODEL.seconds(
        _stage_traffic_trace(frames, height, width, passes=3.0)
    )
    stage_fused = _MODEL.seconds(
        _stage_traffic_trace(frames, height, width, passes=1.0)
    )
    blur = {
        method: estimate_blur_seconds(method, frames, height, width, taps)
        for method in ("folded", "tiled", "fft")
    }
    return {
        "staged-folded": blur["folded"] + stage_staged,
        "staged-tiled": blur["tiled"] + stage_staged,
        "staged-fft": blur["fft"] + stage_staged,
        "fused-folded": blur["tiled"] + stage_fused,
    }


def format_candidates(costs: Dict[str, float]) -> list:
    """Human-readable cost lines, cheapest first, normalized to it."""
    ordered = sorted(costs.items(), key=lambda item: item[1])
    cheapest = ordered[0][1] or 1.0
    return [
        f"{name}: {seconds * 1e3:.2f} model-ms ({seconds / cheapest:.2f}x)"
        for name, seconds in ordered
    ]
