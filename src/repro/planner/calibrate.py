"""Measure this host's dispatch crossovers and write a calibration profile.

``repro.tonemap.gaussian`` dispatches ``method="auto"`` on two
calibrated crossovers: ``fft_crossover_taps`` (folded sliding window →
FFT row convolution) and ``tiled_min_plane_bytes`` (folded →
cache-blocked tiled traversal for narrow kernels).  The built-in
defaults were measured on the reference host; a different FFT build,
cache hierarchy, or memory subsystem moves them.  This module
re-measures the crossovers *here* and writes them as a
:class:`~repro.planner.profile.CalibrationProfile`:

    PYTHONPATH=src python -m repro.cli planner calibrate -o host.json
    export REPRO_PLANNER_PROFILE=host.json

(For one-off pins the per-threshold env vars still work — the report
prints them — but the profile file carries provenance and survives
shells.)

The sweep times :func:`separable_blur` with the method pinned, so the
numbers are end-to-end (both separable passes), not synthetic.  A
crossover is the smallest grid point from which the challenger path wins
at every remaining grid point — a single noisy win does not move the
dispatch.  ``--quick`` shrinks the grids for smoke runs (CI / tests);
use the defaults (or larger ``--rounds``) for a real calibration.

``tools/calibrate_crossover.py`` remains as a thin shim over this
module for callers of the historical entry point.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.planner.profile import (
    CalibrationProfile,
    active_profile,
)
from repro.tonemap.gaussian import GaussianKernel, separable_blur

#: Radii swept for the folded-vs-FFT crossover (taps = 2r + 1).
RADIUS_GRID = (4, 6, 8, 10, 12, 14, 16, 20, 24, 32)
QUICK_RADIUS_GRID = (4, 8, 12)

#: Plane edge sizes swept for the folded-vs-tiled crossover.
SIZE_GRID = (512, 768, 1024, 1536, 2048, 3072)
QUICK_SIZE_GRID = (128, 256)

#: Narrow-kernel radius used for the tiled sweep (must stay below the
#: FFT crossover, where the tiled path is reachable at all).
TILED_SWEEP_RADIUS = 8


def _best_seconds(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _stable_crossover(rows, key):
    """Smallest grid point from which the challenger wins at every
    remaining point; ``None`` when it never stabilizes."""
    for i, row in enumerate(rows):
        if all(r["challenger_s"] < r["incumbent_s"] for r in rows[i:]):
            return row[key]
    return None


def sweep_fft_taps(size: int, rounds: int, grid) -> dict:
    """folded vs FFT row convolution across kernel widths."""
    rng = np.random.default_rng(2018)
    plane = rng.uniform(0.0, 1.0, (size, size))
    rows = []
    for radius in grid:
        kernel = GaussianKernel(sigma=max(radius / 3.0, 0.5), radius=radius)
        folded_s = _best_seconds(
            lambda: separable_blur(plane, kernel, method="folded"), rounds
        )
        fft_s = _best_seconds(
            lambda: separable_blur(plane, kernel, method="fft"), rounds
        )
        rows.append(
            {
                "taps": kernel.taps,
                "incumbent_s": folded_s,
                "challenger_s": fft_s,
            }
        )
    crossover = _stable_crossover(rows, "taps")
    if crossover is None:
        # FFT never stabilized as the winner on this grid: recommend a
        # value just past the widest measured kernel so auto stays on
        # the sliding-window paths where they are known to win.
        crossover = rows[-1]["taps"] + 2
    return {"rows": rows, "recommended": int(crossover)}


def sweep_tiled_bytes(rounds: int, grid) -> dict:
    """folded vs tiled traversal across plane sizes (narrow kernel)."""
    rng = np.random.default_rng(2019)
    kernel = GaussianKernel(
        sigma=TILED_SWEEP_RADIUS / 3.0, radius=TILED_SWEEP_RADIUS
    )
    rows = []
    for size in grid:
        plane = rng.uniform(0.0, 1.0, (size, size))
        folded_s = _best_seconds(
            lambda: separable_blur(plane, kernel, method="folded"), rounds
        )
        tiled_s = _best_seconds(
            lambda: separable_blur(plane, kernel, method="tiled"), rounds
        )
        rows.append(
            {
                "plane_bytes": plane.nbytes,
                "size": size,
                "incumbent_s": folded_s,
                "challenger_s": tiled_s,
            }
        )
    crossover = _stable_crossover(rows, "plane_bytes")
    if crossover is None:
        # Tiling never stabilized as the winner (typical on hosts whose
        # LLC swallows the whole sweep): push the threshold past the
        # largest measured plane.
        crossover = rows[-1]["plane_bytes"] * 2
    return {"rows": rows, "recommended": int(crossover)}


def build_profile(fft: dict, tiled: dict, quick: bool = False) -> CalibrationProfile:
    """Assemble a profile from sweep results.

    The two measured crossovers come from the sweeps; the fused-engine
    thresholds are carried over from the currently active profile (they
    calibrate against the fused benchmark suite, not these sweeps) —
    the provenance string records both facts.
    """
    base = active_profile()
    return CalibrationProfile(
        fft_crossover_taps=fft["recommended"],
        tiled_min_plane_bytes=tiled["recommended"],
        fused_fft_min_taps=base.fused_fft_min_taps,
        fused_band_bytes=base.fused_band_bytes,
        fused_pooled_geometries=base.fused_pooled_geometries,
        host=f"{platform.node() or 'unknown'} ({platform.machine()})",
        source="calibration" + (" (quick)" if quick else ""),
        calibrated=not quick,
    )


def run_calibration(
    size: int = 768,
    rounds: int = 3,
    quick: bool = False,
) -> dict:
    """Run both sweeps and build the profile; returns all three."""
    radius_grid = QUICK_RADIUS_GRID if quick else RADIUS_GRID
    size_grid = QUICK_SIZE_GRID if quick else SIZE_GRID
    size = min(size, 256) if quick else size
    fft = sweep_fft_taps(size, rounds, radius_grid)
    tiled = sweep_tiled_bytes(rounds, size_grid)
    profile = build_profile(fft, tiled, quick=quick)
    return {"fft": fft, "tiled": tiled, "profile": profile, "size": size}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro planner calibrate",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--size", type=int, default=768,
        help="plane edge for the FFT-crossover sweep (default 768)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing rounds per point, best-of (default 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny grids for smoke runs (CI); not a real calibration",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full sweep as JSON instead of the report",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="write the calibration profile JSON here (load it via "
        "REPRO_PLANNER_PROFILE or CalibrationProfile.load)",
    )
    args = parser.parse_args(argv)

    result = run_calibration(
        size=args.size, rounds=args.rounds, quick=args.quick
    )
    fft, tiled = result["fft"], result["tiled"]
    profile: CalibrationProfile = result["profile"]

    if args.output is not None:
        profile.save(
            args.output,
            extra={"sweeps": {"fft": fft, "tiled": tiled}},
        )

    if args.json:
        payload = {
            "fft": fft,
            "tiled": tiled,
            "profile": profile.to_json_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0

    current = active_profile()
    print(f"FFT crossover sweep ({result['size']}x{result['size']} plane, "
          f"best of {args.rounds}):")
    for row in fft["rows"]:
        winner = "fft" if row["challenger_s"] < row["incumbent_s"] else "folded"
        print(f"  taps {row['taps']:>3}: folded {row['incumbent_s']*1e3:8.2f} ms"
              f"   fft {row['challenger_s']*1e3:8.2f} ms   -> {winner}")
    print(f"Tiled crossover sweep (radius {TILED_SWEEP_RADIUS} kernel):")
    for row in tiled["rows"]:
        winner = (
            "tiled" if row["challenger_s"] < row["incumbent_s"] else "folded"
        )
        print(f"  {row['size']:>4}^2 ({row['plane_bytes']:>10} B): "
              f"folded {row['incumbent_s']*1e3:8.2f} ms   "
              f"tiled {row['challenger_s']*1e3:8.2f} ms   -> {winner}")
    print()
    print(f"current dispatch: FFT_CROSSOVER_TAPS="
          f"{current.fft_crossover_taps} "
          f"TILED_MIN_PLANE_BYTES={current.tiled_min_plane_bytes} "
          f"(source: {current.source})")
    if args.output is not None:
        print(f"profile written to {args.output} "
              f"(activate: export REPRO_PLANNER_PROFILE={args.output})")
    print("recommended overrides for this host "
          "(read by the planner at call time):")
    print(f"export REPRO_FFT_CROSSOVER_TAPS={fft['recommended']}")
    print(f"export REPRO_TILED_MIN_PLANE_BYTES={tiled['recommended']}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
