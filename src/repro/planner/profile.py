"""Calibration profiles and the shared dispatch-decision formulas.

This module is the planner's foundation and deliberately imports nothing
from the rest of the package (or from the tonemap/runtime modules that
consult it), so the hot paths can read it without import cycles:

* :class:`CalibrationProfile` — the serialized host calibration: every
  crossover the runtime used to scatter across env-var module constants
  (``FFT_CROSSOVER_TAPS``, ``TILED_MIN_PLANE_BYTES``,
  ``FUSED_FFT_MIN_TAPS``, ``FUSED_BAND_BYTES``) collected into one
  frozen, JSON-round-trippable record with provenance.
* :func:`active_profile` — the **call-time** resolution every dispatch
  decision goes through.  Nothing is captured at import any more: the
  resolution order is (1) a profile pinned programmatically with
  :func:`set_active_profile` / :func:`override`, else (2) the file named
  by ``REPRO_PLANNER_PROFILE``, else (3) the built-in defaults — and in
  cases (2)-(3) the historical per-threshold env vars are overlaid
  *fresh on every call*, so exporting ``REPRO_FFT_CROSSOVER_TAPS`` (or
  un-exporting it) moves the very next dispatch without
  ``importlib.reload``.  Env vars thereby remain explicit overrides
  that pin a decision; they are no longer the decision mechanism.
* :func:`select_blur_method` / :func:`select_fused_h_method` /
  :func:`select_engine` — the *single* definitions of the dispatch
  formulas.  ``repro.tonemap.gaussian`` applies them per blur call,
  ``repro.runtime.fused`` per fused plan, and
  :class:`repro.planner.plan.Planner` ahead of time when emitting an
  :class:`~repro.planner.plan.ExecutionPlan` — so a planned decision
  and an inline ``method="auto"`` decision cannot diverge.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import List, Optional, Union

#: Schema version of the serialized profile.  Bump on incompatible field
#: changes; :func:`load_or_default` treats a mismatched (stale) version
#: like a missing file and falls back to the built-in defaults rather
#: than letting an old calibration silently misdirect the dispatch.
PROFILE_VERSION = 1

#: Built-in defaults, measured on the PR 1/3/5 reference hosts.  These
#: are the values the planner uses when no calibration profile has been
#: loaded; ``repro.planner.calibrate`` re-measures them for other hosts.
DEFAULT_FFT_CROSSOVER_TAPS = 25
DEFAULT_TILED_MIN_PLANE_BYTES = 1 << 23
DEFAULT_FUSED_FFT_MIN_TAPS = 33
DEFAULT_FUSED_BAND_BYTES = 1 << 22
DEFAULT_FUSED_POOLED_GEOMETRIES = 8

#: Env var naming a profile JSON file to load as the base calibration.
PROFILE_ENV = "REPRO_PLANNER_PROFILE"

#: Per-threshold env overrides (the historical interface, still honored
#: — but now read at call time, overlaid on the base profile).
THRESHOLD_ENV_VARS = {
    "fft_crossover_taps": "REPRO_FFT_CROSSOVER_TAPS",
    "tiled_min_plane_bytes": "REPRO_TILED_MIN_PLANE_BYTES",
    "fused_fft_min_taps": "REPRO_FUSED_FFT_MIN_TAPS",
    "fused_band_bytes": "REPRO_FUSED_BAND_BYTES",
    "fused_pooled_geometries": "REPRO_FUSED_POOLED_GEOMETRIES",
}


def _env_positive_int(name: str, default: int) -> int:
    """An env-var override (must be a positive int); malformed or
    non-positive values fall back to the default rather than poisoning
    the dispatch."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


@dataclass(frozen=True)
class CalibrationProfile:
    """One host's calibrated dispatch crossovers, with provenance.

    Attributes
    ----------
    fft_crossover_taps:
        Kernel width (taps) at which the staged row convolution leaves
        the folded sliding window for the FFT.
    tiled_min_plane_bytes:
        Plane size (float64 bytes) at which narrow-kernel convolution
        switches from ``folded`` to the cache-blocked ``tiled``
        traversal.
    fused_fft_min_taps:
        Kernel width at which the fused band engine's horizontal pass
        switches to the per-band FFT — and, because the fused engine was
        measured slower than the staged full-plane FFT from there on,
        the width at which the planner hands whole workloads back to the
        staged engine.
    fused_band_bytes:
        Scratch budget for one fused band's working set.
    fused_pooled_geometries:
        Distinct scratch geometries a fused executor keeps warm (not a
        dispatch crossover, but host-memory calibration all the same).
    host / source / calibrated:
        Provenance: free-form host description, where the numbers came
        from (``"defaults"``, ``"calibration"``, ``"override"``, a file
        path), and whether they were measured (vs built-in).
    version:
        Serialization schema version (see :data:`PROFILE_VERSION`).
    """

    fft_crossover_taps: int = DEFAULT_FFT_CROSSOVER_TAPS
    tiled_min_plane_bytes: int = DEFAULT_TILED_MIN_PLANE_BYTES
    fused_fft_min_taps: int = DEFAULT_FUSED_FFT_MIN_TAPS
    fused_band_bytes: int = DEFAULT_FUSED_BAND_BYTES
    fused_pooled_geometries: int = DEFAULT_FUSED_POOLED_GEOMETRIES
    host: str = "builtin defaults"
    source: str = "defaults"
    calibrated: bool = False
    version: int = PROFILE_VERSION

    def __post_init__(self) -> None:
        for name in (
            "fft_crossover_taps",
            "tiled_min_plane_bytes",
            "fused_fft_min_taps",
            "fused_band_bytes",
            "fused_pooled_geometries",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"profile threshold {name} must be a positive int, "
                    f"got {value!r}"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json_dict(cls, data: dict) -> "CalibrationProfile":
        """Build from a parsed JSON object.

        Unknown keys (e.g. the calibrator's raw sweep rows) are ignored;
        missing keys take the built-in defaults.  Raises ``ValueError``
        for a wrong schema version or invalid threshold values — the
        caller decides whether that is fatal (:meth:`load`) or a
        fallback (:func:`load_or_default`).
        """
        if not isinstance(data, dict):
            raise ValueError(f"profile JSON must be an object, got {type(data)}")
        version = data.get("version", PROFILE_VERSION)
        if version != PROFILE_VERSION:
            raise ValueError(
                f"stale profile: schema version {version} != "
                f"{PROFILE_VERSION}"
            )
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def save(self, path: Union[str, Path], extra: Optional[dict] = None) -> Path:
        """Write the profile (plus optional extra sections) as JSON."""
        path = Path(path)
        payload = self.to_json_dict()
        if extra:
            for key, value in extra.items():
                payload.setdefault(key, value)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CalibrationProfile":
        """Load a profile; raises on a missing, unparseable, or stale file."""
        path = Path(path)
        profile = cls.from_json_dict(json.loads(path.read_text()))
        return replace(profile, source=str(path))


def load_or_default(
    path: Union[str, Path, None]
) -> CalibrationProfile:
    """Load *path*, falling back to built-in defaults when it is missing,
    unparseable, or a stale schema version.

    The fallback is deliberate policy, not error-swallowing: a serving
    process pointed at a deleted or outdated profile must keep making
    *sane* dispatch decisions (the defaults) rather than crash in the
    hot path — the golden-plan tests pin what those defaults decide.
    """
    if path is None:
        return CalibrationProfile()
    try:
        return CalibrationProfile.load(path)
    except (OSError, ValueError, json.JSONDecodeError):
        return CalibrationProfile()


# ----------------------------------------------------------------------
# Active-profile resolution (call time, never import time)
# ----------------------------------------------------------------------
_PIN_LOCK = threading.Lock()
_PINNED: List[CalibrationProfile] = []

#: Cache of the ``REPRO_PLANNER_PROFILE`` file, keyed by (path, mtime):
#: re-reading a JSON file on every blur call would be absurd, but a
#: *changed* file (recalibration mid-flight) must be picked up.
_FILE_CACHE: dict = {}


def _base_profile() -> CalibrationProfile:
    """The env-file profile or the defaults (no per-field env overlay)."""
    path = os.environ.get(PROFILE_ENV)
    if not path:
        return CalibrationProfile()
    try:
        mtime = os.stat(path).st_mtime_ns
    except OSError:
        return CalibrationProfile()
    key = (path, mtime)
    cached = _FILE_CACHE.get(key)
    if cached is None:
        cached = load_or_default(path)
        _FILE_CACHE.clear()  # one live entry; old mtimes are dead
        _FILE_CACHE[key] = cached
    return cached


def active_profile() -> CalibrationProfile:
    """The profile every dispatch decision consults, resolved *now*.

    A programmatically pinned profile wins outright (tests and the
    calibrator pin per-case without touching the environment); otherwise
    the base profile (env file or defaults) is overlaid with any
    per-threshold env vars, read fresh so exports made after import
    still take effect.
    """
    with _PIN_LOCK:
        if _PINNED:
            return _PINNED[-1]
    profile = _base_profile()
    overrides = {}
    for field_name, env_name in THRESHOLD_ENV_VARS.items():
        current = getattr(profile, field_name)
        value = _env_positive_int(env_name, current)
        if value != current:
            overrides[field_name] = value
    if overrides:
        profile = replace(profile, **overrides, source="env-override")
    return profile


def set_active_profile(
    profile: Optional[CalibrationProfile],
) -> None:
    """Pin *profile* as the active calibration (``None`` unpins all).

    A pinned profile is used verbatim — no env overlay — so a test or a
    service that loaded a specific calibration gets exactly it.
    """
    with _PIN_LOCK:
        _PINNED.clear()
        if profile is not None:
            _PINNED.append(profile)


class override:
    """Context manager pinning threshold overrides for the enclosed calls.

    >>> with override(fft_crossover_taps=5):
    ...     ...  # every ``method="auto"`` dispatch in here sees taps>=5 as FFT

    Overlays the currently active profile, so nesting composes.  This is
    the per-case re-pinning mechanism the env-var module constants never
    offered: no ``importlib.reload``, no process restart.
    """

    def __init__(self, **thresholds):
        self._thresholds = thresholds
        self._profile: Optional[CalibrationProfile] = None

    def __enter__(self) -> CalibrationProfile:
        self._profile = replace(
            active_profile(), **self._thresholds, source="override"
        )
        with _PIN_LOCK:
            _PINNED.append(self._profile)
        return self._profile

    def __exit__(self, exc_type, exc, tb) -> None:
        with _PIN_LOCK:
            if self._profile in _PINNED:
                _PINNED.remove(self._profile)


# ----------------------------------------------------------------------
# The dispatch formulas (single definitions, shared by every consumer)
# ----------------------------------------------------------------------
def select_blur_method(
    taps: int, plane_bytes: int, profile: Optional[CalibrationProfile] = None
) -> str:
    """Staged row-convolution strategy for a kernel/plane combination.

    FFT once the kernel is wide enough to amortize the transforms;
    below that, the cache-blocked tiled traversal when the plane's
    working set spills last-level cache, else the plain folded window.
    """
    profile = profile if profile is not None else active_profile()
    if taps >= profile.fft_crossover_taps:
        return "fft"
    if plane_bytes >= profile.tiled_min_plane_bytes:
        return "tiled"
    return "folded"


def select_fused_h_method(
    taps: int, plane_bytes: int, profile: Optional[CalibrationProfile] = None
) -> str:
    """Horizontal-pass strategy of the fused band engine.

    Wherever the staged dispatch resolves folded/tiled this must return
    ``"folded"`` (the bit-identity contract requires the exact same
    arithmetic).  In the staged FFT regime the band engine keeps the
    folded window up to ``fused_fft_min_taps``: a band-sized FFT
    amortizes its setup over far fewer rows than a full-plane transform.
    """
    profile = profile if profile is not None else active_profile()
    if select_blur_method(taps, plane_bytes, profile) != "fft":
        return "folded"
    return "fft" if taps >= profile.fused_fft_min_taps else "folded"


def select_engine(
    taps: int, profile: Optional[CalibrationProfile] = None, fixed: bool = False
) -> str:
    """Fused band engine vs staged stack execution for a whole workload.

    The fused engine is float-only (it *is* the blur), so fixed-point
    workloads stay staged.  For float, the engine wins while the
    horizontal pass stays on the folded window (measured 1.4-1.9x on the
    reference host); from ``fused_fft_min_taps`` upward the staged
    full-plane FFT's transform-length amortization wins (measured ~0.5x
    fused at sigma 16), so wide kernels go staged.
    """
    if fixed:
        return "staged"
    profile = profile if profile is not None else active_profile()
    return "fused" if taps < profile.fused_fft_min_taps else "staged"
