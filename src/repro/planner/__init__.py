"""Model-driven execution planning for the tone-mapping runtime.

Public surface:

* :mod:`repro.planner.profile` — :class:`CalibrationProfile` (the
  serialized host calibration), call-time ``active_profile()``
  resolution, the ``override`` context manager, and the shared dispatch
  formulas.
* :mod:`repro.planner.plan` — :class:`Workload`,
  :class:`ExecutionPlan`, :class:`Planner`, and the :func:`plan_for`
  convenience.
* :mod:`repro.planner.cost` — the analytic candidate-cost estimates
  behind every plan's rationale.
* :mod:`repro.planner.calibrate` — the measurement pass that writes a
  profile for this host.

The package root is **lazy** (PEP 562): the hot-path modules
(``repro.tonemap.gaussian``, ``repro.runtime.fused``) import
``repro.planner.profile`` directly, and eagerly importing ``plan`` here
would close an import cycle back through them.  Attribute access like
``repro.planner.plan_for`` resolves on first use instead.
"""

from __future__ import annotations

_EXPORTS = {
    "CalibrationProfile": ("repro.planner.profile", "CalibrationProfile"),
    "active_profile": ("repro.planner.profile", "active_profile"),
    "set_active_profile": ("repro.planner.profile", "set_active_profile"),
    "override": ("repro.planner.profile", "override"),
    "load_or_default": ("repro.planner.profile", "load_or_default"),
    "select_blur_method": ("repro.planner.profile", "select_blur_method"),
    "select_fused_h_method": (
        "repro.planner.profile", "select_fused_h_method",
    ),
    "select_engine": ("repro.planner.profile", "select_engine"),
    "Workload": ("repro.planner.plan", "Workload"),
    "ExecutionPlan": ("repro.planner.plan", "ExecutionPlan"),
    "Planner": ("repro.planner.plan", "Planner"),
    "plan_for": ("repro.planner.plan", "plan_for"),
    "pinned": ("repro.planner.plan", "pinned"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.planner' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return __all__
