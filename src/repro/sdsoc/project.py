"""An SDSoC project: sources, marked functions, and the build step.

Models the IDE-level workflow of paper Fig. 2: an application described
by software traces, zero or more functions marked for hardware (each with
a kernel, pragmas and data movers), a platform, and a clock choice.
``build()`` performs what pressing Build does: synthesize every marked
function, check device fit, infer any unassigned data movers, and return
the artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import FlowError
from repro.hls.ir import Kernel
from repro.hls.pragmas import Pragma
from repro.hls.scheduler import ExternalAccessModel
from repro.hls.synthesis import HlsDesign, synthesize
from repro.platform.axi import DataMover
from repro.platform.cpu import SwKernelTrace
from repro.platform.soc import ZynqSoC
from repro.sdsoc.datamover import choose_data_mover, validate_mover
from repro.sdsoc.profiler import ProfileReport, profile_application


@dataclass
class MarkedFunction:
    """A function selected for hardware acceleration."""

    name: str
    kernel: Kernel
    pragmas: List[Pragma] = field(default_factory=list)
    data_movers: Dict[str, DataMover] = field(default_factory=dict)


@dataclass(frozen=True)
class BuildArtifacts:
    """Everything a build produces."""

    designs: Dict[str, HlsDesign]
    movers: Dict[str, Dict[str, DataMover]]
    profile: ProfileReport

    def design(self, name: str) -> HlsDesign:
        if name not in self.designs:
            raise FlowError(f"no built design named {name!r}")
        return self.designs[name]


class SdsocProject:
    """A buildable hardware/software co-design project."""

    def __init__(
        self,
        name: str,
        soc: ZynqSoC,
        sw_traces: Dict[str, SwKernelTrace],
        external: ExternalAccessModel = ExternalAccessModel(),
    ):
        if not sw_traces:
            raise FlowError("a project needs at least one software function")
        self.name = name
        self.soc = soc
        self.sw_traces = dict(sw_traces)
        self.external = external
        self._marked: Dict[str, MarkedFunction] = {}

    # ------------------------------------------------------------------
    # Project editing
    # ------------------------------------------------------------------
    def mark_for_hardware(
        self,
        function_name: str,
        kernel: Kernel,
        pragmas: Sequence[Pragma] = (),
        data_movers: Optional[Dict[str, DataMover]] = None,
    ) -> None:
        """Select *function_name* for hardware acceleration."""
        if function_name not in self.sw_traces:
            raise FlowError(
                f"cannot mark unknown function {function_name!r}; "
                f"known: {sorted(self.sw_traces)}"
            )
        self._marked[function_name] = MarkedFunction(
            name=function_name,
            kernel=kernel,
            pragmas=list(pragmas),
            data_movers=dict(data_movers or {}),
        )

    def unmark(self, function_name: str) -> None:
        self._marked.pop(function_name, None)

    @property
    def marked_functions(self) -> List[str]:
        return sorted(self._marked)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def profile(self) -> ProfileReport:
        """Software-only profile of the full application (flow step 1)."""
        return profile_application(self.sw_traces, self.soc.cpu)

    def build(self, check_fit: bool = True) -> BuildArtifacts:
        """Synthesize all marked functions and assemble the artifacts."""
        designs: Dict[str, HlsDesign] = {}
        movers: Dict[str, Dict[str, DataMover]] = {}
        for name, marked in self._marked.items():
            design = synthesize(
                marked.kernel,
                clock_mhz=self.soc.pl_clock.freq_mhz,
                pragmas=marked.pragmas,
                external=self.external,
                device_limits=self.soc.device.limits if check_fit else None,
            )
            designs[name] = design

            assigned: Dict[str, DataMover] = {}
            for arg in marked.kernel.args:
                mover = marked.data_movers.get(arg.name)
                if mover is None:
                    mover = choose_data_mover(arg)
                validate_mover(arg, mover)
                assigned[arg.name] = mover
            movers[name] = assigned
        return BuildArtifacts(
            designs=designs, movers=movers, profile=self.profile()
        )
