"""The SDSoC co-design flow (paper section III).

SDSoC's job: profile the application, mark hot functions for hardware,
infer data movers, generate stubs, and build the composite system.  This
package models that flow end to end:

* :mod:`repro.sdsoc.profiler` — software profiling over the CPU cost
  model; ranks functions and identifies the hotspot ("the tone-mapping
  algorithm has been profiled and the Gaussian blur function identified
  as the most computationally-intensive").
* :mod:`repro.sdsoc.datamover` — data-mover inference from argument
  size/pattern (the "data motion network" knob).
* :mod:`repro.sdsoc.stubs` — the software stub that replaces an
  accelerated function: driver setup, cache maintenance, synchronization.
* :mod:`repro.sdsoc.project` — an SDSoC project: sources, marked
  functions, build into a system image model.
* :mod:`repro.sdsoc.flow` — the paper's five-step optimization ladder,
  producing one :class:`~repro.sdsoc.flow.ImplementationResult` per
  Table II row.
"""

from repro.sdsoc.profiler import FunctionProfile, ProfileReport, profile_application
from repro.sdsoc.datamover import choose_data_mover
from repro.sdsoc.stubs import StubCosts, stub_overhead_cycles
from repro.sdsoc.project import SdsocProject, BuildArtifacts
from repro.sdsoc.flow import (
    ImplementationResult,
    OptimizationFlow,
    StageTime,
)

__all__ = [
    "FunctionProfile",
    "ProfileReport",
    "profile_application",
    "choose_data_mover",
    "StubCosts",
    "stub_overhead_cycles",
    "SdsocProject",
    "BuildArtifacts",
    "ImplementationResult",
    "OptimizationFlow",
    "StageTime",
]
